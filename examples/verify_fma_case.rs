//! Full case-split verification of one instruction, printing the Table-1
//! style statistics row by row.
//!
//! Run with: `cargo run --release -p fmaverify --example verify_fma_case`
//!
//! Environment knobs:
//! * `FMAVERIFY_EXP` / `FMAVERIFY_FRAC` — format (default 4/4);
//! * `FMAVERIFY_OP` — `fma` (default), `fms`, `add`, or `mul`;
//! * `FMAVERIFY_FULL_IEEE=1` — honor denormal operands (§6 mode).

use fmaverify::{render_table1, summarize, table1_rows, Session};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_softfloat::FpFormat;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let exp = env_u32("FMAVERIFY_EXP", 4);
    let frac = env_u32("FMAVERIFY_FRAC", 4);
    let op = match std::env::var("FMAVERIFY_OP").as_deref() {
        Ok("add") => FpuOp::Add,
        Ok("mul") => FpuOp::Mul,
        Ok("fms") => FpuOp::Fms,
        _ => FpuOp::Fma,
    };
    let denormals = if std::env::var("FMAVERIFY_FULL_IEEE").is_ok() {
        DenormalMode::FullIeee
    } else {
        DenormalMode::FlushToZero
    };
    let cfg = FpuConfig {
        format: FpFormat::new(exp, frac),
        denormals,
    };
    println!("verifying {op:?} at ({exp},{frac}), {denormals:?}, multiplier isolated\n");
    let report = Session::new(&cfg).run(op);
    println!("{}", summarize(&report));
    println!();
    println!(
        "{}",
        render_table1(&table1_rows(std::slice::from_ref(&report)))
    );
    if let Some(fail) = report.first_failure() {
        println!("FIRST FAILURE: {:?}", fail.case);
        if let Some(cex) = &fail.counterexample {
            println!(
                "  a={:#x} b={:#x} c={:#x} op={} rm={}",
                cex.a, cex.b, cex.c, cex.op, cex.rm
            );
        }
        std::process::exit(1);
    }
}
