//! Portability (paper Section 6): re-targeting the methodology to a new FPU
//! implementation requires only re-deriving and re-proving the `S'`,`T'`
//! rules — "these are the only implementation-specific aspect of our
//! methodology". The case splits, constraints, and the verified isolated
//! harness are untouched.
//!
//! Run with: `cargo run --release -p fmaverify --example portability_port`

use fmaverify::{derive_st_constants_for, prove_multiplier_soundness_for, HarnessOptions, Session};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp, MultiplierMode};
use fmaverify_softfloat::FpFormat;

fn main() {
    let cfg = FpuConfig {
        format: FpFormat::MICRO,
        denormals: DenormalMode::FlushToZero,
    };
    println!("== porting the methodology between FPU implementations ==\n");

    // The implementation-independent part: verify the isolated pair once.
    // (Both implementation variants consume S'/T' identically, so this
    // artifact is shared between them.)
    let report = Session::new(&cfg).run(FpuOp::Fma);
    println!(
        "shared isolated verification: {} cases, all hold: {}\n",
        report.results.len(),
        report.all_hold()
    );
    assert!(report.all_hold());

    // The implementation-specific part, per variant: derive the S'/T' rules
    // and prove the soundness obligation.
    for (name, mode) in [
        ("Booth radix-4 multiplier", MultiplierMode::Real),
        ("AND-array multiplier", MultiplierMode::RealArray),
    ] {
        let t = std::time::Instant::now();
        let constants = derive_st_constants_for(&cfg, 500, mode.clone());
        let soundness = prove_multiplier_soundness_for(&cfg, &constants, mode.clone());
        println!("variant: {name}");
        println!(
            "  derived {} constant S'/T' bits (hot-one rules): {}",
            constants.len(),
            constants
                .iter()
                .map(|k| format!(
                    "{}[{}]={}",
                    if k.in_t { "T" } else { "S" },
                    k.bit,
                    u8::from(k.value)
                ))
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!(
            "  soundness obligation: {} ({} gates in cone, port effort {:?})\n",
            if soundness.holds { "PROVED" } else { "REFUTED" },
            soundness.cone_ands,
            t.elapsed(),
        );
        assert!(soundness.holds);
    }

    // Sanity: the two variants really are different implementations — the
    // non-isolated harnesses differ in size.
    let mut sizes = Vec::new();
    for mode in [MultiplierMode::Real, MultiplierMode::RealArray] {
        let mut n = fmaverify_netlist::Netlist::new();
        let inputs = fmaverify_fpu::FpuInputs::new(&mut n, cfg.format);
        let fpu = fmaverify_fpu::build_impl_fpu(
            &mut n,
            &cfg,
            &inputs,
            mode,
            fmaverify_fpu::PipelineMode::Combinational,
        );
        sizes.push(n.cone_size(fpu.outputs.result.bits()));
    }
    println!(
        "implementation sizes: booth {} gates vs array {} gates",
        sizes[0], sizes[1]
    );
    let _ = HarnessOptions::default();
}
