//! Interoperability tour: export the verification artifacts to standard
//! formats — AIGER for external model checkers, structural Verilog for EDA
//! flows, DIMACS for external SAT solvers, and a VCD waveform of a
//! counterexample replay. "No customized toolset is necessary."
//!
//! Run with: `cargo run --release -p fmaverify --example export_artifacts`
//! (files are written to `target/artifacts/`).

use std::fs;
use std::io::Write as _;

use fmaverify::{
    build_harness, inject_fault, semi_formal_check, CaseId, HarnessOptions, MutationKind,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::{dump_counterexample, encode_to_cnf, write_aiger, write_verilog};
use fmaverify_sat::{write_dimacs, SolveResult};
use fmaverify_softfloat::FpFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("target/artifacts");
    fs::create_dir_all(dir)?;
    let cfg = FpuConfig {
        format: FpFormat::MICRO,
        denormals: DenormalMode::FlushToZero,
    };
    let mut harness = build_harness(
        &cfg,
        HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        },
    );

    // 1. AIGER: the whole two-FPU miter, consumable by ABC / aiger tools.
    let aig_path = dir.join("fma_miter.aag");
    let mut f = fs::File::create(&aig_path)?;
    write_aiger(&mut f, &harness.netlist)?;
    println!(
        "wrote {} ({} AND gates, {} inputs)",
        aig_path.display(),
        harness.netlist.num_ands(),
        harness.netlist.inputs().len()
    );

    // 2. Verilog: the miter as a flat gate-level module.
    let v_path = dir.join("fma_miter.v");
    let mut f = fs::File::create(&v_path)?;
    write_verilog(&mut f, &harness.netlist, "fma_miter")?;
    println!(
        "wrote {} (logic depth {})",
        v_path.display(),
        harness.netlist.logic_depth(&[harness.miter])
    );

    // 3. DIMACS: one verification case as a CNF an external solver can
    //    refute (UNSAT == the case holds).
    let case = CaseId::OverlapNoCancel { delta: 2 };
    let mut roots = harness.case_constraint_parts(FpuOp::Fma, case);
    roots.push(harness.miter);
    let (mut cnf, root_lits) = encode_to_cnf(&harness.netlist, &roots);
    for l in &root_lits {
        cnf.add_clause(&[*l]); // assert constraint parts and the miter
    }
    let cnf_path = dir.join("case_ov_d2.cnf");
    let mut f = fs::File::create(&cnf_path)?;
    write_dimacs(&mut f, &cnf)?;
    let mut check = cnf.to_solver();
    assert_eq!(check.solve(), SolveResult::Unsat, "the case must hold");
    println!(
        "wrote {} ({} vars, {} clauses; UNSAT == case [{}] holds)",
        cnf_path.display(),
        cnf.num_vars,
        cnf.clauses.len(),
        case.label()
    );

    // 4. VCD: plant a bug, find the counterexample formally, dump the wave.
    let impl_cone = harness
        .netlist
        .comb_cone(harness.impl_fpu.outputs.result.bits());
    let ref_cone = harness
        .netlist
        .comb_cone(harness.ref_fpu.outputs.result.bits());
    let candidates: Vec<_> = harness
        .netlist
        .node_ids()
        .filter(|id| {
            impl_cone[id.index()]
                && !ref_cone[id.index()]
                && matches!(harness.netlist.node(*id), fmaverify_netlist::Node::And(..))
        })
        .collect();
    for (k, &target) in candidates.iter().enumerate().step_by(23) {
        let mutated = inject_fault(&harness.netlist, target, MutationKind::AndToOr);
        let miter = mutated.find_output("miter").expect("miter");
        // Hunt with the semi-formal engine (SAT-guided stimulus).
        let out = semi_formal_check(
            &mutated,
            miter,
            &[fmaverify_netlist::Signal::TRUE],
            2_000,
            k as u64,
        );
        if let Some(cex) = out.failure {
            let assignment: Vec<(String, bool)> = cex.into_iter().collect();
            let vcd = dump_counterexample(&mutated, &assignment, 1);
            let vcd_path = dir.join("counterexample.vcd");
            let mut f = fs::File::create(&vcd_path)?;
            f.write_all(vcd.as_bytes())?;
            println!(
                "wrote {} ({} signals traced; bug {:?} at {:?}, found after {} vectors)",
                vcd_path.display(),
                vcd.lines().filter(|l| l.starts_with("$var")).count(),
                MutationKind::AndToOr,
                target,
                out.vectors,
            );
            return Ok(());
        }
    }
    println!("(no observable fault found; no VCD written)");
    Ok(())
}
