//! Fault-injection regression: plant a gate-level bug in the implementation
//! FPU, let the formal flow hunt it down, and print the counterexample with
//! softfloat-oracle arbitration.
//!
//! Run with: `cargo run --release -p fmaverify --example bughunt_regression`

use fmaverify::{
    build_harness, check_miter_bdd_parts, enumerate_cases, inject_fault, BddEngineOptions, CaseId,
    HarnessOptions, MutationKind, SatEngineOptions,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::{BitSim, Word};
use fmaverify_softfloat::{FpFormat, RoundingMode};

fn main() {
    let cfg = FpuConfig {
        format: FpFormat::MICRO,
        denormals: DenormalMode::FlushToZero,
    };
    let op = FpuOp::Fma;
    println!("== bug hunt at {:?} ==\n", cfg.format);

    // Build the harness and materialize all case constraints as probes.
    let mut base = build_harness(
        &cfg,
        HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        },
    );
    let cases = enumerate_cases(&cfg, op);
    for case in &cases {
        let parts = base.case_constraint_parts(op, *case);
        for (i, p) in parts.iter().enumerate() {
            base.netlist.probe(format!("case.{}#{i}", case.label()), *p);
        }
    }

    // Plant a fault: flip a gate in the implementation rounder cone.
    let impl_cone = base.netlist.comb_cone(base.impl_fpu.outputs.result.bits());
    let ref_cone = base.netlist.comb_cone(base.ref_fpu.outputs.result.bits());
    let candidates: Vec<_> = base
        .netlist
        .node_ids()
        .filter(|id| {
            impl_cone[id.index()]
                && !ref_cone[id.index()]
                && matches!(base.netlist.node(*id), fmaverify_netlist::Node::And(..))
        })
        .collect();
    // Walk candidate gates until an FMA-observable fault is found.
    let mut chosen = None;
    'search: for k in (0..candidates.len()).step_by(37) {
        let target = candidates[k];
        let mutated = inject_fault(&base.netlist, target, MutationKind::InvertOutput);
        let miter = mutated.find_output("miter").expect("miter");
        // Quick observability probe under FMA.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut sim = BitSim::new(&mutated);
        let w = cfg.format.width() as usize;
        let input_word = |n: &fmaverify_netlist::Netlist, p: &str, w: usize| {
            Word::from_bits(
                (0..w)
                    .map(|i| n.find_input(&format!("{p}[{i}]")).expect("in"))
                    .collect(),
            )
        };
        let (wa, wb, wc) = (
            input_word(&mutated, "a", w),
            input_word(&mutated, "b", w),
            input_word(&mutated, "c", w),
        );
        let wop = input_word(&mutated, "op", 3);
        let wrm = input_word(&mutated, "rm", 2);
        for _ in 0..4000 {
            sim.set_word(&wa, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&wb, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&wc, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&wop, 0); // FMA
            sim.set_word(&wrm, rng.gen_range(0..4));
            sim.eval();
            if sim.get(miter) {
                chosen = Some((target, mutated, miter));
                break 'search;
            }
        }
    }
    let (target, mutated, miter) = chosen.expect("an observable fault exists");
    println!(
        "injecting {:?} at node {target:?}",
        MutationKind::InvertOutput
    );

    // Hunt through the cases.
    for case in &cases {
        let parts: Vec<_> = (0..4)
            .map_while(|i| mutated.find_probe(&format!("case.{}#{i}", case.label())))
            .collect();
        let cex = match case {
            CaseId::FarOut | CaseId::Monolithic => {
                let out = fmaverify::check_miter_sat_parts(
                    &mutated,
                    miter,
                    &parts,
                    &SatEngineOptions::default(),
                );
                (!out.holds).then_some(out.counterexample).flatten()
            }
            _ => {
                let out =
                    check_miter_bdd_parts(&mutated, miter, &parts, &BddEngineOptions::default());
                (!out.holds).then_some(out.counterexample).flatten()
            }
        };
        let Some(assignment) = cex else {
            continue;
        };
        // Decode and arbitrate.
        let word = |prefix: &str, w: usize| -> u128 {
            (0..w)
                .map(|i| {
                    u128::from(*assignment.get(&format!("{prefix}[{i}]")).unwrap_or(&false)) << i
                })
                .sum()
        };
        let w = cfg.format.width() as usize;
        let (a, b, c) = (word("a", w), word("b", w), word("c", w));
        let rm = RoundingMode::decode(word("rm", 2) as u32);
        println!("\ncase [{}] FAILS", case.label());
        println!(
            "  counterexample: a={} b={} c={} rm={rm:?}",
            cfg.format.to_f64(a),
            cfg.format.to_f64(b),
            cfg.format.to_f64(c),
        );
        let mut sim = BitSim::new(&mutated);
        for (name, v) in &assignment {
            if let Some(sig) = mutated.find_input(name) {
                sim.set(sig, *v);
            }
        }
        sim.eval();
        let out_word = |prefix: &str| -> u128 {
            let bits: Vec<_> = (0..w)
                .map(|i| mutated.find_output(&format!("{prefix}[{i}]")).expect("out"))
                .collect();
            let word = Word::from_bits(bits);
            sim.get_word(&word)
        };
        let ref_r = out_word("ref.result");
        let impl_r = out_word("impl.result");
        let oracle = FpuOp::Fma.apply(&cfg, a, b, c, rm);
        println!(
            "  reference: {}   implementation: {}   oracle: {}",
            cfg.format.to_f64(ref_r),
            cfg.format.to_f64(impl_r),
            cfg.format.to_f64(oracle.bits),
        );
        println!(
            "  verdict: the {} FPU is wrong",
            if impl_r != oracle.bits {
                "implementation"
            } else {
                "reference"
            }
        );
        return;
    }
    println!("fault was not observable under {op:?} (try another opcode)");
    std::process::exit(1);
}
