//! Quickstart: build the two FPUs, simulate an instruction, then formally
//! verify one case-split slice of the input space.
//!
//! Run with: `cargo run --release -p fmaverify --example quickstart`

use fmaverify::{
    build_harness, check_miter_bdd_parts, prove_multiplier_soundness, BddEngineOptions, CaseId,
    HarnessOptions, ShaCase,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::BitSim;
use fmaverify_softfloat::{FpFormat, RoundingMode};

fn main() {
    // A half-precision FPU that flushes denormal operands to zero — the
    // paper's primary configuration, scaled to laptop size.
    let cfg = FpuConfig {
        format: FpFormat::HALF,
        denormals: DenormalMode::FlushToZero,
    };
    println!("== fmaverify quickstart (format {:?}) ==\n", cfg.format);

    // 1. Build the driver: reference FPU + implementation FPU + miter, with
    //    the multiplier isolated behind constrained S'/T' pseudo-inputs.
    let mut harness = build_harness(&cfg, HarnessOptions::default());
    println!(
        "harness: {} AND gates, miter cone {} gates",
        harness.netlist.num_ands(),
        harness.netlist.cone_size(&[harness.miter]),
    );

    // 2. Concretely simulate an FMA: 1.5 * 2.5 + (-0.125).
    let a = (1.5f64 * 2f64.powi(0)).to_half(cfg.format);
    let b = 2.5f64.to_half(cfg.format);
    let c = (-0.125f64).to_half(cfg.format);
    // Simulation uses the non-isolated harness so the real multiplier runs.
    let sim_harness = build_harness(
        &cfg,
        HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        },
    );
    let mut sim = BitSim::new(&sim_harness.netlist);
    sim.set_word(&sim_harness.inputs.a, a);
    sim.set_word(&sim_harness.inputs.b, b);
    sim.set_word(&sim_harness.inputs.c, c);
    sim.set_word(&sim_harness.inputs.op, FpuOp::Fma.encode() as u128);
    sim.set_word(
        &sim_harness.inputs.rm,
        RoundingMode::NearestEven.encode() as u128,
    );
    sim.eval();
    let result = sim.get_word(&sim_harness.fpu_result());
    println!(
        "simulate: 1.5 * 2.5 - 0.125 = {} (impl FPU), miter quiet: {}",
        cfg.format.to_f64(result),
        !sim.get(sim_harness.miter),
    );

    // 3. Formally verify one cancellation case: δ = 0 with a normalization
    //    shift of f+5, covering all operands, both FPUs, and all four
    //    rounding modes at once.
    let case = CaseId::OverlapCancel {
        delta: 0,
        sha: ShaCase::Exact(cfg.format.frac_bits() as usize + 5),
    };
    let constraint_parts = harness.case_constraint_parts(FpuOp::Fma, case);
    let order = fmaverify::paper_order(&harness, Some(0));
    let outcome = check_miter_bdd_parts(
        &harness.netlist,
        harness.miter,
        &constraint_parts,
        &BddEngineOptions {
            order,
            ..BddEngineOptions::default()
        },
    );
    println!(
        "formal:   case [{}] {} (peak {} BDD nodes, {:?})",
        case.label(),
        if outcome.holds { "HOLDS" } else { "FAILS" },
        outcome.peak_nodes,
        outcome.duration,
    );

    // 4. Discharge the isolation soundness obligation for the real
    //    multiplier.
    let soundness = prove_multiplier_soundness(&cfg, &[]);
    println!(
        "soundness: multiplier property {} ({} of {} FPU gates in cone, {:?})",
        if soundness.holds { "PROVED" } else { "REFUTED" },
        soundness.cone_ands,
        soundness.full_fpu_ands,
        soundness.duration,
    );
}

/// Small helper: convert an f64 to the target format's bits (round to
/// nearest even) using the softfloat library itself.
trait ToHalf {
    fn to_half(self, fmt: FpFormat) -> u128;
}

impl ToHalf for f64 {
    fn to_half(self, fmt: FpFormat) -> u128 {
        // Convert through multiplication by 1.0 in the target format after
        // unpacking the f64 — adequate for exactly-representable examples.
        let bits = self.to_bits() as u128;
        let d = FpFormat::DOUBLE;
        if self == 0.0 {
            return fmt.zero(self.is_sign_negative());
        }
        let (s, m, e) = d.unpack_finite(bits);
        // Renormalize the 53-bit significand into the target's width.
        let shift = 52 - fmt.frac_bits();
        assert_eq!(
            m & ((1 << shift) - 1),
            0,
            "example value must be exactly representable"
        );
        let frac = (m >> shift) & fmt.frac_mask();
        let exp = e + 52 + fmt.bias();
        fmt.pack(s, exp as u32, frac)
    }
}

/// Convenience accessors used by the example.
trait HarnessExt {
    fn fpu_result(&self) -> fmaverify_netlist::Word;
}

impl HarnessExt for fmaverify::Harness {
    fn fpu_result(&self) -> fmaverify_netlist::Word {
        self.impl_fpu.outputs.result.clone()
    }
}
