//! The verifier must actually find bugs: single-gate faults injected into
//! the implementation FPU's exclusive logic must be caught by the formal
//! flow with a replayable counterexample, and the reference FPU (arbitrated
//! by the softfloat oracle) must be the side that stays correct.
//!
//! This reproduces the paper's claim that the methodology exposed "dozens
//! of high-quality bugs".

use std::collections::HashMap;

use fmaverify::{
    build_harness, check_miter_bdd, check_miter_sat, enumerate_cases, inject_fault,
    BddEngineOptions, CaseId, HarnessOptions, MutationKind, SatEngineOptions,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::{BitSim, Netlist, NodeId, Signal, Word};
use fmaverify_softfloat::{FpFormat, RoundingMode};

fn tiny() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

fn word_by_name(n: &Netlist, prefix: &str, width: usize, from_outputs: bool) -> Word {
    Word::from_bits(
        (0..width)
            .map(|i| {
                let name = format!("{prefix}[{i}]");
                if from_outputs {
                    n.find_output(&name).expect("output exists")
                } else {
                    n.find_input(&name).expect("input exists")
                }
            })
            .collect(),
    )
}

#[test]
fn injected_faults_are_caught_with_oracle_confirmed_counterexamples() {
    let cfg = tiny();
    let w = cfg.format.width() as usize;

    // Build the base (non-isolated) harness and materialize the constraints
    // of every case of every instruction as named probes, so they survive
    // fault injection (which preserves names, not node ids).
    let mut base = build_harness(
        &cfg,
        HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        },
    );
    let mut case_probe_names: Vec<(FpuOp, CaseId, String)> = Vec::new();
    for op in FpuOp::ALL {
        for case in enumerate_cases(&cfg, op) {
            let sig = base.case_constraint(op, case);
            let name = format!("case.{op:?}.{}", case.label());
            base.netlist.probe(&name, sig);
            case_probe_names.push((op, case, name));
        }
    }

    // Faults go into logic exclusive to the implementation side.
    let impl_roots: Vec<Signal> = base
        .impl_fpu
        .outputs
        .result
        .bits()
        .iter()
        .chain(base.impl_fpu.outputs.flags.bits())
        .copied()
        .collect();
    let ref_roots: Vec<Signal> = base
        .ref_fpu
        .outputs
        .result
        .bits()
        .iter()
        .chain(base.ref_fpu.outputs.flags.bits())
        .copied()
        .collect();
    let in_impl = base.netlist.comb_cone(&impl_roots);
    let in_ref = base.netlist.comb_cone(&ref_roots);
    let targets: Vec<NodeId> = base
        .netlist
        .node_ids()
        .filter(|id| {
            in_impl[id.index()]
                && !in_ref[id.index()]
                && matches!(base.netlist.node(*id), fmaverify_netlist::Node::And(..))
        })
        .collect();
    assert!(targets.len() > 200, "expected a rich implementation cone");

    let num_faults = 10;
    let mut caught = 0;
    let mut skipped_unobservable = 0;
    for i in 0..num_faults {
        let kind = MutationKind::ALL[i % MutationKind::ALL.len()];
        let target = targets[i * targets.len() / num_faults];
        let mutated = inject_fault(&base.netlist, target, kind);
        let miter = mutated.find_output("miter").expect("miter output");
        let a = word_by_name(&mutated, "a", w, false);
        let b = word_by_name(&mutated, "b", w, false);
        let c = word_by_name(&mutated, "c", w, false);
        let opw = word_by_name(&mutated, "op", 3, false);
        let rmw = word_by_name(&mutated, "rm", 2, false);

        // Find an opcode under which the fault is observable (random sim).
        let observable_op = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i as u64);
            let mut sim = BitSim::new(&mutated);
            let mut found = None;
            for _ in 0..40_000 {
                let opc = rng.gen_range(0..FpuOp::ALL.len() as u32);
                sim.set_word(&a, rng.gen::<u128>() & cfg.format.mask());
                sim.set_word(&b, rng.gen::<u128>() & cfg.format.mask());
                sim.set_word(&c, rng.gen::<u128>() & cfg.format.mask());
                sim.set_word(&opw, opc as u128);
                sim.set_word(&rmw, rng.gen_range(0..4));
                sim.eval();
                if sim.get(miter) {
                    found = Some(FpuOp::decode(opc));
                    break;
                }
            }
            found
        };
        let Some(op) = observable_op else {
            skipped_unobservable += 1;
            continue;
        };

        // Formal hunt: run the cases of that instruction until one fails.
        let mut cex: Option<HashMap<String, bool>> = None;
        for (case_op, case, probe) in &case_probe_names {
            if *case_op != op {
                continue;
            }
            let constraint = mutated.find_probe(probe).expect("constraint probe");
            let failed = match case {
                CaseId::FarOut | CaseId::Monolithic => {
                    let out =
                        check_miter_sat(&mutated, miter, constraint, &SatEngineOptions::default());
                    (!out.holds).then_some(out.counterexample).flatten()
                }
                _ => {
                    let out =
                        check_miter_bdd(&mutated, miter, constraint, &BddEngineOptions::default());
                    (!out.holds).then_some(out.counterexample).flatten()
                }
            };
            if let Some(assignment) = failed {
                cex = Some(assignment);
                break;
            }
        }
        let assignment = cex.unwrap_or_else(|| {
            panic!("observable fault {kind:?} at {target:?} (op {op:?}) escaped the formal flow")
        });

        // Replay and arbitrate with the softfloat oracle.
        let mut sim = BitSim::new(&mutated);
        for (name, value) in &assignment {
            if let Some(sig) = mutated.find_input(name) {
                sim.set(sig, *value);
            }
        }
        sim.eval();
        assert!(sim.get(miter), "counterexample must replay");
        let va = sim.get_word(&a);
        let vb = sim.get_word(&b);
        let vc = sim.get_word(&c);
        let vrm = RoundingMode::decode(sim.get_word(&rmw) as u32);
        let vop = FpuOp::decode(sim.get_word(&opw) as u32);
        let want = vop.apply(&cfg, va, vb, vc, vrm);
        let ref_result = word_by_name(&mutated, "ref.result", w, true);
        let ref_flags = word_by_name(&mutated, "ref.flags", 4, true);
        let impl_result = word_by_name(&mutated, "impl.result", w, true);
        let impl_flags = word_by_name(&mutated, "impl.flags", 4, true);
        assert_eq!(
            sim.get_word(&ref_result),
            want.bits,
            "the reference stays correct on the counterexample"
        );
        assert_eq!(sim.get_word(&ref_flags) as u32, want.flags.encode());
        assert!(
            sim.get_word(&impl_result) != want.bits
                || sim.get_word(&impl_flags) as u32 != want.flags.encode(),
            "the faulty implementation must actually be wrong"
        );
        caught += 1;
    }
    assert!(
        caught >= num_faults - skipped_unobservable,
        "caught {caught}, skipped {skipped_unobservable}"
    );
    assert!(
        caught >= 6,
        "too few faults were observable/caught: {caught}"
    );
}
