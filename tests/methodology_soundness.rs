//! Soundness cross-checks of the methodology itself: constraint semantics,
//! engine agreement, isolation consistency, and minimization equivalence.

use fmaverify::{
    build_harness, check_miter_bdd, check_miter_sat, enumerate_cases, BddEngineOptions, CaseId,
    HarnessOptions, Minimize, SatEngineOptions,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::BitSim;
use fmaverify_softfloat::FpFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

#[test]
fn delta_case_constraints_are_mutually_exclusive() {
    // For any concrete input, at most one δ-level constraint (far-out or a
    // single overlap δ) of the FMA instruction is satisfied (exactly one
    // once the shared multiplier conjunct holds).
    let cfg = tiny();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let cases = enumerate_cases(&cfg, FpuOp::Fma);
    let mut delta_level: Vec<fmaverify_netlist::Signal> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for case in &cases {
        match case {
            CaseId::FarOut | CaseId::OverlapNoCancel { .. } => {
                delta_level.push(h.case_constraint(FpuOp::Fma, *case))
            }
            CaseId::OverlapCancel { delta, .. } => {
                if seen.insert(*delta) {
                    delta_level.push(
                        h.case_constraint(FpuOp::Fma, CaseId::OverlapNoCancel { delta: *delta }),
                    );
                }
            }
            CaseId::Monolithic => unreachable!(),
        }
    }
    let mut sim = BitSim::new(&h.netlist);
    let mut rng = StdRng::seed_from_u64(0xabc);
    let wwin = cfg.window_bits() as u32;
    let st_mask = (1u128 << wwin) - 1;
    for _ in 0..400 {
        sim.set_word(&h.inputs.a, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&h.inputs.b, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&h.inputs.c, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&h.inputs.op, FpuOp::Fma.encode() as u128);
        sim.set_word(&h.inputs.rm, rng.gen_range(0..4));
        let (sw, tw) = h.st.clone().expect("isolated");
        sim.set_word(&sw, rng.gen::<u128>() & st_mask);
        sim.set_word(&tw, rng.gen::<u128>() & st_mask);
        sim.eval();
        let active: usize = delta_level.iter().filter(|&&c| sim.get(c)).count();
        assert!(
            active <= 1,
            "δ constraints must be mutually exclusive (got {active})"
        );
    }
}

#[test]
fn bdd_and_sat_engines_agree_per_case() {
    let cfg = tiny();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let cases = enumerate_cases(&cfg, FpuOp::Fma);
    let sample: Vec<CaseId> = cases
        .iter()
        .copied()
        .filter(|c| {
            matches!(
                c,
                CaseId::FarOut
                    | CaseId::OverlapNoCancel { delta: 3 }
                    | CaseId::OverlapCancel {
                        delta: 0,
                        sha: fmaverify::ShaCase::Exact(2)
                    }
                    | CaseId::OverlapCancel {
                        delta: -1,
                        sha: fmaverify::ShaCase::Rest
                    }
            )
        })
        .collect();
    assert!(sample.len() >= 3);
    for case in sample {
        let constraint = h.case_constraint(FpuOp::Fma, case);
        let bdd = check_miter_bdd(
            &h.netlist,
            h.miter,
            constraint,
            &BddEngineOptions::default(),
        );
        let sat = check_miter_sat(
            &h.netlist,
            h.miter,
            constraint,
            &SatEngineOptions::default(),
        );
        assert!(!bdd.aborted && !sat.unknown);
        assert_eq!(bdd.holds, sat.holds, "engines disagree on {case:?}");
        assert!(bdd.holds, "the unmutated design verifies");
    }
}

#[test]
fn minimization_strategies_agree() {
    // Constrain, restrict, and no-minimization must give the same verdict;
    // only their node counts differ (the paper's ablation).
    let cfg = tiny();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let case = CaseId::OverlapCancel {
        delta: 1,
        sha: fmaverify::ShaCase::Exact(1),
    };
    let constraint = h.case_constraint(FpuOp::Fma, case);
    for minimize in [Minimize::Constrain, Minimize::Restrict, Minimize::None] {
        let out = check_miter_bdd(
            &h.netlist,
            h.miter,
            constraint,
            &BddEngineOptions {
                minimize,
                ..BddEngineOptions::default()
            },
        );
        assert!(out.holds, "verdict differs under {minimize:?}");
    }
}

#[test]
fn isolated_harness_consistent_under_valid_pseudo_inputs() {
    // For concrete operands and any S'/T' split of the *true* product, the
    // isolated reference and implementation agree, and the constraint holds
    // — the behavioural core of the isolation argument.
    let cfg = tiny();
    let h = build_harness(&cfg, HarnessOptions::default());
    let (sw, tw) = h.st.clone().expect("isolated");
    let mut sim = BitSim::new(&h.netlist);
    let mut rng = StdRng::seed_from_u64(0x51);
    let f = cfg.format.frac_bits();
    let wwin = cfg.window_bits() as u32;
    let st_mask = (1u128 << wwin) - 1;
    for _ in 0..3000 {
        let a = rng.gen::<u128>() & cfg.format.mask();
        let b = rng.gen::<u128>() & cfg.format.mask();
        let c = rng.gen::<u128>() & cfg.format.mask();
        // Compute the significand product the way the FPUs decode operands.
        let sig = |x: u128| -> u128 {
            let e = (x >> f) & ((1 << cfg.format.exp_bits()) - 1);
            let frac = x & cfg.format.frac_mask();
            if e == 0 || e == (1 << cfg.format.exp_bits()) - 1 {
                0 // zero, flushed denormal, NaN/Inf all present 0 (FTZ)
            } else {
                frac | 1 << f
            }
        };
        let op = rng.gen_range(0..4u32);
        let ma = sig(a);
        let mb = if op == FpuOp::Add.encode() {
            1u128 << f
        } else {
            sig(b)
        };
        let product = ma * mb;
        let s = rng.gen::<u128>() & st_mask;
        let t = product.wrapping_sub(s) & st_mask;
        sim.set_word(&h.inputs.a, a);
        sim.set_word(&h.inputs.b, b);
        sim.set_word(&h.inputs.c, c);
        sim.set_word(&h.inputs.op, op as u128);
        sim.set_word(&h.inputs.rm, rng.gen_range(0..4));
        sim.set_word(&sw, s);
        sim.set_word(&tw, t);
        sim.eval();
        assert!(
            sim.get(h.mult_constraint),
            "a true-product split must satisfy the constraint (a={a:#x} b={b:#x} op={op})"
        );
        assert!(!sim.get(h.miter), "isolated FPUs disagreed");
    }
}

#[test]
fn far_out_discharged_by_sat_quickly() {
    let cfg = tiny();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let farout = h.case_constraint(FpuOp::Fma, CaseId::FarOut);
    let out = check_miter_sat(
        &h.netlist,
        h.miter,
        farout,
        &SatEngineOptions {
            sweep_first: true,
            conflict_budget: None,
        },
    );
    assert!(out.holds);
}
