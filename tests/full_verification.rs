//! End-to-end reproduction of the paper's main result at a reduced format:
//! every instruction of the FPU is exhaustively verified against the
//! reference model by the case-split BDD/SAT flow, with multiplier isolation
//! and its soundness obligation, and the case split is proven complete.

use fmaverify::{
    enumerate_cases, prove_completeness, prove_multiplier_soundness, EngineKind, HarnessOptions,
    Session,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_softfloat::FpFormat;

fn tiny(denormals: DenormalMode) -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals,
    }
}

#[test]
fn all_instructions_verify_flush_to_zero() {
    let cfg = tiny(DenormalMode::FlushToZero);
    for op in FpuOp::ALL {
        let report = Session::new(&cfg).run(op);
        assert!(
            report.all_hold(),
            "{op:?} failed: {:?}",
            report.first_failure().map(|f| (&f.case, &f.counterexample))
        );
        assert_eq!(report.results.len(), enumerate_cases(&cfg, op).len());
        // The engine split follows the paper: far-out/mult by SAT, overlap
        // by BDD.
        for r in &report.results {
            match r.case {
                fmaverify::CaseId::FarOut | fmaverify::CaseId::Monolithic => {
                    assert_eq!(r.engine, EngineKind::Sat)
                }
                _ => assert_eq!(r.engine, EngineKind::Bdd),
            }
            // The default policy never needs to escalate on the clean design.
            assert_eq!(r.escalations(), 0);
        }
    }
}

#[test]
fn all_instructions_verify_full_ieee() {
    // Section 6: fully IEEE-compliant (denormal operands honored). The case
    // count grows quadratically but each case stays tractable.
    let cfg = tiny(DenormalMode::FullIeee);
    for op in [FpuOp::Fma, FpuOp::Add, FpuOp::Mul] {
        let report = Session::new(&cfg).run(op);
        assert!(
            report.all_hold(),
            "{op:?} failed: {:?}",
            report.first_failure().map(|f| (&f.case, &f.counterexample))
        );
    }
}

#[test]
fn fma_verifies_at_micro_format() {
    let cfg = FpuConfig {
        format: FpFormat::MICRO,
        denormals: DenormalMode::FlushToZero,
    };
    let report = Session::new(&cfg).run(FpuOp::Fma);
    assert!(report.all_hold(), "{:?}", report.first_failure());
    // BDD statistics were recorded for the overlap cases.
    assert!(report
        .results
        .iter()
        .any(|r| r.stats.peak_bdd_nodes.unwrap_or(0) > 0));
}

#[test]
fn soundness_obligation_holds() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let r = prove_multiplier_soundness(&tiny(mode), &[]);
        assert!(r.holds);
        assert!(r.cone_ands < r.full_fpu_ands);
    }
}

#[test]
fn case_split_is_complete() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        for op in FpuOp::ALL {
            let r = prove_completeness(&tiny(mode), op);
            assert!(r.holds(), "op {op:?} mode {mode:?}");
        }
    }
}

#[test]
fn verification_without_isolation_also_passes_for_add() {
    // The paper verifies the add instruction with the multiplier in the
    // cone of influence: the constant 1.0 operand lets constant propagation
    // collapse the multiplier.
    let cfg = tiny(DenormalMode::FlushToZero);
    let report = Session::new(&cfg)
        .harness_options(HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        })
        .run(FpuOp::Add);
    assert!(report.all_hold(), "{:?}", report.first_failure());
}

#[test]
fn pipelined_implementation_agrees_with_reference_by_simulation() {
    // The sequential (three-stage, clock-gated) implementation is validated
    // against the combinational reference by stepping the netlist — the
    // "portable to simulation" leg of the methodology.
    use fmaverify_fpu::{
        build_impl_fpu, build_ref_fpu, FpuInputs, MultiplierMode, PipelineMode, ProductSource,
    };
    use fmaverify_netlist::{BitSim, Netlist};
    use rand::{Rng, SeedableRng};

    let cfg = tiny(DenormalMode::FlushToZero);
    let mut n = Netlist::new();
    let inputs = FpuInputs::new(&mut n, cfg.format);
    let ref_fpu = build_ref_fpu(&mut n, &cfg, &inputs, ProductSource::Exact);
    let impl_fpu = build_impl_fpu(
        &mut n,
        &cfg,
        &inputs,
        MultiplierMode::Real,
        PipelineMode::ThreeStage,
    );
    n.assert_closed();
    let mut sim = BitSim::new(&n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfeed);
    for _ in 0..1500 {
        sim.reset();
        sim.set_word(&inputs.a, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&inputs.b, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&inputs.c, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&inputs.op, rng.gen_range(0..FpuOp::ALL.len() as u128));
        sim.set_word(&inputs.rm, rng.gen_range(0..4));
        for _ in 0..PipelineMode::ThreeStage.latency() {
            sim.step();
        }
        assert_eq!(
            sim.get_word(&ref_fpu.outputs.result),
            sim.get_word(&impl_fpu.outputs.result),
        );
        assert_eq!(
            sim.get_word(&ref_fpu.outputs.flags),
            sim.get_word(&impl_fpu.outputs.flags),
        );
    }
}

/// The paper's exact problem size: one double-precision case per class,
/// formally verified. Slow (~2 min); run with `cargo test -- --ignored`.
#[test]
#[ignore = "full double precision; ~2 minutes"]
fn double_precision_spot_checks() {
    use fmaverify::{
        build_harness, check_miter_bdd_parts, check_miter_sat_parts, paper_order, BddEngineOptions,
        CaseId, SatEngineOptions, ShaCase,
    };
    let cfg = FpuConfig {
        format: FpFormat::DOUBLE,
        denormals: DenormalMode::FlushToZero,
    };
    let mut h = build_harness(&cfg, fmaverify::HarnessOptions::default());
    for (case, delta) in [
        (CaseId::OverlapNoCancel { delta: 30 }, Some(30)),
        (
            CaseId::OverlapCancel {
                delta: 0,
                sha: ShaCase::Exact(60),
            },
            Some(0),
        ),
    ] {
        let parts = h.case_constraint_parts(FpuOp::Fma, case);
        let order = paper_order(&h, delta);
        let out = check_miter_bdd_parts(
            &h.netlist,
            h.miter,
            &parts,
            &BddEngineOptions {
                order,
                gc_threshold: 8_000_000,
                node_limit: Some(80_000_000),
                ..BddEngineOptions::default()
            },
        );
        assert!(out.holds && !out.aborted, "DP case {case:?}");
    }
    let parts = h.case_constraint_parts(FpuOp::Fma, CaseId::FarOut);
    let out = check_miter_sat_parts(&h.netlist, h.miter, &parts, &SatEngineOptions::default());
    assert!(out.holds, "DP far-out");
}
