//! The simulation/emulation leg of the methodology: "Since our methodology
//! is portable to alternate frameworks, we also validate the design without
//! the multiplier overrides or case-splits using simulation and semi-formal
//! methods."
//!
//! A targeted test-case generator (FPgen-style) drives both FPUs across
//! formats and denormal modes; every vector is checked against the softfloat
//! oracle and the two FPUs against each other. A coverage summary asserts
//! the generator actually reaches the targeted corners. Finally, the two
//! implementation-FPU variants are proven equivalent by the CEC engine.

use std::collections::HashMap;

use fmaverify::check_equivalence;
use fmaverify_fpu::{
    build_impl_fpu, build_ref_fpu, classify, DenormalMode, FpuConfig, FpuInputs, FpuOp,
    MultiplierMode, PipelineMode, ProductSource, Target, TestCaseGenerator,
};
use fmaverify_netlist::{BitSim, Netlist};
use fmaverify_softfloat::{FpFormat, RoundingMode};

fn oracle(cfg: &FpuConfig, op: FpuOp, a: u128, b: u128, c: u128, rm: RoundingMode) -> (u128, u32) {
    let r = op.apply(cfg, a, b, c, rm);
    (r.bits, r.flags.encode())
}

#[test]
fn targeted_simulation_regression() {
    for (fmt, per_target) in [
        (FpFormat::new(3, 2), 400),
        (FpFormat::MICRO, 400),
        (FpFormat::HALF, 250),
    ] {
        for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
            let cfg = FpuConfig {
                format: fmt,
                denormals: mode,
            };
            let mut n = Netlist::new();
            let inputs = FpuInputs::new(&mut n, fmt);
            let ref_fpu = build_ref_fpu(&mut n, &cfg, &inputs, ProductSource::Exact);
            let impl_fpu = build_impl_fpu(
                &mut n,
                &cfg,
                &inputs,
                MultiplierMode::Real,
                PipelineMode::Combinational,
            );
            let mut sim = BitSim::new(&n);
            let mut gen = TestCaseGenerator::new(fmt, 0xc0ffee);
            let mut coverage: HashMap<&'static str, usize> = HashMap::new();
            for target in Target::ALL {
                for tc in gen.batch(target, per_target) {
                    *coverage.entry(classify(fmt, &tc)).or_default() += 1;
                    sim.set_word(&inputs.a, tc.a);
                    sim.set_word(&inputs.b, tc.b);
                    sim.set_word(&inputs.c, tc.c);
                    sim.set_word(&inputs.op, tc.op.encode() as u128);
                    sim.set_word(&inputs.rm, tc.rm.encode() as u128);
                    sim.eval();
                    let (want, want_flags) = oracle(&cfg, tc.op, tc.a, tc.b, tc.c, tc.rm);
                    let ref_out = sim.get_word(&ref_fpu.outputs.result);
                    let impl_out = sim.get_word(&impl_fpu.outputs.result);
                    assert_eq!(
                        ref_out, want,
                        "ref vs oracle: {tc:?} mode {mode:?} fmt {fmt:?}"
                    );
                    assert_eq!(
                        impl_out, want,
                        "impl vs oracle: {tc:?} mode {mode:?} fmt {fmt:?}"
                    );
                    assert_eq!(
                        sim.get_word(&ref_fpu.outputs.flags) as u32,
                        want_flags,
                        "ref flags: {tc:?}"
                    );
                    assert_eq!(
                        sim.get_word(&impl_fpu.outputs.flags) as u32,
                        want_flags,
                        "impl flags: {tc:?}"
                    );
                }
            }
            // The generator must actually reach the interesting classes.
            for class in ["normal", "denormal", "zero", "inf", "nan"] {
                assert!(
                    coverage.get(class).copied().unwrap_or(0) > 0,
                    "no coverage of class {class} at {fmt:?}"
                );
            }
        }
    }
}

#[test]
fn implementation_variants_are_equivalent_by_cec() {
    // The Booth and AND-array implementation FPUs must be combinationally
    // equivalent — the Verity-style CEC leg of the flow.
    let cfg = FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    };
    let build = |mode: MultiplierMode| -> Netlist {
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        build_impl_fpu(&mut n, &cfg, &inputs, mode, PipelineMode::Combinational);
        n
    };
    let booth = build(MultiplierMode::Real);
    let array = build(MultiplierMode::RealArray);
    let result = check_equivalence(&booth, &array);
    assert!(
        result.equivalent,
        "variants differ on output {:?} with cex {:?}",
        result.failing_output, result.counterexample
    );
    assert!(
        result.swept_merges > 0,
        "sweeping should find shared structure"
    );
}

#[test]
fn reference_and_implementation_equivalent_by_cec() {
    // The CEC engine can also settle ref-vs-impl outright at tiny formats
    // (at scale this is what the case-split flow replaces).
    let cfg = FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    };
    let reference = {
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        let fpu = build_ref_fpu(&mut n, &cfg, &inputs, ProductSource::Exact);
        // Re-declare outputs under a common name for the comparison.
        for (i, &b) in fpu.outputs.result.bits().iter().enumerate() {
            n.output(format!("out[{i}]"), b);
        }
        for (i, &b) in fpu.outputs.flags.bits().iter().enumerate() {
            n.output(format!("flag[{i}]"), b);
        }
        n
    };
    let implementation = {
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        let fpu = build_impl_fpu(
            &mut n,
            &cfg,
            &inputs,
            MultiplierMode::Real,
            PipelineMode::Combinational,
        );
        for (i, &b) in fpu.outputs.result.bits().iter().enumerate() {
            n.output(format!("out[{i}]"), b);
        }
        for (i, &b) in fpu.outputs.flags.bits().iter().enumerate() {
            n.output(format!("flag[{i}]"), b);
        }
        n
    };
    let result = check_equivalence(&reference, &implementation);
    assert!(
        result.equivalent,
        "ref vs impl differ on {:?}",
        result.failing_output
    );
}
