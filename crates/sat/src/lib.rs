//! CDCL SAT solving for the FMA FPU verification flow.
//!
//! This crate provides the satisfiability engine referenced throughout the
//! paper: it discharges the far-out cases, the multiply instruction, the
//! multiplier-isolation soundness obligations, the case-split completeness
//! tautology, and it powers simulation-guided SAT sweeping in
//! `fmaverify-netlist`.
//!
//! # Examples
//!
//! ```
//! use fmaverify_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var().positive();
//! let y = solver.new_var().positive();
//! // (x OR y) AND (!x OR y) forces y.
//! solver.add_clause(&[x, y]);
//! solver.add_clause(&[!x, y]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert!(solver.model_value(y.var()).is_true());
//! ```

#![warn(missing_docs)]

mod dimacs;
mod lit;
mod solver;

pub use dimacs::{parse_dimacs, write_dimacs, Cnf, ParseDimacsError};
pub use lit::{LBool, Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
