//! DIMACS CNF reading and writing.
//!
//! The verification flow is self-contained, but DIMACS export lets individual
//! proof obligations (e.g. the multiplier-isolation soundness check) be
//! re-checked with an external solver, mirroring the paper's claim that no
//! customized toolset is necessary.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::lit::Lit;

/// A CNF formula: a variable count plus a list of clauses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Adds a clause, growing `num_vars` to cover its literals.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(lits.to_vec());
    }

    /// Loads the formula into a fresh [`crate::Solver`].
    pub fn to_solver(&self) -> crate::Solver {
        let mut solver = crate::Solver::new();
        for _ in 0..self.num_vars {
            solver.new_var();
        }
        for c in &self.clauses {
            solver.add_clause(c);
        }
        solver
    }
}

/// Error produced when parsing malformed DIMACS input.
#[derive(Debug)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> ParseDimacsError {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }
}

/// Parses a DIMACS CNF file from a reader.
///
/// # Errors
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens, or a
/// clause left unterminated at end of input. I/O errors are reported through
/// the same error type.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "c example\np cnf 2 2\n1 2 0\n-1 0\n";
/// let cnf = fmaverify_sat::parse_dimacs(&mut text.as_bytes())?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs<R: BufRead>(reader: &mut R) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| ParseDimacsError::new(lineno, format!("io error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError::new(
                    lineno,
                    "expected 'p cnf <vars> <clauses>'",
                ));
            }
            let nv: usize = parts[1]
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, "bad variable count"))?;
            declared_vars = Some(nv);
            cnf.num_vars = cnf.num_vars.max(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let val: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, format!("bad literal '{tok}'")))?;
            if val == 0 {
                cnf.add_clause(&std::mem::take(&mut current));
            } else {
                current.push(Lit::from_dimacs(val));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::new(
            0,
            "unterminated clause at end of input",
        ));
    }
    if let Some(nv) = declared_vars {
        if cnf.num_vars > nv {
            return Err(ParseDimacsError::new(
                0,
                format!("clause uses variable beyond declared count {nv}"),
            ));
        }
    }
    Ok(cnf)
}

/// Writes a formula in DIMACS CNF format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(writer: &mut W, cnf: &Cnf) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars, cnf.clauses.len())?;
    for clause in &cnf.clauses {
        for l in clause {
            write!(writer, "{} ", l.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        cnf.add_clause(&[Lit::from_dimacs(1), Lit::from_dimacs(-2)]);
        cnf.add_clause(&[Lit::from_dimacs(2), Lit::from_dimacs(3)]);
        let mut buf = Vec::new();
        write_dimacs(&mut buf, &cnf).expect("write to vec");
        let parsed = parse_dimacs(&mut buf.as_slice()).expect("parse own output");
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn parse_with_comments_and_header() {
        let text = "c comment\nc more\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(&mut text.as_bytes()).expect("valid input");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.to_solver().solve(), SolveResult::Sat);
    }

    #[test]
    fn parse_clause_spanning_lines() {
        let text = "p cnf 2 1\n1\n2 0\n";
        let cnf = parse_dimacs(&mut text.as_bytes()).expect("valid input");
        assert_eq!(
            cnf.clauses,
            vec![vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]]
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_dimacs(&mut "p cnf x 1\n".as_bytes()).is_err());
        assert!(parse_dimacs(&mut "p cnf 1 1\n1 foo 0\n".as_bytes()).is_err());
        assert!(parse_dimacs(&mut "p cnf 1 1\n1\n".as_bytes()).is_err());
        assert!(parse_dimacs(&mut "p cnf 1 1\n1 2 0\n".as_bytes()).is_err());
    }
}
