//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The design follows the MiniSat lineage: two-watched-literal propagation,
//! first-UIP conflict analysis with clause minimization, VSIDS variable
//! activities with phase saving, Luby restarts, and activity/LBD-driven
//! deletion of learnt clauses. This is the workhorse engine the paper uses for
//! the far-out cases, the multiply instruction, the multiplier-isolation
//! soundness obligations, and SAT sweeping.

use crate::lit::{LBool, Lit, Var};

/// Index of a clause in the solver's clause arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    activity: f64,
    lbd: u32,
    #[allow(dead_code)] // recorded for debugging / future proof logging
    learnt: bool,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watcher need not be inspected.
    blocker: Lit,
}

/// Result of a satisfiability query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a decision was reached.
    Unknown,
}

/// Aggregate solver statistics, useful for experiment reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of problem (original) clauses added.
    pub original_clauses: u64,
}

/// Max-heap of variables ordered by VSIDS activity.
#[derive(Debug, Default)]
struct VarOrderHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    indices: Vec<usize>,
}

impl VarOrderHeap {
    fn ensure_var(&mut self, v: Var) {
        if self.indices.len() <= v.index() {
            self.indices.resize(v.index() + 1, usize::MAX);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.indices
            .get(v.index())
            .is_some_and(|&i| i != usize::MAX)
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        self.ensure_var(v);
        if self.contains(v) {
            return;
        }
        self.indices[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.indices[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.indices[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            let i = self.indices[v.index()];
            self.sift_up(i, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] > activity[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.indices[self.heap[a].index()] = a;
        self.indices[self.heap[b].index()] = b;
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use fmaverify_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
/// solver.add_clause(&[a, b]);
/// solver.add_clause(&[!a]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert!(solver.model_value(b.var()).is_true());
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    free_list: Vec<u32>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarOrderHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    ok: bool,
    seen: Vec<bool>,
    analyze_stack: Vec<Lit>,
    analyze_toclear: Vec<Lit>,
    learnt_refs: Vec<ClauseRef>,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    stats: SolverStats,
    conflict_assumptions: Vec<Lit>,
    model: Vec<LBool>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: 0.0,
            ..Solver::default()
        }
    }

    /// Returns the number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Returns aggregate statistics for this solver.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the next [`Solver::solve`] call to at most `conflicts`
    /// conflicts; the call returns [`SolveResult::Unknown`] when exhausted.
    /// Pass `None` to remove the limit.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Randomizes the saved decision phases from a seed (a cheap xorshift).
    /// Successive satisfiable solves then tend to produce *different*
    /// models, which the semi-formal stimulus generator exploits.
    pub fn randomize_polarities(&mut self, seed: u64) {
        let mut x = seed | 1;
        for p in &mut self.polarity {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *p = x & 1 == 1;
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Current value of a literal under the partial assignment.
    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].xor(!l.is_positive())
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver detected unsatisfiability at the root
    /// level while adding the clause; the solver is then permanently
    /// unsatisfiable.
    ///
    /// # Panics
    /// Panics if called between `solve` invocations while decisions are still
    /// on the trail (the solver always backtracks fully, so this cannot occur
    /// through the public API) or if a literal's variable was not created by
    /// this solver.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if !self.ok {
            return false;
        }
        // Sort, dedup, and discard tautologies / falsified literals.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out = Vec::with_capacity(ls.len());
        let mut i = 0;
        while i < ls.len() {
            let l = ls[i];
            assert!(l.var().index() < self.num_vars(), "unknown variable {l:?}");
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        self.stats.original_clauses += 1;
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_new_clause(out, false);
                true
            }
        }
    }

    fn alloc_clause(&mut self, c: Clause) -> ClauseRef {
        if let Some(slot) = self.free_list.pop() {
            self.clauses[slot as usize] = c;
            ClauseRef(slot)
        } else {
            self.clauses.push(c);
            ClauseRef((self.clauses.len() - 1) as u32)
        }
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let w0 = lits[0];
        let w1 = lits[1];
        let cref = self.alloc_clause(Clause {
            lits,
            activity: 0.0,
            lbd: 0,
            learnt,
            deleted: false,
        });
        self.watches[(!w0).code()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watcher { cref, blocker: w0 });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnt_clauses = self.learnt_refs.len() as u64;
        }
        cref
    }

    #[inline]
    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.lit_value(l).is_undef());
        let vi = l.var().index();
        self.assigns[vi] = LBool::from_bool(l.is_positive());
        self.level[vi] = self.trail_lim.len() as u32;
        self.reason[vi] = reason;
        self.trail.push(l);
    }

    /// Runs unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = 0;
            let mut wi = 0;
            'watchers: while wi < ws.len() {
                let w = ws[wi];
                wi += 1;
                if self.lit_value(w.blocker).is_true() {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref;
                // Inspect the clause; make sure the false literal is lits[1].
                let (first, len) = {
                    let c = &mut self.clauses[cref.0 as usize];
                    debug_assert!(!c.deleted);
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                    (c.lits[0], c.lits.len())
                };
                if first != w.blocker && self.lit_value(first).is_true() {
                    ws[keep] = Watcher {
                        cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..len {
                    let lk = self.clauses[cref.0 as usize].lits[k];
                    if !self.lit_value(lk).is_false() {
                        let c = &mut self.clauses[cref.0 as usize];
                        c.lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[keep] = Watcher {
                    cref,
                    blocker: first,
                };
                keep += 1;
                if self.lit_value(first).is_false() {
                    // Conflict: copy remaining watchers back and stop.
                    while wi < ws.len() {
                        ws[keep] = ws[wi];
                        keep += 1;
                        wi += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(keep);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let vi = l.var().index();
            self.assigns[vi] = LBool::Undef;
            self.polarity[vi] = l.is_positive();
            self.reason[vi] = None;
            self.order.insert(l.var(), &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn clause_bump(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &r in &self.learnt_refs {
                self.clauses[r.0 as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn clause_decay(&mut self) {
        self.cla_inc /= 0.999;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();

        loop {
            self.clause_bump(cref);
            let lits = self.clauses[cref.0 as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.var_bump(q.var());
                    if self.level[vi] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let l = self.trail[index];
            p = Some(l);
            self.seen[l.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[l.var().index()].expect("implied literal has a reason");
        }
        learnt[0] = !p.expect("UIP literal");

        // Conflict-clause minimization: drop literals implied by the rest.
        self.analyze_toclear = learnt.clone();
        for l in &self.analyze_toclear {
            self.seen[l.var().index()] = true;
        }
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.lit_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);
        for l in std::mem::take(&mut self.analyze_toclear) {
            self.seen[l.var().index()] = false;
        }
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find the backtrack level: the max level among non-UIP literals.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt_level)
    }

    /// Checks whether `l` is redundant in the learnt clause: every literal in
    /// its reason chain is already in the clause (seen) or at level 0.
    fn lit_redundant(&mut self, l: Lit) -> bool {
        let Some(_) = self.reason[l.var().index()] else {
            return false;
        };
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let top = self.analyze_toclear.len();
        while let Some(q) = self.analyze_stack.pop() {
            let Some(r) = self.reason[q.var().index()] else {
                // Decision encountered: `l` is not redundant. Undo marks.
                for lit in self.analyze_toclear.drain(top..) {
                    self.seen[lit.var().index()] = false;
                }
                return false;
            };
            let lits = self.clauses[r.0 as usize].lits.clone();
            for &x in &lits[1..] {
                let vi = x.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    if self.reason[vi].is_none() {
                        for lit in self.analyze_toclear.drain(top..) {
                            self.seen[lit.var().index()] = false;
                        }
                        return false;
                    }
                    self.seen[vi] = true;
                    self.analyze_stack.push(x);
                    self.analyze_toclear.push(x);
                }
            }
        }
        true
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()].is_undef() {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses by (lbd asc, activity desc); drop the worse half,
        // keeping binary and locked (reason) clauses.
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.sort_by(|&a, &b| {
            let ca = &self.clauses[a.0 as usize];
            let cb = &self.clauses[b.0 as usize];
            ca.lbd.cmp(&cb.lbd).then(
                cb.activity
                    .partial_cmp(&ca.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let keep_count = refs.len() / 2;
        let mut kept = Vec::with_capacity(keep_count + 8);
        for (i, &r) in refs.iter().enumerate() {
            let locked = {
                let c = &self.clauses[r.0 as usize];
                let w = c.lits[0];
                self.reason[w.var().index()] == Some(r) && !self.lit_value(w).is_undef()
            };
            let c = &self.clauses[r.0 as usize];
            if i < keep_count || c.lits.len() == 2 || locked || c.lbd <= 2 {
                kept.push(r);
            } else {
                self.detach_clause(r);
            }
        }
        self.learnt_refs = kept;
        self.stats.learnt_clauses = self.learnt_refs.len() as u64;
    }

    fn detach_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = &self.clauses[cref.0 as usize];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!w0).code()].retain(|w| w.cref != cref);
        self.watches[(!w1).code()].retain(|w| w.cref != cref);
        let c = &mut self.clauses[cref.0 as usize];
        c.deleted = true;
        c.lits = Vec::new();
        self.free_list.push(cref.0);
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::conflict_assumptions`] returns a
    /// subset of the assumptions sufficient for unsatisfiability.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.model.clear();
        self.conflict_assumptions.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.max_learnts = (self.stats.original_clauses as f64 * 0.3).max(1000.0);
        let budget_start = self.stats.conflicts;
        let mut restart_seq = 0u64;
        let result = loop {
            restart_seq += 1;
            let conflict_limit = 64 * luby(restart_seq);
            match self.search(conflict_limit, assumptions, budget_start) {
                Some(r) => break r,
                None => {
                    self.stats.restarts += 1;
                }
            }
        };
        self.cancel_until(0);
        result
    }

    /// After an unsatisfiable [`Solver::solve_with_assumptions`] call, the
    /// subset of assumptions involved in the refutation.
    pub fn conflict_assumptions(&self) -> &[Lit] {
        &self.conflict_assumptions
    }

    /// Runs the CDCL search loop. Returns `None` to request a restart.
    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                // Backtracking may undo assumption levels; they are re-assumed
                // by the decision loop below, which also detects failed
                // assumptions.
                self.cancel_until(bt);
                let lbd = self.compute_lbd(&learnt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_new_clause(learnt, true);
                    self.clauses[cref.0 as usize].lbd = lbd;
                    self.clause_bump(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_decay();
                self.clause_decay();
                if self.learnt_refs.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return Some(SolveResult::Unknown);
                    }
                }
                if conflicts_here >= conflict_limit {
                    self.cancel_until(self.assumption_level(assumptions));
                    return None; // restart
                }
                // Place assumptions as pseudo-decisions.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: create an empty decision level.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            self.analyze_final(a);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            self.new_decision_level();
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assigns.clone();
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        let l = Lit::new(v, self.polarity[v.index()]);
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    fn assumption_level(&self, assumptions: &[Lit]) -> u32 {
        (self.decision_level() as usize).min(assumptions.len()) as u32
    }

    /// Computes the subset of assumptions responsible for forcing `!failed`,
    /// storing it (including `failed` itself) in `conflict_assumptions`.
    fn analyze_final(&mut self, failed: Lit) {
        self.conflict_assumptions.clear();
        self.conflict_assumptions.push(failed);
        if self.decision_level() == 0 {
            return;
        }
        let fi = failed.var().index();
        self.seen[fi] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let vi = l.var().index();
            if !self.seen[vi] {
                continue;
            }
            match self.reason[vi] {
                None => {
                    if self.level[vi] > 0 {
                        self.conflict_assumptions.push(l);
                    }
                }
                Some(r) => {
                    let lits = self.clauses[r.0 as usize].lits.clone();
                    for &x in &lits[1..] {
                        if self.level[x.var().index()] > 0 {
                            self.seen[x.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[vi] = false;
        }
        self.seen[fi] = false;
    }

    /// Value of `v` in the most recent satisfying assignment.
    ///
    /// Returns [`LBool::Undef`] if the last solve was not satisfiable or the
    /// variable did not exist at that time.
    pub fn model_value(&self, v: Var) -> LBool {
        self.model.get(v.index()).copied().unwrap_or(LBool::Undef)
    }

    /// Value of a literal in the most recent satisfying assignment.
    pub fn model_lit_value(&self, l: Lit) -> LBool {
        self.model_value(l.var()).xor(!l.is_positive())
    }
}

/// The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u64) -> u64 {
    let mut x = i - 1; // 0-based index into the sequence
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0]]));
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in &v {
            assert!(s.model_lit_value(*l).is_true());
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            s.add_clause(&[v[a], v[b]]);
            s.add_clause(&[!v[a], !v[b]]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3() {
        // PHP(4,3): 4 pigeons, 3 holes — classic small hard UNSAT instance.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..4)
            .map(|_| (0..3).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon);
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    s.add_clause(&[!p[i][h], !p[j][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_sat_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SolveResult::Sat);
        assert!(s.model_lit_value(v[1]).is_true());
        assert_eq!(
            s.solve_with_assumptions(&[!v[0], !v[1]]),
            SolveResult::Unsat
        );
        // Solver remains usable and satisfiable without assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflict_assumption_subset() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve_with_assumptions(&[v[2], !v[0]]), SolveResult::Unsat);
        assert!(s.conflict_assumptions().contains(&!v[0]));
    }

    #[test]
    fn budget_unknown() {
        // A hard instance with a 0-conflict budget returns Unknown.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..7)
            .map(|_| (0..6).map(|_| s.new_var().positive()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon);
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..6 {
            for i in 0..7 {
                for j in (i + 1)..7 {
                    s.add_clause(&[!p[i][h], !p[j][h]]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn incremental_use() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_lit_value(v[2]).is_true());
        s.add_clause(&[!v[2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
