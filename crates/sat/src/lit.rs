//! Variables, literals, and ternary logic values.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
///
/// Variables are created through [`crate::Solver::new_var`]; the numbering is
/// dense, which lets the solver index per-variable state by `Var::index`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from a dense 0-based index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// Returns the dense 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2*var + (positive ? 0 : 1)` so that a literal and its negation
/// are adjacent, and so that literals can directly index watch lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var` with the given polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// Creates a literal from its dense code (as produced by [`Lit::code`]).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Returns the dense code of this literal, usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the positive literal of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Parses a DIMACS-style signed integer (non-zero) into a literal.
    ///
    /// `1` is the positive literal of variable 0, `-1` its negation.
    ///
    /// # Panics
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Lit {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        let var = Var((dimacs.unsigned_abs() - 1) as u32);
        Lit::new(var, dimacs > 0)
    }

    /// Converts this literal to its DIMACS signed-integer representation.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().index())
        } else {
            write!(f, "!v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Ternary truth value used for partial assignments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a `bool` into the corresponding defined value.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Logical negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// XORs a defined value with a `bool`; `Undef` stays `Undef`.
    #[inline]
    pub fn xor(self, flip: bool) -> LBool {
        if flip {
            self.negate()
        } else {
            self
        }
    }

    /// Returns `true` iff the value is `True`.
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// Returns `true` iff the value is `False`.
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// Returns `true` iff the value is unassigned.
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        let v = Var::from_index(7);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(p.code() ^ 1, n.code());
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [1i64, -1, 5, -5, 100, -100] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Lit::from_dimacs(1).var().index(), 0);
    }

    #[test]
    #[should_panic]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(false), LBool::False);
        assert!(LBool::Undef.is_undef());
    }
}
