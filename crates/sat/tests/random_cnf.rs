//! Property tests: the CDCL solver must agree with a brute-force evaluator on
//! random small CNF formulas, both for plain solving and under assumptions.

use fmaverify_sat::{Cnf, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

const MAX_VARS: usize = 8;

fn arb_clause(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
    prop::collection::vec((0..num_vars, prop::bool::ANY), 1..=4).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(v, pos)| Lit::new(Var::from_index(v), pos))
            .collect()
    })
}

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    (2..=MAX_VARS).prop_flat_map(|nv| {
        prop::collection::vec(arb_clause(nv), 0..24).prop_map(move |clauses| {
            let mut cnf = Cnf::new();
            cnf.num_vars = nv;
            for c in &clauses {
                cnf.add_clause(c);
            }
            cnf
        })
    })
}

fn brute_force_sat(cnf: &Cnf, fixed: &[Lit]) -> bool {
    'outer: for bits in 0u32..(1 << cnf.num_vars) {
        let val = |l: Lit| -> bool {
            let b = bits >> l.var().index() & 1 == 1;
            if l.is_positive() {
                b
            } else {
                !b
            }
        };
        for f in fixed {
            if !val(*f) {
                continue 'outer;
            }
        }
        if cnf.clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
            return true;
        }
    }
    false
}

fn model_satisfies(solver: &Solver, cnf: &Cnf) -> bool {
    cnf.clauses
        .iter()
        .all(|c| c.iter().any(|&l| solver.model_lit_value(l).is_true()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force(cnf in arb_cnf()) {
        let mut solver = cnf.to_solver();
        let expect = brute_force_sat(&cnf, &[]);
        match solver.solve() {
            SolveResult::Sat => {
                prop_assert!(expect, "solver said SAT on an UNSAT formula");
                prop_assert!(model_satisfies(&solver, &cnf), "model does not satisfy formula");
            }
            SolveResult::Unsat => prop_assert!(!expect, "solver said UNSAT on a SAT formula"),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn solver_matches_brute_force_under_assumptions(
        cnf in arb_cnf(),
        raw_assumptions in prop::collection::vec((0..MAX_VARS, prop::bool::ANY), 0..4),
    ) {
        let assumptions: Vec<Lit> = raw_assumptions
            .into_iter()
            .filter(|(v, _)| *v < cnf.num_vars)
            .map(|(v, pos)| Lit::new(Var::from_index(v), pos))
            .collect();
        let mut solver = cnf.to_solver();
        let expect = brute_force_sat(&cnf, &assumptions);
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat => {
                prop_assert!(expect);
                prop_assert!(model_satisfies(&solver, &cnf));
                for a in &assumptions {
                    prop_assert!(solver.model_lit_value(*a).is_true(), "assumption violated");
                }
            }
            SolveResult::Unsat => {
                prop_assert!(!expect);
                // The reported conflict subset must itself be sufficient.
                let core: Vec<Lit> = solver.conflict_assumptions().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core literal not an assumption");
                }
                prop_assert!(!brute_force_sat(&cnf, &core), "conflict core is not a core");
            }
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
        // The solver must remain usable afterwards.
        let plain = solver.solve();
        prop_assert_eq!(plain == SolveResult::Sat, brute_force_sat(&cnf, &[]));
    }
}
