//! Scheduler-level tests: engines drive through the [`CaseEngine`] trait,
//! budgets escalate without changing verdicts, results come back in
//! deterministic order, and the cancellation token stops a sweep.

use std::collections::HashMap;

use fmaverify::{
    build_harness, enumerate_cases, run_case_ladder, BddCaseEngine, CancellationToken, CaseEngine,
    CaseId, EngineBudget, EngineKind, EngineOutcome, EngineStage, EngineStats, EngineVerdict,
    Error, HarnessOptions, SatCaseEngine, SchedulePolicy, Session, Verdict,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::Signal;
use fmaverify_softfloat::FpFormat;

fn tiny() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

fn unlimited(engine: std::sync::Arc<dyn CaseEngine>) -> EngineStage {
    EngineStage {
        engine,
        budget: EngineBudget::UNLIMITED,
    }
}

#[test]
fn bdd_and_sat_agree_on_the_same_case_through_the_trait() {
    let cfg = tiny();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let op = FpuOp::Fma;
    let case = CaseId::OverlapNoCancel { delta: 1 };
    let parts = h.case_constraint_parts(op, case);

    let by_bdd = run_case_ladder(
        &h,
        op,
        case,
        &parts,
        &[unlimited(BddCaseEngine::default().shared())],
    );
    let by_sat = run_case_ladder(
        &h,
        op,
        case,
        &parts,
        &[unlimited(SatCaseEngine { sweep_first: false }.shared())],
    );
    assert_eq!(by_bdd.verdict, by_sat.verdict, "engines disagree");
    assert_eq!(by_bdd.verdict, Verdict::Holds);
    assert_eq!(by_bdd.engine, EngineKind::Bdd);
    assert_eq!(by_sat.engine, EngineKind::Sat);
    // Both report stats in the unified shape, each filling its own fields.
    assert!(by_bdd.stats.peak_bdd_nodes.unwrap_or(0) > 0);
    assert!(by_sat.stats.coi_ands.unwrap_or(0) > 0);
}

#[test]
fn tiny_budget_reports_budget_exceeded_without_escalation() {
    let cfg = tiny();
    let report = Session::new(&cfg)
        .budget(EngineBudget {
            node_limit: Some(16),
            conflict_limit: None,
        })
        .escalate(false)
        .run(FpuOp::Fma);
    let exceeded = report
        .results
        .iter()
        .filter(|r| r.verdict == Verdict::BudgetExceeded)
        .count();
    assert!(exceeded > 0, "a 16-node budget must blow on overlap cases");
    // Nothing may be misreported as a proof or a failure.
    assert!(report.first_failure().is_none());
    assert!(!report.all_hold());
}

#[test]
fn escalation_recovers_every_budget_exceeded_case_with_unchanged_verdicts() {
    let cfg = tiny();
    let op = FpuOp::Fma;
    let baseline = Session::new(&cfg).run(op);
    assert!(baseline.all_hold());

    // Same sweep with a per-case BDD budget far too small: every overlap
    // case exceeds it, escalates to swept SAT, and still proves.
    let budgeted = Session::new(&cfg)
        .budget(EngineBudget {
            node_limit: Some(16),
            conflict_limit: None,
        })
        .escalate(true)
        .run(op);
    assert!(budgeted.all_hold(), "{:?}", budgeted.first_failure());
    assert!(budgeted.escalated_cases() > 0, "no case escalated");
    assert_eq!(baseline.results.len(), budgeted.results.len());
    for (b, e) in baseline.results.iter().zip(&budgeted.results) {
        assert_eq!(b.case, e.case, "case order must be deterministic");
        assert_eq!(b.verdict, e.verdict, "escalation changed a verdict");
    }
    // An escalated case carries its whole attempt history: the blown BDD
    // rung first, then the deciding SAT rung.
    let escalated = budgeted
        .results
        .iter()
        .find(|r| r.escalations() > 0)
        .expect("at least one escalated case");
    assert_eq!(escalated.attempts[0].engine, EngineKind::Bdd);
    assert_eq!(escalated.attempts[0].verdict, Verdict::BudgetExceeded);
    assert_eq!(escalated.engine, EngineKind::Sat);
    assert_eq!(escalated.attempts.last().unwrap().verdict, Verdict::Holds);
}

#[test]
fn result_order_is_deterministic_across_thread_counts() {
    let cfg = tiny();
    let op = FpuOp::Add;
    let expected: Vec<CaseId> = enumerate_cases(&cfg, op);
    for threads in [1, 3] {
        let report = Session::new(&cfg).threads(threads).run(op);
        let got: Vec<CaseId> = report.results.iter().map(|r| r.case).collect();
        assert_eq!(got, expected, "order differs at {threads} threads");
    }
}

#[test]
fn pre_canceled_token_skips_every_case() {
    let cfg = tiny();
    let cancel = CancellationToken::new();
    cancel.cancel();
    let report = Session::new(&cfg).cancel(cancel).run(FpuOp::Fma);
    assert!(!report.results.is_empty());
    assert!(report
        .results
        .iter()
        .all(|r| r.verdict == Verdict::Canceled));
    assert!(!report.all_hold());
}

/// A mock engine (exercising third-party [`CaseEngine`] impls) that fails
/// every case with an empty assignment — which also demonstrates the
/// always-on counterexample replay: an assignment the design does not
/// actually fail on comes back with `replay_confirmed == false`.
struct AlwaysFails;

impl CaseEngine for AlwaysFails {
    fn kind(&self) -> EngineKind {
        EngineKind::Sat
    }

    fn name(&self) -> &'static str {
        "mock/fails"
    }

    fn check(
        &self,
        _harness: &fmaverify::Harness,
        _op: FpuOp,
        _case: CaseId,
        _constraint_parts: &[Signal],
        _budget: &EngineBudget,
    ) -> EngineOutcome {
        EngineOutcome {
            verdict: EngineVerdict::Counterexample(HashMap::new()),
            stats: EngineStats::default(),
        }
    }
}

#[test]
fn stop_on_failure_cancels_the_remaining_cases() {
    let cfg = tiny();
    let op = FpuOp::Fma;
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let constraints: Vec<(CaseId, Vec<Signal>)> = enumerate_cases(&cfg, op)
        .into_iter()
        .map(|case| {
            let parts = h.case_constraint_parts(op, case);
            (case, parts)
        })
        .collect();
    assert!(constraints.len() > 2);

    let policy = SchedulePolicy {
        overlap: vec![unlimited(std::sync::Arc::new(AlwaysFails))],
        farout: vec![unlimited(std::sync::Arc::new(AlwaysFails))],
    };
    let cancel = CancellationToken::new();
    let results = Session::new(&cfg)
        .threads(1)
        .stop_on_failure(true)
        .cancel(cancel.clone())
        .policy(policy)
        .run_prepared(&h, op, &constraints);

    assert!(cancel.is_canceled(), "a failure must trip the token");
    assert_eq!(results[0].verdict, Verdict::Fails);
    let cex = results[0].counterexample.as_ref().expect("counterexample");
    assert!(
        !cex.replay_confirmed,
        "a fabricated counterexample must fail the replay check"
    );
    // Single-threaded: everything after the first failure is canceled.
    assert!(results[1..].iter().all(|r| r.verdict == Verdict::Canceled));
}

#[test]
fn errors_escalate_to_the_next_rung() {
    /// An engine that always panics; the scheduler must fold the panic into
    /// an error attempt and walk on down the ladder.
    struct Panics;
    impl CaseEngine for Panics {
        fn kind(&self) -> EngineKind {
            EngineKind::Bdd
        }
        fn name(&self) -> &'static str {
            "mock/panics"
        }
        fn check(
            &self,
            _harness: &fmaverify::Harness,
            _op: FpuOp,
            _case: CaseId,
            _constraint_parts: &[Signal],
            _budget: &EngineBudget,
        ) -> EngineOutcome {
            panic!("deliberate engine failure");
        }
    }

    let cfg = tiny();
    let op = FpuOp::Fma;
    let case = CaseId::OverlapNoCancel { delta: 0 };
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let parts = h.case_constraint_parts(op, case);

    // Panicking rung followed by a real engine: the case still proves.
    let result = run_case_ladder(
        &h,
        op,
        case,
        &parts,
        &[
            unlimited(std::sync::Arc::new(Panics)),
            unlimited(SatCaseEngine { sweep_first: true }.shared()),
        ],
    );
    assert_eq!(result.verdict, Verdict::Holds);
    assert_eq!(result.attempts.len(), 2);
    assert_eq!(result.attempts[0].verdict, Verdict::Error);

    // Panicking rung alone: the error is surfaced, not swallowed.
    let result = run_case_ladder(
        &h,
        op,
        case,
        &parts,
        &[unlimited(std::sync::Arc::new(Panics))],
    );
    assert_eq!(result.verdict, Verdict::Error);
    match result.error.as_ref().expect("typed error") {
        Error::EnginePanic { engine, message } => {
            assert_eq!(*engine, "mock/panics");
            assert!(message.contains("deliberate"));
        }
        other => panic!("expected EnginePanic, got {other:?}"),
    }
    // The ladder folds the panic into one error attempt with zero stats.
    assert_eq!(result.attempts.len(), 1);
    assert_eq!(result.attempts[0].verdict, Verdict::Error);
}
