//! End-to-end mutation-coverage campaigns: every seeded fault must be
//! killed with a replay-confirmed counterexample, pipelined campaigns must
//! reach gates behind the stage registers (the sequential blind spot the
//! fault injector used to have), and warm reruns must replay cases from
//! the proof cache.

use std::path::PathBuf;

use fmaverify::{
    build_harness, fault_candidates, run_campaign, CacheMode, CandidateScope, CaseClass,
    HarnessOptions, MutantStatus, MutationKind, RunConfig,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp, PipelineMode};
use fmaverify_softfloat::FpFormat;

fn tiny() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

fn campaign_config(mutants: usize, seed: u64) -> RunConfig {
    RunConfig {
        mutants: Some(mutants),
        mutation_seed: seed,
        threads: 2,
        ..RunConfig::default()
    }
}

/// A unique temp cache directory per test (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "fmaverify-campaign-it-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn mul_campaign_kills_every_sampled_mutant() {
    let report = run_campaign(&tiny(), FpuOp::Mul, &campaign_config(6, 3));

    assert!(report.candidate_gates > 0);
    assert_eq!(report.mutant_space, report.candidate_gates * 5);
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(report.killed(), 6);
    assert_eq!(report.survived(), 0);
    assert_eq!(report.budget_exceeded(), 0);
    assert!((report.kill_rate() - 1.0).abs() < f64::EPSILON);
    for outcome in &report.outcomes {
        let MutantStatus::Killed {
            case,
            replay_confirmed,
        } = &outcome.status
        else {
            panic!("mutant not killed: {outcome:?}");
        };
        assert!(replay_confirmed, "kill without a replayed counterexample");
        // Mul has exactly one case, so every kill lands in it.
        assert_eq!(case.class(), CaseClass::Monolithic);
        assert!(outcome.cases_run >= 1);
    }
    // The kill matrix accounts for every kill.
    let total: usize = report.kill_matrix().iter().flatten().sum();
    assert_eq!(total, report.killed());
}

#[test]
fn pipelined_campaign_reaches_gates_behind_registers() {
    let cfg = tiny();

    // The fixed enumeration must see more gates than a combinational cone
    // of the same pipelined design: the miter compares registered outputs,
    // so almost all of the datapath hides behind latches.
    let harness = build_harness(
        &cfg,
        HarnessOptions {
            isolate_multiplier: false,
            pipeline: PipelineMode::ThreeStage,
            ..HarnessOptions::default()
        },
    );
    let comb = fault_candidates(&harness.netlist, &[harness.miter], CandidateScope::Comb);
    let seq = fault_candidates(&harness.netlist, &[harness.miter], CandidateScope::Seq);
    assert!(
        seq.len() > comb.len(),
        "sequential scope must widen the candidate set ({} vs {})",
        seq.len(),
        comb.len()
    );

    let config = RunConfig {
        harness: HarnessOptions {
            pipeline: PipelineMode::ThreeStage,
            ..HarnessOptions::default()
        },
        ..campaign_config(4, 5)
    };
    let report = run_campaign(&cfg, FpuOp::Mul, &config);
    assert_eq!(report.outcomes.len(), 4);
    assert_eq!(report.killed(), 4, "pipelined mutant survived: {report:?}");
    assert!(report.outcomes.iter().all(|o| matches!(
        o.status,
        MutantStatus::Killed {
            replay_confirmed: true,
            ..
        }
    )));
}

#[test]
fn warm_campaign_replays_cases_from_the_cache() {
    let dir = TempDir::new("warm");
    let config = RunConfig {
        cache_mode: CacheMode::ReadWrite,
        cache_dir: dir.0.clone(),
        ..campaign_config(3, 11)
    };

    let cold = run_campaign(&tiny(), FpuOp::Mul, &config);
    let warm = run_campaign(&tiny(), FpuOp::Mul, &config);

    // Same seed, same sample: the warm campaign verifies the same mutants
    // and replays the cases whose fingerprints the faults left unchanged.
    assert_eq!(warm.outcomes.len(), cold.outcomes.len());
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.mutation.node, w.mutation.node);
        assert_eq!(c.mutation.kind, w.mutation.kind);
        assert_eq!(c.status, w.status);
    }
    assert_eq!(warm.killed(), cold.killed());
    assert!(
        warm.cases_replayed() > 0,
        "warm campaign never hit the proof cache"
    );
    // The clean baseline is identical both times, so at minimum it replays.
    assert_eq!(warm.clean_cached, warm.clean_cases);
}

#[test]
fn campaign_counts_every_mutation_kind() {
    // Exhaustive over a capped sample large enough to draw all five kinds.
    let report = run_campaign(&tiny(), FpuOp::Mul, &campaign_config(25, 17));
    assert_eq!(report.outcomes.len(), 25);
    assert_eq!(report.survived(), 0);
    assert_eq!(
        report.kinds_with_kills(),
        MutationKind::ALL.len(),
        "a 25-mutant sample should kill every kind at least once"
    );
}
