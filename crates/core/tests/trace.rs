//! Telemetry integration tests: span nesting across a real verification
//! run, counter aggregation across scheduler threads, the JSONL round-trip
//! through `trace::summary`, and the no-op fast path.

use std::collections::HashSet;

use fmaverify::prelude::*;
use fmaverify::trace::{summary, SpanKind as K, TraceEvent};

fn tiny() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

#[test]
fn spans_nest_run_case_stage_across_a_real_run() {
    let cfg = tiny();
    let (tracer, sink) = Tracer::in_memory();
    let report = Session::new(&cfg).tracer(tracer).threads(3).run(FpuOp::Add);
    assert!(report.all_hold());

    let events = sink.events();
    let mut run_ids = HashSet::new();
    let mut case_ids = HashSet::new();
    let mut cases = 0usize;
    let mut stages = 0usize;
    let mut ops = 0usize;
    for ev in &events {
        if let TraceEvent::SpanStart { id, kind, .. } = ev {
            match kind {
                K::Run => {
                    run_ids.insert(*id);
                }
                K::Case => {
                    case_ids.insert(*id);
                }
                _ => {}
            }
        }
    }
    assert_eq!(run_ids.len(), 1, "exactly one run span");
    for ev in &events {
        if let TraceEvent::SpanStart {
            kind, parent, name, ..
        } = ev
        {
            match kind {
                K::Run => assert_eq!(*parent, None),
                K::Case => {
                    cases += 1;
                    assert!(
                        parent.map(|p| run_ids.contains(&p)).unwrap_or(false),
                        "case span {name} must be parented to the run span"
                    );
                }
                K::Stage => {
                    stages += 1;
                    assert!(
                        parent.map(|p| case_ids.contains(&p)).unwrap_or(false),
                        "stage span {name} must be parented to a case span"
                    );
                }
                K::Op => ops += 1,
            }
        }
    }
    assert_eq!(cases, report.results.len());
    // No escalation on the clean design: one stage per case.
    assert_eq!(stages, report.results.len());
    // build_harness + constraints, at minimum.
    assert!(ops >= 2);
    // Every start has a matching end.
    let starts = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SpanStart { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SpanEnd { .. }))
        .count();
    assert_eq!(starts, ends);
}

#[test]
fn counters_aggregate_across_scheduler_threads() {
    let cfg = tiny();
    let (tracer, sink) = Tracer::in_memory();
    let report = Session::new(&cfg).tracer(tracer).threads(3).run(FpuOp::Fma);
    assert!(report.all_hold());

    let events = sink.events();
    let totals = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Totals {
                metrics, threads, ..
            } => Some((metrics.clone(), *threads)),
            _ => None,
        })
        .expect("a totals event at end of run");
    let (metrics, threads) = totals;
    assert!(threads >= 1, "at least one worker registered a slot");

    // Registry totals must equal the sums over the per-case reports.
    assert_eq!(
        metrics.get(Counter::SchedCasesCompleted),
        report.results.len() as u64
    );
    let conflicts: u64 = report
        .results
        .iter()
        .flat_map(|r| &r.attempts)
        .map(|a| a.stats.sat_conflicts.unwrap_or(0))
        .sum();
    assert_eq!(metrics.get(Counter::SatConflicts), conflicts);
    // The FMA split runs both engine classes, so both sides count.
    assert!(metrics.get(Counter::BddIteCalls) > 0);
    assert!(metrics.get(Counter::SatPropagations) > 0);
    assert!(metrics.get(Counter::BddNodesAllocated) > 0);
}

#[test]
fn jsonl_round_trip_reproduces_per_case_columns() {
    let cfg = tiny();
    let (tracer, sink) = Tracer::in_memory();
    let report = Session::new(&cfg).tracer(tracer).threads(2).run(FpuOp::Add);
    assert!(report.all_hold());

    // Serialize to JSONL text and parse it back with the crate's own
    // parser — the exact pipeline an external consumer would run.
    let text = sink.to_jsonl();
    let summary = summary::summarize_jsonl(&text).expect("well-formed JSONL");

    assert_eq!(summary.run_name.as_deref(), Some("verify:Add"));
    assert_eq!(summary.cases.len(), report.results.len());
    let by_name = |name: &str| {
        summary
            .cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("case row {name}"))
    };
    for r in &report.results {
        let row = by_name(&format!("{:?}", r.case));
        assert_eq!(row.verdict, "holds");
        assert_eq!(row.attempts, r.attempts.len() as u64);
        let nodes: u64 = r
            .attempts
            .iter()
            .map(|a| a.stats.peak_bdd_nodes.unwrap_or(0) as u64)
            .max()
            .unwrap_or(0);
        assert_eq!(row.peak_bdd_nodes.unwrap_or(0), nodes);
        let conflicts: u64 = r
            .attempts
            .iter()
            .map(|a| a.stats.sat_conflicts.unwrap_or(0))
            .sum();
        assert_eq!(row.sat_conflicts.unwrap_or(0), conflicts);
    }
    // Engine aggregates cover every attempt.
    let attempts: usize = report.results.iter().map(|r| r.attempts.len()).sum();
    assert_eq!(
        summary.engines.iter().map(|e| e.attempts).sum::<usize>(),
        attempts
    );
    // The rendered table mentions every case.
    let rendered = summary.render();
    for r in &report.results {
        assert!(rendered.contains(&format!("{:?}", r.case)));
    }
}

#[test]
fn disabled_tracer_changes_nothing_and_emits_nothing() {
    let cfg = tiny();
    let base = Session::new(&cfg).threads(2).run(FpuOp::Add);
    let (tracer, sink) = Tracer::in_memory();
    let traced = Session::new(&cfg).tracer(tracer).threads(2).run(FpuOp::Add);

    // Identical verdicts and case order with and without telemetry.
    assert_eq!(base.results.len(), traced.results.len());
    for (b, t) in base.results.iter().zip(&traced.results) {
        assert_eq!(b.case, t.case);
        assert_eq!(b.verdict, t.verdict);
    }
    assert!(!sink.events().is_empty());

    // The disabled tracer is inert end to end: no spans, no totals, and
    // the per-thread handle refuses to record.
    let disabled = Tracer::disabled();
    assert!(!disabled.is_enabled());
    assert!(!disabled.handle().is_recording());
    let mut span = disabled.span(SpanKind::Run, || unreachable!("lazy name must not run"));
    assert!(!span.is_recording());
    span.record(Counter::SatConflicts, 1);
    drop(span);
    assert!(disabled.totals().is_empty());
}
