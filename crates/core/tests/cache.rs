//! End-to-end semantics of the content-addressed proof cache: warm reruns
//! replay the cold run's verdicts, fingerprints react to design mutations,
//! corrupted shards degrade to re-proving, and read-only caches never
//! touch the disk.

use std::path::PathBuf;
use std::sync::Arc;

use fmaverify::{
    build_harness, random_fault_in, CacheMode, CandidateScope, CaseId, Fingerprint, HarnessOptions,
    ProofCache, RunConfig, SchedulePolicy, Session, ToJson, Verdict,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::Signal;
use fmaverify_softfloat::FpFormat;

fn tiny() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

/// A unique temp cache directory per test (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("fmaverify-cache-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn session(dir: &TempDir, mode: CacheMode) -> Session {
    Session::new(&tiny()).configure(RunConfig {
        cache_mode: mode,
        cache_dir: dir.0.clone(),
        threads: 2,
        ..RunConfig::default()
    })
}

#[test]
fn warm_run_replays_cold_verdicts_and_stats() {
    let dir = TempDir::new("warm");
    let cold = session(&dir, CacheMode::ReadWrite).run(FpuOp::Add);
    assert!(cold.all_hold());
    assert!(cold.results.iter().all(|r| !r.cached));

    let warm = session(&dir, CacheMode::ReadWrite).run(FpuOp::Add);
    assert_eq!(warm.results.len(), cold.results.len());
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert!(w.cached, "warm miss on {:?}", w.case);
        assert_eq!(c.case, w.case);
        assert_eq!(c.verdict, w.verdict);
        assert_eq!(c.engine, w.engine);
        // Replayed stats are the original proving run's measurements.
        assert_eq!(c.stats.peak_bdd_nodes, w.stats.peak_bdd_nodes);
        assert_eq!(c.stats.sat_conflicts, w.stats.sat_conflicts);
        assert_eq!(c.attempts.len(), w.attempts.len());
        // The JSON rendering differs exactly in the flags that describe
        // this run (cached, timings), not in the verdict.
        assert_eq!(c.verdict.to_json().render(), w.verdict.to_json().render());
    }
}

#[test]
fn netlist_mutation_changes_the_fingerprint() {
    let cfg = tiny();
    let op = FpuOp::Mul;
    let case = CaseId::Monolithic;
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let clean_parts = h.case_constraint_parts(op, case);
    let policy = SchedulePolicy::from_options(&RunConfig::default().to_run_options());
    let ladder = policy.ladder(op, case);

    let clean_fp = Fingerprint::compute(&h, op, case, &clean_parts, ladder);
    let same_fp = Fingerprint::compute(&h, op, case, &clean_parts, ladder);
    assert_eq!(clean_fp, same_fp, "fingerprints must be deterministic");

    // Flip one gate in the miter's cone. `inject_fault` rebuilds the
    // netlist, so the miter and constraint parts are recovered by name.
    // The combinational scope is deliberate: this test is about the same-
    // cycle COI that the fingerprint hashes, not pipeline depth.
    for (i, p) in clean_parts.iter().enumerate() {
        h.netlist.probe(format!("fp#{i}"), *p);
    }
    let (mutated, _fault) = random_fault_in(&h.netlist, &[h.miter], CandidateScope::Comb, 7);
    h.miter = mutated.find_output("miter").expect("miter output");
    let faulty_parts: Vec<Signal> = (0..clean_parts.len())
        .map(|i| mutated.find_probe(&format!("fp#{i}")).expect("probe"))
        .collect();
    h.netlist = mutated;

    let faulty_fp = Fingerprint::compute(&h, op, case, &faulty_parts, ladder);
    assert_ne!(
        clean_fp, faulty_fp,
        "a mutated netlist must invalidate the cache"
    );
}

#[test]
fn cached_failure_replays_counterexample_on_mutant() {
    let dir = TempDir::new("mutant");
    // Prove the clean design once to populate the cache...
    let clean = session(&dir, CacheMode::ReadWrite).run(FpuOp::Mul);
    assert!(clean.all_hold());

    // ...then verify a mutated design with the same cache: the case must
    // MISS (different fingerprint) and re-prove rather than replay the
    // clean design's proof.
    let cfg = tiny();
    let op = FpuOp::Mul;
    let case = CaseId::Monolithic;
    let mut harness = build_harness(&cfg, HarnessOptions::default());
    let parts = harness.case_constraint_parts(op, case);
    for (i, p) in parts.iter().enumerate() {
        harness.netlist.probe(format!("mutant#{i}"), *p);
    }
    let (mutated, _fault) =
        random_fault_in(&harness.netlist, &[harness.miter], CandidateScope::Comb, 11);
    harness.miter = mutated.find_output("miter").expect("miter output");
    let parts: Vec<Signal> = (0..parts.len())
        .map(|i| mutated.find_probe(&format!("mutant#{i}")).expect("probe"))
        .collect();
    harness.netlist = mutated;
    let constraints = vec![(case, parts)];

    let cold = session(&dir, CacheMode::ReadWrite).run_prepared(&harness, op, &constraints);
    assert!(
        cold.iter().all(|r| !r.cached),
        "mutant design must not reuse clean-design proofs"
    );

    // A rerun of the *same* mutant replays its verdict — including any
    // failure verdict's counterexample — from the cache.
    let warm = session(&dir, CacheMode::ReadWrite).run_prepared(&harness, op, &constraints);
    for (c, w) in cold.iter().zip(&warm) {
        assert!(w.cached, "mutant rerun must replay from cache");
        assert_eq!(c.verdict, w.verdict);
        if c.verdict == Verdict::Fails {
            let c_cex = c.counterexample.as_ref().expect("cold counterexample");
            let w_cex = w.counterexample.as_ref().expect("warm counterexample");
            assert_eq!(c_cex.to_json().render(), w_cex.to_json().render());
        }
    }
}

#[test]
fn read_only_mode_never_writes() {
    let dir = TempDir::new("ro");
    let report = session(&dir, CacheMode::ReadOnly).run(FpuOp::Mul);
    assert!(report.all_hold());
    assert!(report.results.iter().all(|r| !r.cached));
    assert!(
        !dir.0.exists(),
        "ReadOnly mode must not create the cache directory"
    );

    // Populate read-write, then re-check that ReadOnly replays but adds
    // nothing new.
    session(&dir, CacheMode::ReadWrite).run(FpuOp::Mul);
    let shard_bytes = |dir: &PathBuf| -> Vec<(PathBuf, u64)> {
        let mut files: Vec<(PathBuf, u64)> = std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| (e.path(), e.metadata().unwrap().len()))
            .collect();
        files.sort();
        files
    };
    let before = shard_bytes(&dir.0);
    let warm = session(&dir, CacheMode::ReadOnly).run(FpuOp::Mul);
    assert!(warm.results.iter().all(|r| r.cached));
    assert_eq!(shard_bytes(&dir.0), before, "ReadOnly modified the cache");
}

#[test]
fn truncated_shard_degrades_to_reproving() {
    let dir = TempDir::new("corrupt");
    session(&dir, CacheMode::ReadWrite).run(FpuOp::Mul);

    // Truncate every shard mid-line and splatter garbage into one.
    let shards: Vec<PathBuf> = std::fs::read_dir(&dir.0)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    assert!(!shards.is_empty(), "cold run should have persisted shards");
    for shard in &shards {
        let text = std::fs::read_to_string(shard).unwrap();
        std::fs::write(shard, &text[..text.len() / 3]).unwrap();
    }
    std::fs::write(dir.0.join("zz.jsonl"), b"{not json\n\x00\xff garbage").unwrap();

    // Loading must not panic; the damaged cases simply re-prove.
    let report = session(&dir, CacheMode::ReadWrite).run(FpuOp::Mul);
    assert!(report.all_hold());
}

#[test]
fn shared_cache_handle_serves_multiple_sessions() {
    let dir = TempDir::new("shared");
    let cache = Arc::new(ProofCache::open(&dir.0, CacheMode::ReadWrite));
    let cfg = tiny();
    let cold = Session::new(&cfg).cache(cache.clone()).run(FpuOp::Mul);
    assert!(cold.all_hold());
    let warm = Session::new(&cfg).cache(cache.clone()).run(FpuOp::Mul);
    assert!(warm.results.iter().all(|r| r.cached));
    let stats = cache.stats();
    assert!(stats.hits >= warm.results.len() as u64);
    assert!(stats.stores >= cold.results.len() as u64);
    assert!(cold.results.iter().all(|r| r.verdict == Verdict::Holds));
}
