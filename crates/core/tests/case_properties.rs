//! Property tests over the case-split machinery, across formats: the case
//! inventory follows the closed-form counts, constraints are satisfiable
//! exactly when they should be, and satisfying assignments really land in
//! the claimed case (replayed through the reference FPU's probes).

use fmaverify::{
    build_harness, check_miter_sat_parts, enumerate_cases, CaseId, HarnessOptions,
    SatEngineOptions, ShaCase,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_netlist::{BitSim, Signal};
use fmaverify_softfloat::FpFormat;
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = FpuConfig> {
    ((3u32..=5), (2u32..=5), prop::bool::ANY).prop_map(|(e, f, full)| FpuConfig {
        format: FpFormat::new(e, f),
        denormals: if full {
            DenormalMode::FullIeee
        } else {
            DenormalMode::FlushToZero
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn case_counts_follow_closed_form(cfg in arb_cfg()) {
        let f = cfg.format.frac_bits() as usize;
        let overlap = 3 * f + 5;
        let sha_cases = 2 * f + 3; // prod_bits shifts + rest
        for op in FpuOp::ALL {
            let cases = enumerate_cases(&cfg, op);
            let expect = match (op, cfg.denormals) {
                (FpuOp::Mul, _) => 1,
                (FpuOp::Add, DenormalMode::FlushToZero) => 1 + (overlap - 3) + 3 * sha_cases,
                (_, DenormalMode::FlushToZero) => 1 + (overlap - 4) + 4 * sha_cases,
                (FpuOp::Add, DenormalMode::FullIeee) | (_, DenormalMode::FullIeee) => {
                    1 + overlap * sha_cases
                }
            };
            prop_assert_eq!(cases.len(), expect, "{:?} {:?}", op, cfg);
            // Labels unique.
            let mut labels: Vec<String> = cases.iter().map(|c| c.label()).collect();
            labels.sort();
            labels.dedup();
            prop_assert_eq!(labels.len(), cases.len());
        }
    }

    #[test]
    fn satisfiable_constraints_replay_into_their_case(
        seed in 0u64..1000,
    ) {
        // Fixed small format for speed; the seed picks the case.
        let cfg = FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        };
        let mut h = build_harness(&cfg, HarnessOptions::default());
        let cases = enumerate_cases(&cfg, FpuOp::Fma);
        let case = cases[(seed as usize) % cases.len()];
        let parts = h.case_constraint_parts(FpuOp::Fma, case);
        // Find a satisfying assignment of the constraint (if any) by asking
        // SAT for constraint AND NOT(FALSE miter) — i.e. use the constraint
        // as the "miter" with a TRUE care set.
        let mut conj = Signal::TRUE;
        for p in &parts {
            conj = h.netlist.and(conj, *p);
        }
        let out = check_miter_sat_parts(
            &h.netlist,
            conj,
            &[Signal::TRUE],
            &SatEngineOptions::default(),
        );
        // out.holds means "conj is unsatisfiable" (an empty case — fine for
        // some sha slices); otherwise replay the model.
        if let Some(cex) = out.counterexample {
            let mut sim = BitSim::new(&h.netlist);
            for (name, v) in &cex {
                if let Some(sig) = h.netlist.find_input(name) {
                    sim.set(sig, *v);
                }
            }
            sim.eval();
            // The model satisfies every part.
            for p in &parts {
                prop_assert!(sim.get(*p), "constraint part unsatisfied on its own model");
            }
            // And the reference FPU agrees it is in the claimed case.
            let wexp = cfg.exp_arith_bits();
            let raw = sim.get_word(&h.ref_fpu.delta);
            let delta = if raw >> (wexp - 1) & 1 == 1 {
                raw as i64 - (1i64 << wexp)
            } else {
                raw as i64
            };
            match case {
                CaseId::FarOut => {
                    prop_assert!(
                        delta < cfg.delta_min_overlap() || delta > cfg.delta_max_overlap()
                    );
                }
                CaseId::OverlapNoCancel { delta: d } => prop_assert_eq!(delta, d),
                CaseId::OverlapCancel { delta: d, sha } => {
                    prop_assert_eq!(delta, d);
                    let got_sha = sim.get_word(&h.ref_fpu.sha) as usize;
                    match sha {
                        ShaCase::Exact(s) => prop_assert_eq!(got_sha, s),
                        ShaCase::Rest => prop_assert!(got_sha >= cfg.prod_bits()),
                    }
                }
                CaseId::Monolithic => {}
            }
        }
    }

    #[test]
    fn rest_cases_are_empty_at_ftz(seed in 0u64..100) {
        // C_sha/rest "defines an empty care-set" for normal operands: at FTZ
        // the normalization shift never exceeds prod_bits... except through
        // the far-left parked path; emptiness is therefore checked per-δ.
        let cfg = FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        };
        let mut h = build_harness(&cfg, HarnessOptions::default());
        let delta = [-2i64, -1, 0, 1][(seed as usize) % 4];
        let case = CaseId::OverlapCancel {
            delta,
            sha: ShaCase::Rest,
        };
        let parts = h.case_constraint_parts(FpuOp::Fma, case);
        let mut conj = Signal::TRUE;
        for p in &parts {
            conj = h.netlist.and(conj, *p);
        }
        let out = check_miter_sat_parts(
            &h.netlist,
            conj,
            &[Signal::TRUE],
            &SatEngineOptions::default(),
        );
        // Either empty (holds == unsat) or, if reachable, the replay shows a
        // legitimately huge shift; both are sound. Record which.
        if !out.holds {
            let cex = out.counterexample.expect("model");
            let mut sim = BitSim::new(&h.netlist);
            for (name, v) in &cex {
                if let Some(sig) = h.netlist.find_input(name) {
                    sim.set(sig, *v);
                }
            }
            sim.eval();
            prop_assert!(sim.get_word(&h.ref_fpu.sha) as usize >= cfg.prod_bits());
        }
    }
}
