//! Content-addressed proof cache: incremental verification across runs.
//!
//! The paper's 585-case split re-proves every case on every regression run,
//! but each case verdict is a pure function of three things: the logic cone
//! the engines analyze (harness netlist + case constraints), the case being
//! proved, and the engine policy that drives the proof. This module
//! memoizes that function on disk.
//!
//! * A [`Fingerprint`] is a 256-bit content address: SHA-256 over the
//!   canonical structural hash of the miter-plus-constraint cone of
//!   influence ([`fmaverify_netlist::Netlist::coi_hash`]), the case and
//!   instruction, the escalation ladder (engine names and budgets), and the
//!   cache schema version. Any change to the design, the constraints, or
//!   the policy changes the fingerprint — invalidation is automatic and
//!   there is no staleness to manage.
//! * A [`ProofCache`] holds fingerprint → [`CachedCase`] entries, persisted
//!   as JSONL shards under a cache directory (`results/cache/` by
//!   convention, sharded by the first fingerprint byte). Writes go through
//!   a temp file plus atomic rename; loads skip unreadable shards and
//!   malformed lines rather than failing the run.
//!
//! Only *definite* verdicts (holds / counterexample) are cached: a
//! budget-exceeded or errored attempt says nothing reusable about the case.
//! Replaying a hit is sound because the fingerprint pins the exact cone the
//! original engines proved — a cached "holds" is the same theorem, not a
//! similar one (see DESIGN.md §9 for the full argument).
//!
//! The scheduler consults the cache before dispatching each case (see
//! [`crate::runner`]); hits surface as [`crate::runner::CaseResult::cached`]
//! and the `cache.hits` / `cache.misses` / `cache.stores` counters.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use fmaverify_fpu::FpuOp;
use fmaverify_netlist::{Sha256, Signal};

use crate::cases::CaseId;
use crate::engine::{EngineBudget, EngineKind, EngineStats};
use crate::harness::Harness;
use crate::json::{JsonValue, ToJson};
use crate::runner::{CaseAttempt, CounterExample, EngineStage, Verdict};
use crate::trace::MetricSet;

/// Version stamp of the on-disk entry format; folded into every
/// [`Fingerprint`], so bumping it invalidates the whole cache.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// How a run uses the proof cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// No cache: every case runs its engine ladder (the default).
    #[default]
    Off,
    /// Replay hits but never write new entries (safe for exploratory runs
    /// against a shared cache).
    ReadOnly,
    /// Replay hits and persist fresh definite verdicts.
    ReadWrite,
}

impl CacheMode {
    /// Parses the accepted spellings (`off`/`0`, `ro`/`readonly`/`read-only`,
    /// `rw`/`readwrite`/`read-write`/`1`/`on`), case-insensitively.
    pub fn parse(text: &str) -> Option<CacheMode> {
        match text.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "" => Some(CacheMode::Off),
            "ro" | "readonly" | "read-only" => Some(CacheMode::ReadOnly),
            "rw" | "readwrite" | "read-write" | "1" | "on" => Some(CacheMode::ReadWrite),
            _ => None,
        }
    }

    /// True unless the mode is [`CacheMode::Off`].
    pub fn is_enabled(self) -> bool {
        self != CacheMode::Off
    }
}

/// The 256-bit content address of one case proof.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint([u8; 32]);

impl Fingerprint {
    /// Computes the fingerprint of proving `case` of `op` on `harness`
    /// under `constraint_parts` with the given escalation `ladder`.
    ///
    /// The netlist contribution is the canonical structural hash of the
    /// sequential cone of influence of the miter and every constraint
    /// conjunct, so logic outside the analyzed cone cannot perturb the key.
    pub fn compute(
        harness: &Harness,
        op: FpuOp,
        case: CaseId,
        constraint_parts: &[Signal],
        ladder: &[EngineStage],
    ) -> Fingerprint {
        let mut roots = Vec::with_capacity(constraint_parts.len() + 1);
        roots.push(harness.miter);
        roots.extend_from_slice(constraint_parts);
        let cone = harness.netlist.coi_hash(&roots);

        let mut h = Sha256::new();
        h.update_bytes(b"fmaverify-case-v1");
        h.update_u64(u64::from(CACHE_SCHEMA_VERSION));
        h.update(&cone);
        h.update_bytes(format!("{op:?}").as_bytes());
        h.update_bytes(format!("{case:?}").as_bytes());
        h.update_u64(harness.options().pipeline.latency() as u64);
        h.update_u64(ladder.len() as u64);
        for stage in ladder {
            h.update_bytes(stage.engine.name().as_bytes());
            h.update_u64(encode_opt(stage.budget.node_limit.map(|v| v as u64)));
            h.update_u64(encode_opt(stage.budget.conflict_limit));
        }
        Fingerprint(h.finalize())
    }

    /// Lowercase hex form (64 chars) — the JSONL entry key.
    pub fn hex(&self) -> String {
        Sha256::to_hex(&self.0)
    }

    /// The shard file stem this fingerprint lives in (first byte, hex).
    pub fn shard(&self) -> String {
        format!("{:02x}", self.0[0])
    }
}

/// `None` ↦ 0, `Some(v)` ↦ v+1: keeps "unlimited" distinct from every
/// concrete budget in the fingerprint preimage.
fn encode_opt(v: Option<u64>) -> u64 {
    v.map(|v| v.saturating_add(1)).unwrap_or(0)
}

/// One memoized case proof: the definite verdict and the effort that
/// produced it, sufficient to replay a [`crate::runner::CaseResult`].
#[derive(Clone, Debug)]
pub struct CachedCase {
    /// The verdict ([`Verdict::Holds`] or [`Verdict::Fails`] only).
    pub verdict: Verdict,
    /// The deciding engine kind.
    pub engine: EngineKind,
    /// The deciding engine's short name.
    pub engine_name: &'static str,
    /// The counterexample when the verdict is [`Verdict::Fails`].
    pub counterexample: Option<CounterExample>,
    /// Stats of the deciding attempt, as originally measured.
    pub stats: EngineStats,
    /// The original attempt log (ladder order).
    pub attempts: Vec<CaseAttempt>,
    /// Original total wall time across attempts — what the replay saved.
    pub duration: Duration,
}

/// Point-in-time cache activity counters (see [`ProofCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that replayed a stored verdict.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Fresh verdicts written back.
    pub stores: u64,
}

/// The on-disk, content-addressed proof cache.
///
/// Thread-safe: the scheduler's workers look up and store entries
/// concurrently. Stores buffer in memory; [`ProofCache::flush`] (called by
/// the run drivers at the end of each run) rewrites the dirty shards with
/// an atomic temp-file-plus-rename, so a crashed or concurrent run can
/// never leave a half-written shard behind — at worst a shard misses some
/// entries, which only costs re-proving.
pub struct ProofCache {
    dir: PathBuf,
    mode: CacheMode,
    entries: Mutex<HashMap<String, CachedCase>>,
    dirty: Mutex<Vec<String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl std::fmt::Debug for ProofCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProofCache")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("entries", &self.len())
            .finish()
    }
}

impl ProofCache {
    /// Opens (or initializes) the cache under `dir`.
    ///
    /// Never fails: a missing directory means an empty cache, and corrupted
    /// shards (unreadable files, truncated or malformed lines, foreign
    /// schema versions) are skipped entry by entry — the worst corruption
    /// can do is force a re-prove.
    pub fn open(dir: impl Into<PathBuf>, mode: CacheMode) -> ProofCache {
        let dir = dir.into();
        let mut entries = HashMap::new();
        if let Ok(listing) = std::fs::read_dir(&dir) {
            let mut shards: Vec<PathBuf> = listing
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
                .collect();
            shards.sort();
            for shard in shards {
                let Ok(text) = std::fs::read_to_string(&shard) else {
                    continue;
                };
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Some((fp, entry)) = parse_entry(line) {
                        entries.insert(fp, entry);
                    }
                }
            }
        }
        ProofCache {
            dir,
            mode,
            entries: Mutex::new(entries),
            dirty: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// The cache's mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of loaded entries (persisted plus pending).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache index").len()
    }

    /// True when no entries are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Activity counters since the cache was opened.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    /// Looks up a fingerprint, counting the hit or miss.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<CachedCase> {
        let found = self
            .entries
            .lock()
            .expect("cache index")
            .get(&fp.hex())
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records a fresh definite verdict under `fp`. No-op unless the mode
    /// is [`CacheMode::ReadWrite`] and the verdict is definite. The entry
    /// becomes visible to lookups immediately and durable at the next
    /// [`ProofCache::flush`].
    pub fn store(&self, fp: &Fingerprint, entry: CachedCase) {
        if self.mode != CacheMode::ReadWrite
            || !matches!(entry.verdict, Verdict::Holds | Verdict::Fails)
        {
            return;
        }
        let hex = fp.hex();
        let shard = fp.shard();
        self.entries.lock().expect("cache index").insert(hex, entry);
        let mut dirty = self.dirty.lock().expect("dirty set");
        if !dirty.contains(&shard) {
            dirty.push(shard);
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Persists every dirty shard (atomic per shard: write to a temp file
    /// in the same directory, then rename over the shard). Directory
    /// creation is create-once and tolerates concurrent creators; I/O
    /// errors are swallowed — the cache is an accelerator, never a reason
    /// to fail a verification run.
    pub fn flush(&self) {
        let dirty: Vec<String> = std::mem::take(&mut *self.dirty.lock().expect("dirty set"));
        if dirty.is_empty() {
            return;
        }
        // `create_dir_all` succeeds when the directory already exists, so
        // concurrent flushes racing on creation are benign.
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let entries = self.entries.lock().expect("cache index");
        for shard in dirty {
            let mut lines: Vec<(&String, String)> = entries
                .iter()
                .filter(|(fp, _)| fp.starts_with(&shard))
                .map(|(fp, e)| (fp, render_entry(fp, e)))
                .collect();
            // Deterministic shard contents make warm-run artifacts diffable.
            lines.sort_by(|a, b| a.0.cmp(b.0));
            let body: String = lines.into_iter().map(|(_, l)| l).collect();
            let tmp = self
                .dir
                .join(format!(".{shard}.tmp.{}", std::process::id()));
            let final_path = self.dir.join(format!("{shard}.jsonl"));
            if std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, &final_path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

/// Maps a stored engine-name string back to the static name the engines
/// use, so replayed results render identically to fresh ones.
fn intern_engine_name(name: &str) -> &'static str {
    match name {
        "bdd/constrain" => "bdd/constrain",
        "bdd/restrict" => "bdd/restrict",
        "bdd/plain" => "bdd/plain",
        "bdd-seq" => "bdd-seq",
        "sat" => "sat",
        "sat/sweep" => "sat/sweep",
        _ => "cached",
    }
}

fn engine_kind_name(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Bdd => "bdd",
        EngineKind::BddSequential => "bdd-seq",
        EngineKind::Sat => "sat",
    }
}

fn parse_engine_kind(text: &str) -> Option<EngineKind> {
    match text {
        "bdd" => Some(EngineKind::Bdd),
        "bdd-seq" => Some(EngineKind::BddSequential),
        "sat" => Some(EngineKind::Sat),
        _ => None,
    }
}

fn parse_verdict(text: &str) -> Option<Verdict> {
    match text {
        "holds" => Some(Verdict::Holds),
        "fails" => Some(Verdict::Fails),
        _ => None,
    }
}

fn duration_json(d: Duration) -> JsonValue {
    JsonValue::Number(d.as_secs_f64())
}

fn parse_duration(v: Option<&JsonValue>) -> Option<Duration> {
    v.and_then(|v| v.as_f64())
        .filter(|s| *s >= 0.0 && s.is_finite())
        .map(Duration::from_secs_f64)
}

fn stats_to_json(stats: &EngineStats) -> JsonValue {
    JsonValue::object(vec![
        (
            "peak_bdd_nodes",
            JsonValue::opt(stats.peak_bdd_nodes, JsonValue::int),
        ),
        (
            "care_nodes",
            JsonValue::opt(stats.care_nodes, JsonValue::int),
        ),
        (
            "sat_conflicts",
            JsonValue::opt(stats.sat_conflicts, JsonValue::int),
        ),
        ("coi_ands", JsonValue::opt(stats.coi_ands, JsonValue::int)),
        ("wall_seconds", duration_json(stats.wall)),
        ("counters", stats.metrics.to_json()),
    ])
}

fn stats_from_json(v: &JsonValue) -> EngineStats {
    let int = |key: &str| v.get(key).and_then(|v| v.as_u64());
    EngineStats {
        peak_bdd_nodes: int("peak_bdd_nodes").map(|n| n as usize),
        care_nodes: int("care_nodes").map(|n| n as usize),
        sat_conflicts: int("sat_conflicts"),
        coi_ands: int("coi_ands").map(|n| n as usize),
        wall: parse_duration(v.get("wall_seconds")).unwrap_or(Duration::ZERO),
        metrics: v
            .get("counters")
            .map(MetricSet::from_json)
            .unwrap_or_default(),
    }
}

fn cex_to_json(cex: &CounterExample) -> JsonValue {
    let mut assignment: Vec<(String, JsonValue)> = cex
        .assignment
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::Bool(*v)))
        .collect();
    assignment.sort_by(|a, b| a.0.cmp(&b.0));
    JsonValue::object(vec![
        ("a", JsonValue::string(format!("{:#x}", cex.a))),
        ("b", JsonValue::string(format!("{:#x}", cex.b))),
        ("c", JsonValue::string(format!("{:#x}", cex.c))),
        ("op", JsonValue::int(cex.op)),
        ("rm", JsonValue::int(cex.rm)),
        ("replay_confirmed", JsonValue::Bool(cex.replay_confirmed)),
        ("assignment", JsonValue::Object(assignment)),
    ])
}

fn cex_from_json(v: &JsonValue) -> Option<CounterExample> {
    let word = |key: &str| -> Option<u128> {
        let s = v.get(key)?.as_str()?;
        u128::from_str_radix(s.strip_prefix("0x")?, 16).ok()
    };
    let assignment: HashMap<String, bool> = v
        .get("assignment")?
        .as_object()?
        .iter()
        .filter_map(|(k, b)| b.as_bool().map(|b| (k.clone(), b)))
        .collect();
    Some(CounterExample {
        assignment,
        a: word("a")?,
        b: word("b")?,
        c: word("c")?,
        op: v.get("op")?.as_u64()? as u32,
        rm: v.get("rm")?.as_u64()? as u32,
        replay_confirmed: v.get("replay_confirmed")?.as_bool()?,
    })
}

fn attempt_to_json(attempt: &CaseAttempt) -> JsonValue {
    JsonValue::object(vec![
        (
            "engine",
            JsonValue::string(engine_kind_name(attempt.engine)),
        ),
        ("engine_name", JsonValue::string(attempt.engine_name)),
        (
            "node_limit",
            JsonValue::opt(attempt.budget.node_limit, JsonValue::int),
        ),
        (
            "conflict_limit",
            JsonValue::opt(attempt.budget.conflict_limit, JsonValue::int),
        ),
        ("verdict", attempt.verdict.to_json()),
        ("stats", stats_to_json(&attempt.stats)),
    ])
}

fn attempt_from_json(v: &JsonValue) -> Option<CaseAttempt> {
    let verdict = match v.get("verdict")?.as_str()? {
        "holds" => Verdict::Holds,
        "fails" => Verdict::Fails,
        "budget-exceeded" => Verdict::BudgetExceeded,
        "error" => Verdict::Error,
        _ => return None,
    };
    Some(CaseAttempt {
        engine: parse_engine_kind(v.get("engine")?.as_str()?)?,
        engine_name: intern_engine_name(v.get("engine_name")?.as_str()?),
        budget: EngineBudget {
            node_limit: v
                .get("node_limit")
                .and_then(|v| v.as_u64())
                .map(|n| n as usize),
            conflict_limit: v.get("conflict_limit").and_then(|v| v.as_u64()),
        },
        verdict,
        stats: v.get("stats").map(stats_from_json).unwrap_or_default(),
    })
}

/// Renders one JSONL cache line (trailing newline included).
fn render_entry(fp: &str, entry: &CachedCase) -> String {
    let mut line = JsonValue::object(vec![
        ("v", JsonValue::int(CACHE_SCHEMA_VERSION)),
        ("fp", JsonValue::string(fp)),
        ("verdict", entry.verdict.to_json()),
        ("engine", JsonValue::string(engine_kind_name(entry.engine))),
        ("engine_name", JsonValue::string(entry.engine_name)),
        (
            "counterexample",
            JsonValue::opt(entry.counterexample.as_ref(), cex_to_json),
        ),
        ("stats", stats_to_json(&entry.stats)),
        (
            "attempts",
            JsonValue::Array(entry.attempts.iter().map(attempt_to_json).collect()),
        ),
        ("duration_seconds", duration_json(entry.duration)),
    ])
    .render();
    line.push('\n');
    line
}

/// Parses one JSONL cache line; `None` on any malformation (the loader
/// skips such lines).
fn parse_entry(line: &str) -> Option<(String, CachedCase)> {
    let v = JsonValue::parse(line).ok()?;
    if v.get("v")?.as_u64()? != u64::from(CACHE_SCHEMA_VERSION) {
        return None;
    }
    let fp = v.get("fp")?.as_str()?;
    if fp.len() != 64 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let verdict = parse_verdict(v.get("verdict")?.as_str()?)?;
    let counterexample = match v.get("counterexample") {
        None | Some(JsonValue::Null) => None,
        Some(c) => Some(cex_from_json(c)?),
    };
    // A failure entry without its counterexample is useless for replay.
    if verdict == Verdict::Fails && counterexample.is_none() {
        return None;
    }
    let attempts = match v.get("attempts") {
        Some(a) => a
            .as_array()?
            .iter()
            .map(attempt_from_json)
            .collect::<Option<Vec<_>>>()?,
        None => Vec::new(),
    };
    Some((
        fp.to_string(),
        CachedCase {
            verdict,
            engine: parse_engine_kind(v.get("engine")?.as_str()?)?,
            engine_name: intern_engine_name(v.get("engine_name")?.as_str()?),
            counterexample,
            stats: v.get("stats").map(stats_from_json).unwrap_or_default(),
            attempts,
            duration: parse_duration(v.get("duration_seconds")).unwrap_or(Duration::ZERO),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holds_entry(wall_ms: u64) -> CachedCase {
        CachedCase {
            verdict: Verdict::Holds,
            engine: EngineKind::Sat,
            engine_name: "sat/sweep",
            counterexample: None,
            stats: EngineStats {
                sat_conflicts: Some(42),
                coi_ands: Some(900),
                wall: Duration::from_millis(wall_ms),
                ..EngineStats::default()
            },
            attempts: Vec::new(),
            duration: Duration::from_millis(wall_ms),
        }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(CacheMode::parse("off"), Some(CacheMode::Off));
        assert_eq!(CacheMode::parse("RO"), Some(CacheMode::ReadOnly));
        assert_eq!(CacheMode::parse("rw"), Some(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse("1"), Some(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse("bogus"), None);
        assert!(!CacheMode::Off.is_enabled());
        assert!(CacheMode::ReadOnly.is_enabled());
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let mut assignment = HashMap::new();
        assignment.insert("a[0]".to_string(), true);
        assignment.insert("b[1]".to_string(), false);
        let entry = CachedCase {
            verdict: Verdict::Fails,
            engine: EngineKind::Bdd,
            engine_name: "bdd/constrain",
            counterexample: Some(CounterExample {
                assignment,
                a: 0x1f,
                b: 0,
                c: 0x7,
                op: 2,
                rm: 1,
                replay_confirmed: true,
            }),
            stats: EngineStats {
                peak_bdd_nodes: Some(1234),
                care_nodes: Some(56),
                wall: Duration::from_millis(250),
                ..EngineStats::default()
            },
            attempts: vec![CaseAttempt {
                engine: EngineKind::Bdd,
                engine_name: "bdd/constrain",
                budget: EngineBudget {
                    node_limit: Some(10_000),
                    conflict_limit: None,
                },
                verdict: Verdict::Fails,
                stats: EngineStats::default(),
            }],
            duration: Duration::from_millis(260),
        };
        let fp = "ab".repeat(32);
        let line = render_entry(&fp, &entry);
        let (fp2, parsed) = parse_entry(line.trim_end()).expect("parses");
        assert_eq!(fp2, fp);
        assert_eq!(parsed.verdict, Verdict::Fails);
        assert_eq!(parsed.engine, EngineKind::Bdd);
        assert_eq!(parsed.engine_name, "bdd/constrain");
        let cex = parsed.counterexample.expect("cex");
        assert_eq!(cex.a, 0x1f);
        assert_eq!(cex.assignment.get("a[0]"), Some(&true));
        assert!(cex.replay_confirmed);
        assert_eq!(parsed.stats.peak_bdd_nodes, Some(1234));
        assert_eq!(parsed.attempts.len(), 1);
        assert_eq!(parsed.attempts[0].budget.node_limit, Some(10_000));
        assert_eq!(parsed.duration, Duration::from_millis(260));
    }

    #[test]
    fn malformed_lines_are_skipped() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"v":99,"fp":"00"}"#,
            // Fails without a counterexample is not replayable.
            &format!(
                r#"{{"v":1,"fp":"{}","verdict":"fails","engine":"sat","engine_name":"sat"}}"#,
                "0".repeat(64)
            ),
            // Bad fingerprint shape.
            r#"{"v":1,"fp":"xyz","verdict":"holds","engine":"sat","engine_name":"sat"}"#,
        ] {
            assert!(parse_entry(bad).is_none(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn store_flush_reload_and_modes() {
        let dir = std::env::temp_dir().join(format!(
            "fmaverify-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let fp = Fingerprint([7u8; 32]);
        // ReadOnly never writes anything.
        let ro = ProofCache::open(&dir, CacheMode::ReadOnly);
        ro.store(&fp, holds_entry(10));
        ro.flush();
        assert!(!dir.exists(), "ReadOnly must not create the cache dir");
        assert_eq!(ro.stats().stores, 0);

        // ReadWrite persists, and a fresh cache sees the entry.
        let rw = ProofCache::open(&dir, CacheMode::ReadWrite);
        assert!(rw.lookup(&fp).is_none());
        rw.store(&fp, holds_entry(10));
        assert!(rw.lookup(&fp).is_some(), "stores are visible immediately");
        rw.flush();
        assert_eq!(
            rw.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );

        let reloaded = ProofCache::open(&dir, CacheMode::ReadOnly);
        assert_eq!(reloaded.len(), 1);
        let entry = reloaded.lookup(&fp).expect("hit after reload");
        assert_eq!(entry.verdict, Verdict::Holds);
        assert_eq!(entry.stats.sat_conflicts, Some(42));

        // Truncating the shard mid-line loses entries but never panics.
        let shard = dir.join(format!("{}.jsonl", fp.shard()));
        let text = std::fs::read_to_string(&shard).expect("shard exists");
        std::fs::write(&shard, &text[..text.len() / 2]).expect("truncate");
        let corrupted = ProofCache::open(&dir, CacheMode::ReadOnly);
        assert_eq!(corrupted.len(), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
