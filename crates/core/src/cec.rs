//! Combinational equivalence checking (the role of Verity \[14\] in the
//! paper's flow: correlating one design representation against another).
//!
//! Two netlists with matching input and output names are merged into one,
//! a miter is built over all common outputs, redundancy removal shrinks it,
//! and SAT settles the remainder.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fmaverify_netlist::{sat_sweep, Netlist, Node, SatEncoder, Signal, SweepOptions};
use fmaverify_sat::{SolveResult, Solver};

use crate::engine::EngineStats;

/// Result of an equivalence check.
#[derive(Clone, Debug)]
pub struct CecResult {
    /// True iff every common output is equivalent.
    pub equivalent: bool,
    /// The name of a failing output, if any.
    pub failing_output: Option<String>,
    /// An input assignment distinguishing the designs, if any.
    pub counterexample: Option<HashMap<String, bool>>,
    /// Gates merged by the sweep phase.
    pub swept_merges: usize,
    /// Unified resource statistics (SAT conflicts, post-sweep cone size,
    /// wall time) in the same shape the case engines report.
    pub stats: EngineStats,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// Imports `src` into `dst`, mapping primary inputs by name (creating them
/// in `dst` when absent). Returns the signal map from `src` node indices to
/// `dst` signals.
pub fn import_netlist(dst: &mut Netlist, src: &Netlist) -> Vec<Signal> {
    let mut remap: Vec<Signal> = vec![Signal::FALSE; src.num_nodes()];
    for id in src.node_ids() {
        let new_sig = match src.node(id) {
            Node::Const => Signal::FALSE,
            Node::Input { name } => match dst.find_input(name) {
                Some(sig) => sig,
                None => dst.input(name.clone()),
            },
            Node::Latch { init, .. } => dst.latch(*init),
            Node::And(a, b) => {
                let la = edge(&remap, *a);
                let lb = edge(&remap, *b);
                dst.and(la, lb)
            }
        };
        remap[id.index()] = new_sig;
    }
    for &l in src.latches() {
        if let Node::Latch {
            next, connected, ..
        } = src.node(l)
        {
            if *connected {
                let nn = edge(&remap, *next);
                dst.set_latch_next(remap[l.index()], nn);
            }
        }
    }
    remap
}

/// Checks combinational equivalence of the outputs shared by name between
/// `left` and `right`.
///
/// # Panics
/// Panics if the designs share no output names.
pub fn check_equivalence(left: &Netlist, right: &Netlist) -> CecResult {
    let start = Instant::now();
    let mut merged = Netlist::new();
    let lmap = import_netlist(&mut merged, left);
    let rmap = import_netlist(&mut merged, right);

    let right_outputs: HashMap<&str, Signal> = right
        .outputs()
        .iter()
        .map(|(name, sig)| (name.as_str(), edge(&rmap, *sig)))
        .collect();
    let mut pairs: Vec<(String, Signal, Signal)> = Vec::new();
    for (name, sig) in left.outputs() {
        if let Some(&rs) = right_outputs.get(name.as_str()) {
            pairs.push((name.clone(), edge(&lmap, *sig), rs));
        }
    }
    assert!(!pairs.is_empty(), "no common outputs to compare");

    // Per-output miters, plus a global one for the sweep roots.
    let miters: Vec<(String, Signal)> = pairs
        .iter()
        .map(|(name, l, r)| (name.clone(), merged.xor(*l, *r)))
        .collect();
    let roots: Vec<Signal> = miters.iter().map(|(_, m)| *m).collect();
    let sweep = sat_sweep(&merged, &roots, SweepOptions::default());
    let merged = sweep.netlist;

    let mut solver = Solver::new();
    let mut enc = SatEncoder::new();
    let cone_ands = merged.cone_size(&sweep.roots);
    let stats = |solver: &Solver, wall: Duration| EngineStats {
        sat_conflicts: Some(solver.stats().conflicts),
        coi_ands: Some(cone_ands),
        wall,
        ..EngineStats::default()
    };
    for ((name, _), &root) in miters.iter().zip(&sweep.roots) {
        let lit = enc.lit(&merged, &mut solver, root);
        match solver.solve_with_assumptions(&[lit]) {
            SolveResult::Unsat => continue,
            SolveResult::Sat => {
                let mut cex = HashMap::new();
                for &id in merged.inputs() {
                    if let Node::Input { name } = merged.node(id) {
                        let value = enc
                            .existing_lit(merged.signal(id))
                            .map(|l| solver.model_lit_value(l).is_true())
                            .unwrap_or(false);
                        cex.insert(name.clone(), value);
                    }
                }
                return CecResult {
                    equivalent: false,
                    failing_output: Some(name.clone()),
                    counterexample: Some(cex),
                    swept_merges: sweep.merged,
                    stats: stats(&solver, start.elapsed()),
                    duration: start.elapsed(),
                };
            }
            SolveResult::Unknown => unreachable!("no budget configured"),
        }
    }
    CecResult {
        equivalent: true,
        failing_output: None,
        counterexample: None,
        swept_merges: sweep.merged,
        stats: stats(&solver, start.elapsed()),
        duration: start.elapsed(),
    }
}

#[inline]
fn edge(remap: &[Signal], sig: Signal) -> Signal {
    let body = remap[sig.node().index()];
    if sig.is_inverted() {
        !body
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_netlist(width: usize, twisted: bool) -> Netlist {
        let mut n = Netlist::new();
        let a = n.word_input("a", width);
        let b = n.word_input("b", width);
        let s = if twisted {
            let nb = n.neg(&b);
            n.sub(&a, &nb)
        } else {
            n.add(&a, &b)
        };
        for (i, &bit) in s.bits().iter().enumerate() {
            n.output(format!("s[{i}]"), bit);
        }
        n
    }

    #[test]
    fn equivalent_adders() {
        let left = adder_netlist(8, false);
        let right = adder_netlist(8, true);
        let r = check_equivalence(&left, &right);
        assert!(r.equivalent);
        assert!(r.swept_merges > 0);
    }

    #[test]
    fn inequivalent_detected_with_cex() {
        let left = adder_netlist(6, false);
        let right = {
            let mut n = Netlist::new();
            let a = n.word_input("a", 6);
            let b = n.word_input("b", 6);
            let s = n.sub(&a, &b); // wrong operation
            for (i, &bit) in s.bits().iter().enumerate() {
                n.output(format!("s[{i}]"), bit);
            }
            n
        };
        let r = check_equivalence(&left, &right);
        assert!(!r.equivalent);
        let cex = r.counterexample.expect("counterexample");
        let name = r.failing_output.expect("failing output");
        // Replay on both sides: the named output must differ.
        let decode = |n: &Netlist| -> bool {
            let mut sim = fmaverify_netlist::BitSim::new(n);
            for (k, v) in &cex {
                if let Some(sig) = n.find_input(k) {
                    sim.set(sig, *v);
                }
            }
            sim.eval();
            sim.get(n.find_output(&name).expect("output"))
        };
        assert_ne!(decode(&left), decode(&right));
    }
}
