//! Multiplier isolation (paper Section 2, Figure 1) and its soundness
//! obligation.
//!
//! The isolated harness verifies the FPUs for *every* `S'`,`T'` pair
//! satisfying the multiplier property; soundness requires that the real
//! multiplier's outputs always satisfy that property — "a simple proof
//! obligation for SAT, since it requires only a fraction of the multiplier
//! logic in the cone-of-influence". Hot-one constants (the
//! implementation-specific part of the `S'`,`T'` rules) are derived
//! automatically here: candidate constant bits are found by random
//! simulation and each is then proven constant by SAT.

use std::time::{Duration, Instant};

use fmaverify_fpu::{build_impl_fpu, FpuConfig, FpuInputs, MultiplierMode, PipelineMode};
use fmaverify_netlist::{BitSim, Netlist, SatEncoder, Signal};
use fmaverify_sat::{SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::{multiplier_property, StConstant};

/// Result of the soundness obligation.
#[derive(Clone, Debug)]
pub struct SoundnessResult {
    /// True iff the real multiplier provably satisfies the isolation
    /// property (including any supplied hot-one constants).
    pub holds: bool,
    /// AND gates in the proof's cone of influence — "only a fraction of the
    /// multiplier logic".
    pub cone_ands: usize,
    /// AND gates in the full FPU for comparison.
    pub full_fpu_ands: usize,
    /// Wall-clock duration of the SAT proof.
    pub duration: Duration,
}

/// Builds the real-multiplier netlist and proves by SAT that `S`,`T`
/// satisfy [`multiplier_property`] plus the given hot-one constants.
pub fn prove_multiplier_soundness(cfg: &FpuConfig, st_constants: &[StConstant]) -> SoundnessResult {
    prove_multiplier_soundness_for(cfg, st_constants, MultiplierMode::Real)
}

/// Variant-parametric soundness proof: porting the methodology to a new FPU
/// implementation only requires re-running this with the new multiplier.
pub fn prove_multiplier_soundness_for(
    cfg: &FpuConfig,
    st_constants: &[StConstant],
    multiplier: MultiplierMode,
) -> SoundnessResult {
    let start = Instant::now();
    let mut n = Netlist::new();
    let inputs = FpuInputs::new(&mut n, cfg.format);
    let fpu = build_impl_fpu(
        &mut n,
        cfg,
        &inputs,
        multiplier,
        PipelineMode::Combinational,
    );
    let s = fpu.s.clone();
    let t = fpu.t.clone();
    let mut prop = multiplier_property(&mut n, cfg, &inputs, &s, &t);
    for k in st_constants {
        let word = if k.in_t { &t } else { &s };
        let bit = word.bit(k.bit);
        let lit = if k.value { bit } else { !bit };
        prop = n.and(prop, lit);
    }
    let full_fpu_ands = n.cone_size(&[fpu.outputs.result.bit(0)]);
    let cone_ands = n.cone_size(&[prop]);

    let mut solver = Solver::new();
    let mut enc = SatEncoder::new();
    let lit = enc.lit(&n, &mut solver, !prop);
    let holds = solver.solve_with_assumptions(&[lit]) == SolveResult::Unsat;
    SoundnessResult {
        holds,
        cone_ands,
        full_fpu_ands,
        duration: start.elapsed(),
    }
}

/// Automatically derives the implementation-specific `S'`,`T'` rules: bits
/// of `S`/`T` that are constant across all inputs. Candidates come from
/// random simulation; each is confirmed by a SAT proof. Porting the
/// methodology to a new FPU re-runs this derivation — "only the rules for
/// S' and T' had to be adjusted".
pub fn derive_st_constants(cfg: &FpuConfig, sim_samples: usize) -> Vec<StConstant> {
    derive_st_constants_for(cfg, sim_samples, MultiplierMode::Real)
}

/// Variant-parametric rule derivation (see [`derive_st_constants`]).
pub fn derive_st_constants_for(
    cfg: &FpuConfig,
    sim_samples: usize,
    multiplier: MultiplierMode,
) -> Vec<StConstant> {
    let mut n = Netlist::new();
    let inputs = FpuInputs::new(&mut n, cfg.format);
    let fpu = build_impl_fpu(
        &mut n,
        cfg,
        &inputs,
        multiplier,
        PipelineMode::Combinational,
    );
    let mut candidates: Vec<(bool, usize, bool, Signal)> = Vec::new();
    let mut sim = BitSim::new(&n);
    let mut rng = StdRng::seed_from_u64(0x5150);
    let wwin = cfg.window_bits();
    let mut s_always: Vec<Option<bool>> = vec![None; wwin];
    let mut t_always: Vec<Option<bool>> = vec![None; wwin];
    let mut s_dead = vec![false; wwin];
    let mut t_dead = vec![false; wwin];
    for _ in 0..sim_samples {
        sim.set_word(&inputs.a, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&inputs.b, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&inputs.c, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&inputs.op, rng.gen_range(0..6));
        sim.set_word(&inputs.rm, rng.gen_range(0..4));
        sim.eval();
        for k in 0..wwin {
            for (word, always, dead) in [
                (&fpu.s, &mut s_always, &mut s_dead),
                (&fpu.t, &mut t_always, &mut t_dead),
            ] {
                if dead[k] {
                    continue;
                }
                let v = sim.get(word.bit(k));
                match always[k] {
                    None => always[k] = Some(v),
                    Some(prev) if prev != v => dead[k] = true,
                    Some(_) => {}
                }
            }
        }
    }
    for k in 0..wwin {
        if !s_dead[k] {
            if let Some(v) = s_always[k] {
                candidates.push((false, k, v, fpu.s.bit(k)));
            }
        }
        if !t_dead[k] {
            if let Some(v) = t_always[k] {
                candidates.push((true, k, v, fpu.t.bit(k)));
            }
        }
    }
    // Confirm each candidate by SAT.
    let mut solver = Solver::new();
    let mut enc = SatEncoder::new();
    let mut out = Vec::new();
    for (in_t, bit, value, sig) in candidates {
        let lit = enc.lit(&n, &mut solver, sig);
        let assume = if value { !lit } else { lit }; // can it take the other value?
        if solver.solve_with_assumptions(&[assume]) == SolveResult::Unsat {
            out.push(StConstant { in_t, bit, value });
        }
    }
    out
}

/// Picks random `S'`,`T'` values satisfying the basic range property, for
/// testing the isolated harness concretely.
pub fn random_valid_st(cfg: &FpuConfig, rng: &mut StdRng, ma: u128, mb: u128) -> (u128, u128) {
    let wwin = cfg.window_bits() as u32;
    let product = ma * mb;
    // Any split S + T = product (mod 2^wwin) is a valid multiplier output
    // behaviourally; pick a random S and derive T.
    let mask = if wwin >= 128 {
        u128::MAX
    } else {
        (1u128 << wwin) - 1
    };
    let s = rng.gen::<u128>() & mask;
    let t = product.wrapping_sub(s) & mask;
    let _ = cfg;
    (s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_fpu::DenormalMode;
    use fmaverify_softfloat::FpFormat;

    fn micro(denormals: DenormalMode) -> FpuConfig {
        FpuConfig {
            format: FpFormat::MICRO,
            denormals,
        }
    }

    #[test]
    fn soundness_holds_micro() {
        for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
            let r = prove_multiplier_soundness(&micro(mode), &[]);
            assert!(r.holds, "mode {mode:?}");
            assert!(
                r.cone_ands < r.full_fpu_ands,
                "the obligation needs only a fraction of the FPU ({} vs {})",
                r.cone_ands,
                r.full_fpu_ands
            );
        }
    }

    #[test]
    fn derived_constants_are_sound() {
        let cfg = micro(DenormalMode::FlushToZero);
        let constants = derive_st_constants(&cfg, 400);
        // The Booth encoding leaves at least one constant artifact bit.
        assert!(
            !constants.is_empty(),
            "expected hot-one constants in the Booth multiplier outputs"
        );
        // The soundness proof must still pass with the constants included.
        let r = prove_multiplier_soundness(&cfg, &constants);
        assert!(r.holds);
    }

    #[test]
    fn wrong_constant_is_rejected() {
        let cfg = micro(DenormalMode::FlushToZero);
        // Claim that S bit 0 is constant true — the product parity varies,
        // so the obligation must fail.
        let bogus = [StConstant {
            in_t: false,
            bit: 0,
            value: true,
        }];
        let r = prove_multiplier_soundness(&cfg, &bogus);
        assert!(!r.holds, "a bogus S'/T' rule must be refuted");
    }
}
