//! The crate-wide typed error.
//!
//! Before PR 2 every failure path carried a bare `String`: engine panics,
//! missing SAT models, and I/O problems were indistinguishable to callers.
//! [`Error`] collapses those into one enum with enough source context to
//! route on (`EngineOutcome::Error` and `CaseResult::error` now carry it).
//!
//! The enum is `Clone` because `EngineOutcome` is `Clone` (results are
//! duplicated into the per-case attempt log); `std::io::Error` is not, so
//! I/O causes are captured as rendered strings at the point of failure.

use std::fmt;

use crate::engine::EngineKind;

/// Typed error for verification runs, telemetry sinks, and trace parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A case engine panicked mid-check. The scheduler catches the unwind,
    /// records the payload, and keeps the run alive.
    EnginePanic {
        /// Name of the engine that panicked (e.g. `"bdd"`, `"sat"`).
        engine: &'static str,
        /// The panic payload, rendered to a string.
        message: String,
    },
    /// An engine reported a failed property but could not produce a model
    /// to decode into a counterexample.
    MissingModel {
        /// Which engine kind dropped the model.
        engine: EngineKind,
    },
    /// An I/O failure, typically from a JSONL trace sink or a results
    /// writer. The underlying `std::io::Error` is rendered eagerly because
    /// it is not `Clone`.
    Io {
        /// What was being attempted (e.g. a file path).
        context: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// Malformed JSON fed to [`crate::json::JsonValue::parse`].
    JsonParse {
        /// Byte offset of the first unparseable input.
        offset: usize,
        /// What the parser expected.
        message: String,
    },
    /// A JSONL trace stream parsed as JSON but did not match the trace
    /// event schema (see `DESIGN.md` §"Machine-readable schema v2").
    TraceSchema {
        /// Description of the mismatch.
        message: String,
    },
}

impl Error {
    /// Builds an [`Error::Io`] from a `std::io::Error` plus context.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EnginePanic { engine, message } => {
                write!(f, "{engine} engine panicked: {message}")
            }
            Error::MissingModel { engine } => {
                write!(f, "{engine:?} engine reported failure without a model")
            }
            Error::Io { context, message } => write!(f, "i/o error ({context}): {message}"),
            Error::JsonParse { offset, message } => {
                write!(f, "json parse error at byte {offset}: {message}")
            }
            Error::TraceSchema { message } => write!(f, "malformed trace event: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_source_context() {
        let e = Error::EnginePanic {
            engine: "sat",
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "sat engine panicked: boom");
        let e = Error::MissingModel {
            engine: EngineKind::Bdd,
        };
        assert!(e.to_string().contains("without a model"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::io("results/x.jsonl", &io);
        assert!(e.to_string().contains("results/x.jsonl"));
        assert!(e.to_string().contains("gone"));
    }
}
