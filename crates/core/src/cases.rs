//! Case-splitting (paper Section 4).
//!
//! The overall verification problem is divided into sub-cases that fix the
//! shift amounts of the alignment and normalization shifters, collapsing
//! them "into simple wires":
//!
//! * one **far-out** case (δ outside the overlap range on either side),
//! * one **overlap** case per δ with no cancellation possible,
//! * for the cancellation δ values ({−2,−1,0,1} for FMA), one sub-case per
//!   normalization shift amount `sha` plus a `C_sha/rest` completeness case.
//!
//! At double precision this yields 1 + 157 + 4×107 = 586 cases for FMA (the
//! paper counts 585; see the boundary note on
//! [`FpuConfig::delta_min_overlap`]). The §6 denormal-operand extension
//! sub-divides *every* overlap δ by `sha`, giving ≈ 17k cases at double
//! precision.

use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};

/// The normalization-shift component of a cancellation case.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShaCase {
    /// `C_sha := (sha = amount)`.
    Exact(usize),
    /// `C_sha/rest := (sha > prod_bits)` — an empty care set, "checked only
    /// for completeness".
    Rest,
}

/// One verification sub-case.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CaseId {
    /// No case split at all: the whole input space in one SAT run (used for
    /// the multiply instruction).
    Monolithic,
    /// δ outside the overlap range (both far-out sides); discharged by SAT.
    FarOut,
    /// A single overlap δ where no massive cancellation can occur.
    OverlapNoCancel {
        /// The fixed exponent difference δ = e_p − e_c.
        delta: i64,
    },
    /// A cancellation δ together with a fixed normalization shift amount.
    OverlapCancel {
        /// The fixed exponent difference.
        delta: i64,
        /// The normalization-shift sub-case.
        sha: ShaCase,
    },
}

/// The case class used for Table-1-style aggregation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CaseClass {
    /// Overlap with cancellation sub-splits.
    OverlapWithCancellation,
    /// Overlap without cancellation.
    OverlapNoCancellation,
    /// The far-out case.
    FarOut,
    /// The unsplit whole-space case (multiply).
    Monolithic,
}

impl CaseClass {
    /// All case classes, in Table-1 presentation order.
    pub const ALL: [CaseClass; 4] = [
        CaseClass::OverlapWithCancellation,
        CaseClass::OverlapNoCancellation,
        CaseClass::FarOut,
        CaseClass::Monolithic,
    ];

    /// A short stable label, e.g. for kill-matrix columns.
    pub fn label(self) -> &'static str {
        match self {
            CaseClass::OverlapWithCancellation => "overlap_cancel",
            CaseClass::OverlapNoCancellation => "overlap_no_cancel",
            CaseClass::FarOut => "farout",
            CaseClass::Monolithic => "monolithic",
        }
    }
}

impl CaseId {
    /// The aggregation class of this case.
    pub fn class(self) -> CaseClass {
        match self {
            CaseId::Monolithic => CaseClass::Monolithic,
            CaseId::FarOut => CaseClass::FarOut,
            CaseId::OverlapNoCancel { .. } => CaseClass::OverlapNoCancellation,
            CaseId::OverlapCancel { .. } => CaseClass::OverlapWithCancellation,
        }
    }

    /// A short stable label, e.g. for log lines and tables.
    pub fn label(self) -> String {
        match self {
            CaseId::Monolithic => "monolithic".to_string(),
            CaseId::FarOut => "farout".to_string(),
            CaseId::OverlapNoCancel { delta } => format!("ov d={delta}"),
            CaseId::OverlapCancel { delta, sha } => match sha {
                ShaCase::Exact(s) => format!("ov d={delta} sha={s}"),
                ShaCase::Rest => format!("ov d={delta} sha=rest"),
            },
        }
    }
}

/// Which δ values can cancel for a given instruction and denormal mode.
///
/// * FMA/FMS: δ ∈ {−2,−1,0,1} (the product has two bits left of the point).
/// * ADD: δ ∈ {−1,0,1} — the δ = −2 split is unnecessary for addition, as
///   the paper notes when contrasting with Chen–Bryant.
/// * MUL: none (verified by SAT without case splitting).
/// * With denormal operands (§6), *any* overlap δ can cancel (Figure 4).
pub fn cancellation_deltas(cfg: &FpuConfig, op: FpuOp) -> Vec<i64> {
    match (cfg.denormals, op) {
        (_, FpuOp::Mul) => Vec::new(),
        (DenormalMode::FlushToZero, FpuOp::Add) => vec![-1, 0, 1],
        (DenormalMode::FlushToZero, _) => cfg.cancellation_deltas().to_vec(),
        (DenormalMode::FullIeee, FpuOp::Add) => {
            // Addition of two possibly-denormal operands: the product (= a)
            // may have leading zeros, so every overlap δ can cancel.
            (cfg.delta_min_overlap()..=cfg.delta_max_overlap()).collect()
        }
        (DenormalMode::FullIeee, _) => {
            (cfg.delta_min_overlap()..=cfg.delta_max_overlap()).collect()
        }
    }
}

/// Enumerates the verification cases for one instruction.
pub fn enumerate_cases(cfg: &FpuConfig, op: FpuOp) -> Vec<CaseId> {
    if op == FpuOp::Mul {
        // The multiply instruction is verified by a single SAT case without
        // case splitting (the denormalization similarity is found by the
        // solver, Section 5).
        return vec![CaseId::Monolithic];
    }
    let mut cases = vec![CaseId::FarOut];
    let cancel = cancellation_deltas(cfg, op);
    for delta in cfg.delta_min_overlap()..=cfg.delta_max_overlap() {
        if cancel.contains(&delta) {
            // The paper's 106 shift amounts (0..prod_bits) plus C_sha/rest.
            for s in 0..cfg.prod_bits() {
                cases.push(CaseId::OverlapCancel {
                    delta,
                    sha: ShaCase::Exact(s),
                });
            }
            cases.push(CaseId::OverlapCancel {
                delta,
                sha: ShaCase::Rest,
            });
        } else {
            cases.push(CaseId::OverlapNoCancel { delta });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_softfloat::FpFormat;

    #[test]
    fn double_precision_case_count_matches_paper_modulo_boundary() {
        let cfg = FpuConfig::double_ftz();
        let cases = enumerate_cases(&cfg, FpuOp::Fma);
        // Paper: 1 far-out + 156 non-cancellation + 4*107 cancellation = 585.
        // We carry one extra overlap δ (the −55 boundary correction), hence
        // 157 non-cancellation cases and 586 total.
        let farout = cases
            .iter()
            .filter(|c| c.class() == CaseClass::FarOut)
            .count();
        let nc = cases
            .iter()
            .filter(|c| c.class() == CaseClass::OverlapNoCancellation)
            .count();
        let wc = cases
            .iter()
            .filter(|c| c.class() == CaseClass::OverlapWithCancellation)
            .count();
        assert_eq!(farout, 1);
        assert_eq!(nc, 157);
        assert_eq!(wc, 4 * 107);
        assert_eq!(cases.len(), 586);
    }

    #[test]
    fn add_drops_minus_two() {
        let cfg = FpuConfig::double_ftz();
        let fma = enumerate_cases(&cfg, FpuOp::Fma);
        let add = enumerate_cases(&cfg, FpuOp::Add);
        assert_eq!(fma.len() - add.len(), 107 - 1); // one δ goes from 107 to 1
        assert!(add
            .iter()
            .any(|c| matches!(c, CaseId::OverlapNoCancel { delta: -2 })));
    }

    #[test]
    fn mul_is_single_case() {
        let cfg = FpuConfig::double_ftz();
        assert_eq!(enumerate_cases(&cfg, FpuOp::Mul), vec![CaseId::Monolithic]);
    }

    #[test]
    fn denormal_extension_is_quadratic() {
        let cfg = FpuConfig {
            format: FpFormat::DOUBLE,
            denormals: DenormalMode::FullIeee,
        };
        let cases = enumerate_cases(&cfg, FpuOp::Fma);
        // Every one of the 161 overlap δ gets 107 sha sub-cases, plus far-out:
        // ~17k cases, matching the paper's "approximately 17,000".
        assert_eq!(cases.len(), 1 + 161 * 107);
        assert!(cases.len() > 17_000);
    }

    #[test]
    fn labels_are_distinct() {
        let cfg = FpuConfig {
            format: FpFormat::MICRO,
            denormals: DenormalMode::FlushToZero,
        };
        let cases = enumerate_cases(&cfg, FpuOp::Fma);
        let mut labels: Vec<String> = cases.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cases.len());
    }
}
