//! The [`Session`] facade: one builder-style entry point for every
//! verification flow in the crate.
//!
//! Earlier revisions exposed a family of free functions
//! (`verify_instruction`, `run_cases_with_policy`, `run_single_case`, ...)
//! that each took a loose [`RunOptions`] plus, sometimes, an explicit
//! [`SchedulePolicy`]. A `Session` bundles the configuration, the options,
//! the optional policy override, and the telemetry pipeline into one value
//! that can be configured once and used for many runs:
//!
//! ```
//! use fmaverify::prelude::*;
//!
//! let cfg = FpuConfig {
//!     format: FpFormat::new(3, 2),
//!     denormals: DenormalMode::FlushToZero,
//! };
//! let report = Session::new(&cfg).threads(2).run(FpuOp::Mul);
//! assert!(report.all_hold());
//! ```
//!
//! Attach a [`Tracer`] to stream JSONL telemetry for any run:
//!
//! ```no_run
//! use fmaverify::prelude::*;
//!
//! let cfg = FpuConfig::double_ftz();
//! let tracer = Tracer::to_jsonl_file("results/fma.trace.jsonl").unwrap();
//! let report = Session::new(&cfg).tracer(tracer).run(FpuOp::Fma);
//! # let _ = report;
//! ```

use std::sync::Arc;

use fmaverify_fpu::{FpuConfig, FpuOp};
use fmaverify_netlist::Signal;

use crate::cache::ProofCache;
use crate::cases::CaseId;
use crate::config::RunConfig;
use crate::engine::EngineBudget;
use crate::engine_bdd::Minimize;
use crate::harness::{Harness, HarnessOptions};
use crate::runner::{
    run_case_traced, run_prepared_traced, verify_with, CancellationToken, CaseCtx, CaseResult,
    InstructionReport, RunOptions, SchedulePolicy,
};
use crate::trace::Tracer;

/// A configured verification session: FPU configuration, run options, an
/// optional [`SchedulePolicy`] override, and the telemetry pipeline.
///
/// Construct with [`Session::new`], chain builder methods, then call one of
/// the runners ([`Session::run`], [`Session::run_all`],
/// [`Session::run_prepared`], [`Session::run_case`]). The session is
/// reusable: every runner borrows `&self`, so one session can drive many
/// instructions with identical settings.
#[derive(Clone, Debug)]
pub struct Session {
    cfg: FpuConfig,
    options: RunOptions,
    policy: Option<SchedulePolicy>,
}

impl Session {
    /// A session for `cfg` with default [`RunOptions`] and the default
    /// (paper) engine policy.
    pub fn new(cfg: &FpuConfig) -> Session {
        Session {
            cfg: *cfg,
            options: RunOptions::default(),
            policy: None,
        }
    }

    /// Replaces the whole option set at once (escape hatch for callers that
    /// already hold a [`RunOptions`]).
    pub fn options(mut self, options: RunOptions) -> Session {
        self.options = options;
        self
    }

    /// Applies a typed [`RunConfig`] — budgets, threads, tracer, proof
    /// cache — in one call, replacing the session's options. This is the
    /// preferred way to configure a session from the environment:
    ///
    /// ```no_run
    /// use fmaverify::prelude::*;
    ///
    /// let cfg = FpuConfig::double_ftz();
    /// let session = Session::new(&cfg).configure(RunConfig::from_env());
    /// # let _ = session;
    /// ```
    pub fn configure(mut self, config: RunConfig) -> Session {
        self.options = config.to_run_options();
        self
    }

    /// Attaches an already-open proof cache, shared with other sessions
    /// (replayed verdicts are marked [`CaseResult::cached`]).
    pub fn cache(mut self, cache: Arc<ProofCache>) -> Session {
        self.options.cache = Some(cache);
        self
    }

    /// Sets the harness construction options.
    pub fn harness_options(mut self, harness: HarnessOptions) -> Session {
        self.options.harness = harness;
        self
    }

    /// Sets the BDD care-set minimization strategy.
    pub fn minimize(mut self, minimize: Minimize) -> Session {
        self.options.minimize = minimize;
        self
    }

    /// Sets the worker-thread count (0 = all available cores).
    pub fn threads(mut self, threads: usize) -> Session {
        self.options.threads = threads;
        self
    }

    /// Runs redundancy removal (SAT sweeping) before first-rung SAT cases.
    pub fn sweep_before_sat(mut self, sweep: bool) -> Session {
        self.options.sweep_before_sat = sweep;
        self
    }

    /// Sets the BDD garbage-collection threshold.
    pub fn gc_threshold(mut self, threshold: usize) -> Session {
        self.options.gc_threshold = threshold;
        self
    }

    /// Caps the BDD computed cache at `entries` slots per case manager. The
    /// cache is lossy: a smaller cap trades recompute work for memory and
    /// never changes verdicts.
    pub fn bdd_cache_size(mut self, entries: usize) -> Session {
        self.options.bdd_cache_size = entries;
        self
    }

    /// Sets both per-case budgets from one [`EngineBudget`]: the node limit
    /// bounds first-rung BDD attempts, the conflict limit bounds first-rung
    /// SAT attempts.
    pub fn budget(mut self, budget: EngineBudget) -> Session {
        self.options.node_budget = budget.node_limit;
        self.options.conflict_budget = budget.conflict_limit;
        self
    }

    /// Enables or disables cross-engine escalation of blown budgets.
    pub fn escalate(mut self, escalate: bool) -> Session {
        self.options.escalate = escalate;
        self
    }

    /// Cancels the remaining cases as soon as one counterexample is found
    /// (bug-hunting mode).
    pub fn stop_on_failure(mut self, stop: bool) -> Session {
        self.options.stop_on_failure = stop;
        self
    }

    /// Installs an external cancellation token, checked before every case.
    pub fn cancel(mut self, token: CancellationToken) -> Session {
        self.options.cancel = token;
        self
    }

    /// Attaches a telemetry pipeline. The default, [`Tracer::disabled`],
    /// compiles every instrumentation site down to a branch on `None`.
    pub fn tracer(mut self, tracer: Tracer) -> Session {
        self.options.tracer = tracer;
        self
    }

    /// Overrides the engine policy (which ladder runs for which case
    /// class). Without this the policy is derived from the options, which
    /// reproduces the paper's BDD/SAT assignment.
    pub fn policy(mut self, policy: SchedulePolicy) -> Session {
        self.policy = Some(policy);
        self
    }

    /// The session's FPU configuration.
    pub fn config(&self) -> &FpuConfig {
        &self.cfg
    }

    /// The effective run options.
    pub fn run_options(&self) -> &RunOptions {
        &self.options
    }

    /// The effective policy: the explicit override if one was set, else the
    /// policy derived from the options.
    pub fn effective_policy(&self) -> SchedulePolicy {
        self.policy
            .clone()
            .unwrap_or_else(|| SchedulePolicy::from_options(&self.options))
    }

    /// Verifies one instruction across all of its cases: builds the
    /// harness, enumerates and constrains the cases, and runs them on the
    /// work-stealing pool.
    pub fn run(&self, op: FpuOp) -> InstructionReport {
        verify_with(&self.cfg, op, &self.options, &self.effective_policy())
    }

    /// Verifies several instructions back to back, reusing the session's
    /// settings (each instruction still builds its own harness).
    pub fn run_all(&self, ops: &[FpuOp]) -> Vec<InstructionReport> {
        ops.iter().map(|&op| self.run(op)).collect()
    }

    /// Runs pre-built `(case, constraint)` pairs on the work-stealing pool
    /// — for callers that build or modify the harness themselves (fault
    /// injection, custom case splits).
    pub fn run_prepared(
        &self,
        harness: &Harness,
        op: FpuOp,
        constraints: &[(CaseId, Vec<Signal>)],
    ) -> Vec<CaseResult> {
        run_prepared_traced(
            harness,
            op,
            constraints,
            &self.options,
            &self.effective_policy(),
        )
    }

    /// Runs one case down its escalation ladder on the calling thread.
    pub fn run_case(
        &self,
        harness: &Harness,
        op: FpuOp,
        case: CaseId,
        constraint_parts: &[Signal],
    ) -> CaseResult {
        let policy = self.effective_policy();
        let result = run_case_traced(
            harness,
            op,
            case,
            constraint_parts,
            policy.ladder(op, case),
            CaseCtx::standalone(&self.options.tracer, self.options.cache.as_deref()),
        );
        if let Some(cache) = &self.options.cache {
            cache.flush();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_fpu::DenormalMode;
    use fmaverify_softfloat::FpFormat;

    fn tiny_cfg() -> FpuConfig {
        FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        }
    }

    #[test]
    fn builder_round_trips_options() {
        let session = Session::new(&tiny_cfg())
            .threads(2)
            .sweep_before_sat(true)
            .gc_threshold(123)
            .bdd_cache_size(1 << 15)
            .budget(EngineBudget {
                node_limit: Some(1000),
                conflict_limit: Some(50),
            })
            .escalate(false)
            .stop_on_failure(true);
        let opts = session.run_options();
        assert_eq!(opts.threads, 2);
        assert!(opts.sweep_before_sat);
        assert_eq!(opts.gc_threshold, 123);
        assert_eq!(opts.bdd_cache_size, 1 << 15);
        assert_eq!(opts.node_budget, Some(1000));
        assert_eq!(opts.conflict_budget, Some(50));
        assert!(!opts.escalate);
        assert!(opts.stop_on_failure);
    }

    #[test]
    fn session_verifies_tiny_mul() {
        let report = Session::new(&tiny_cfg()).threads(2).run(FpuOp::Mul);
        assert!(report.all_hold());
    }

    #[test]
    fn explicit_policy_overrides_derived() {
        let session = Session::new(&tiny_cfg()).budget(EngineBudget {
            node_limit: Some(7),
            conflict_limit: None,
        });
        let derived = session.effective_policy();
        assert_eq!(derived.overlap[0].budget.node_limit, Some(7));
        let custom = SchedulePolicy::from_options(&RunOptions::default());
        let session = session.policy(custom);
        assert_eq!(
            session.effective_policy().overlap[0].budget.node_limit,
            None
        );
    }
}
