//! The typed run configuration: every tuning knob in one struct.
//!
//! Earlier revisions configured runs through a soup of ad-hoc environment
//! variables spread across twelve bench binaries (`FMAVERIFY_NODE_LIMIT`
//! here, a hand-parsed thread count there). [`RunConfig`] collects the
//! engine budgets, scheduler settings, telemetry pipeline and proof-cache
//! mode in one plain-data struct with a single environment reader,
//! [`RunConfig::from_env`]; [`crate::Session::configure`] applies it.
//!
//! ```no_run
//! use fmaverify::prelude::*;
//!
//! let cfg = FpuConfig::double_ftz();
//! let report = Session::new(&cfg)
//!     .configure(RunConfig::from_env())
//!     .run(FpuOp::Fma);
//! # let _ = report;
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use crate::cache::{CacheMode, ProofCache};
use crate::engine_bdd::Minimize;
use crate::harness::HarnessOptions;
use crate::runner::{CancellationToken, RunOptions};
use crate::trace::Tracer;

/// The conventional on-disk location of the proof cache.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// One typed bundle of every run-tuning knob.
///
/// Plain data plus a [`Tracer`]: build one with [`RunConfig::default`] or
/// [`RunConfig::from_env`], adjust fields directly, and hand it to
/// [`crate::Session::configure`] (which also opens the proof cache when
/// [`RunConfig::cache_mode`] asks for one).
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker threads for the case scheduler (0 = all available cores).
    pub threads: usize,
    /// Per-case BDD node budget (`None` = unbounded first rung).
    pub node_budget: Option<usize>,
    /// Per-case SAT conflict budget (`None` = unbounded first rung).
    pub conflict_budget: Option<u64>,
    /// Run redundancy removal before first-rung SAT cases.
    pub sweep_before_sat: bool,
    /// Garbage-collection threshold for the BDD engine.
    pub gc_threshold: usize,
    /// Computed-cache size cap (entries) for each BDD case's manager. The
    /// cache is lossy and direct-mapped: a smaller cap trades recompute
    /// work for memory without ever changing results.
    pub bdd_cache_size: usize,
    /// Retry a budget-exceeded case on the other engine class.
    pub escalate: bool,
    /// Cancel the remaining cases as soon as one counterexample is found.
    pub stop_on_failure: bool,
    /// BDD care-set minimization strategy.
    pub minimize: Minimize,
    /// Harness construction options.
    pub harness: HarnessOptions,
    /// Telemetry pipeline (default: disabled).
    pub tracer: Tracer,
    /// Proof-cache mode (default: [`CacheMode::Off`]).
    pub cache_mode: CacheMode,
    /// Proof-cache directory (default: [`DEFAULT_CACHE_DIR`]).
    pub cache_dir: PathBuf,
    /// Mutation campaigns: cap on the number of verified mutants (`None` =
    /// exhaustive over the candidate fault space).
    pub mutants: Option<usize>,
    /// Mutation campaigns: RNG seed for mutant sampling and the
    /// observability screen.
    pub mutation_seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        let defaults = RunOptions::default();
        RunConfig {
            threads: defaults.threads,
            node_budget: defaults.node_budget,
            conflict_budget: defaults.conflict_budget,
            sweep_before_sat: defaults.sweep_before_sat,
            gc_threshold: defaults.gc_threshold,
            bdd_cache_size: defaults.bdd_cache_size,
            escalate: defaults.escalate,
            stop_on_failure: defaults.stop_on_failure,
            minimize: defaults.minimize,
            harness: defaults.harness,
            tracer: Tracer::disabled(),
            cache_mode: CacheMode::Off,
            cache_dir: PathBuf::from(DEFAULT_CACHE_DIR),
            mutants: None,
            mutation_seed: 0xBADC0DE,
        }
    }
}

impl RunConfig {
    /// Reads the configuration from the `FMAVERIFY_*` environment, falling
    /// back to [`RunConfig::default`] field by field:
    ///
    /// | variable | field | accepted values |
    /// |---|---|---|
    /// | `FMAVERIFY_THREADS` | [`RunConfig::threads`] | integer (0 = all cores) |
    /// | `FMAVERIFY_NODE_LIMIT` | [`RunConfig::node_budget`] | integer (0 = unbounded) |
    /// | `FMAVERIFY_CONFLICT_LIMIT` | [`RunConfig::conflict_budget`] | integer (0 = unbounded) |
    /// | `FMAVERIFY_SWEEP` | [`RunConfig::sweep_before_sat`] | `1`/`0` |
    /// | `FMAVERIFY_GC_THRESHOLD` | [`RunConfig::gc_threshold`] | integer |
    /// | `FMAVERIFY_BDD_CACHE_SIZE` | [`RunConfig::bdd_cache_size`] | integer (entries) |
    /// | `FMAVERIFY_ESCALATE` | [`RunConfig::escalate`] | `1`/`0` |
    /// | `FMAVERIFY_STOP_ON_FAILURE` | [`RunConfig::stop_on_failure`] | `1`/`0` |
    /// | `FMAVERIFY_CACHE` | [`RunConfig::cache_mode`] | `off`, `ro`, `rw` |
    /// | `FMAVERIFY_CACHE_DIR` | [`RunConfig::cache_dir`] | path |
    /// | `FMAVERIFY_MUTANTS` | [`RunConfig::mutants`] | integer (0 = exhaustive) |
    /// | `FMAVERIFY_MUTATION_SEED` | [`RunConfig::mutation_seed`] | integer |
    ///
    /// Unparseable values fall back to the default rather than erroring:
    /// these are tuning knobs, not program input.
    pub fn from_env() -> RunConfig {
        let d = RunConfig::default();
        RunConfig {
            threads: env_usize("FMAVERIFY_THREADS").unwrap_or(d.threads),
            node_budget: env_limit("FMAVERIFY_NODE_LIMIT").unwrap_or(d.node_budget),
            conflict_budget: env_limit("FMAVERIFY_CONFLICT_LIMIT")
                .map(|limit| limit.map(|n| n as u64))
                .unwrap_or(d.conflict_budget),
            sweep_before_sat: env_flag("FMAVERIFY_SWEEP").unwrap_or(d.sweep_before_sat),
            gc_threshold: env_usize("FMAVERIFY_GC_THRESHOLD").unwrap_or(d.gc_threshold),
            bdd_cache_size: env_usize("FMAVERIFY_BDD_CACHE_SIZE").unwrap_or(d.bdd_cache_size),
            escalate: env_flag("FMAVERIFY_ESCALATE").unwrap_or(d.escalate),
            stop_on_failure: env_flag("FMAVERIFY_STOP_ON_FAILURE").unwrap_or(d.stop_on_failure),
            cache_mode: std::env::var("FMAVERIFY_CACHE")
                .ok()
                .and_then(|v| CacheMode::parse(&v))
                .unwrap_or(d.cache_mode),
            cache_dir: std::env::var_os("FMAVERIFY_CACHE_DIR")
                .map(PathBuf::from)
                .unwrap_or(d.cache_dir),
            mutants: env_limit("FMAVERIFY_MUTANTS").unwrap_or(d.mutants),
            mutation_seed: std::env::var("FMAVERIFY_MUTATION_SEED")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(d.mutation_seed),
            ..d
        }
    }

    /// Replaces the telemetry pipeline (builder-style).
    pub fn tracer(mut self, tracer: Tracer) -> RunConfig {
        self.tracer = tracer;
        self
    }

    /// Sets the proof-cache mode (builder-style), keeping the directory.
    pub fn cache(mut self, mode: CacheMode) -> RunConfig {
        self.cache_mode = mode;
        self
    }

    /// Opens the proof cache this configuration asks for (`None` when the
    /// mode is [`CacheMode::Off`]).
    pub fn open_cache(&self) -> Option<Arc<ProofCache>> {
        self.cache_mode
            .is_enabled()
            .then(|| Arc::new(ProofCache::open(&self.cache_dir, self.cache_mode)))
    }

    /// Lowers the configuration into the scheduler's [`RunOptions`],
    /// opening the proof cache in the process.
    pub fn to_run_options(&self) -> RunOptions {
        RunOptions {
            harness: self.harness.clone(),
            minimize: self.minimize,
            threads: self.threads,
            sweep_before_sat: self.sweep_before_sat,
            gc_threshold: self.gc_threshold,
            bdd_cache_size: self.bdd_cache_size,
            node_budget: self.node_budget,
            conflict_budget: self.conflict_budget,
            escalate: self.escalate,
            stop_on_failure: self.stop_on_failure,
            cancel: CancellationToken::new(),
            tracer: self.tracer.clone(),
            cache: self.open_cache(),
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Budget-style variable: absent ↦ `None` (fall back to the default),
/// `0` ↦ `Some(None)` (explicitly unbounded), `n` ↦ `Some(Some(n))`.
fn env_limit(name: &str) -> Option<Option<usize>> {
    let n: usize = std::env::var(name).ok()?.trim().parse().ok()?;
    Some((n > 0).then_some(n))
}

fn env_flag(name: &str) -> Option<bool> {
    match std::env::var(name).ok()?.trim() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_run_options_default() {
        let rc = RunConfig::default();
        let ro = RunOptions::default();
        assert_eq!(rc.threads, ro.threads);
        assert_eq!(rc.node_budget, ro.node_budget);
        assert_eq!(rc.conflict_budget, ro.conflict_budget);
        assert_eq!(rc.sweep_before_sat, ro.sweep_before_sat);
        assert_eq!(rc.gc_threshold, ro.gc_threshold);
        assert_eq!(rc.bdd_cache_size, ro.bdd_cache_size);
        assert_eq!(rc.escalate, ro.escalate);
        assert_eq!(rc.cache_mode, CacheMode::Off);
        assert!(rc.open_cache().is_none());
    }

    #[test]
    fn lowering_carries_every_knob() {
        let rc = RunConfig {
            threads: 3,
            node_budget: Some(1234),
            conflict_budget: Some(99),
            sweep_before_sat: true,
            gc_threshold: 777,
            bdd_cache_size: 1 << 14,
            escalate: false,
            stop_on_failure: true,
            ..RunConfig::default()
        };
        let ro = rc.to_run_options();
        assert_eq!(ro.threads, 3);
        assert_eq!(ro.node_budget, Some(1234));
        assert_eq!(ro.conflict_budget, Some(99));
        assert!(ro.sweep_before_sat);
        assert_eq!(ro.gc_threshold, 777);
        assert_eq!(ro.bdd_cache_size, 1 << 14);
        assert!(!ro.escalate);
        assert!(ro.stop_on_failure);
        assert!(ro.cache.is_none());
    }

    #[test]
    fn cache_mode_builder_opens_cache() {
        let dir =
            std::env::temp_dir().join(format!("fmaverify-config-test-{}", std::process::id()));
        let rc = RunConfig {
            cache_dir: dir.clone(),
            ..RunConfig::default()
        }
        .cache(CacheMode::ReadWrite);
        let ro = rc.to_run_options();
        let cache = ro.cache.expect("cache opened");
        assert_eq!(cache.mode(), CacheMode::ReadWrite);
        assert_eq!(cache.dir(), dir.as_path());
        // Opening is lazy about the directory: nothing is created until a
        // store is flushed.
        assert!(!dir.exists());
    }
}
