//! Completeness of the case split (paper Section 4): "The disjunction of
//! all the cases is easily provable as a tautology, guaranteeing
//! completeness of our methodology."
//!
//! Two obligations are discharged by SAT:
//!
//! 1. the δ-level split (far-out ∪ all overlap δ) covers every input, and
//! 2. the `C_sha` split (every shift amount plus the `rest` case) covers
//!    every value of the reference FPU's shift-amount signal.

use std::time::{Duration, Instant};

use fmaverify_fpu::{FpuConfig, FpuOp};

use crate::cases::enumerate_cases;
use crate::engine_sat::prove_tautology;
use crate::harness::{build_harness, HarnessOptions};

/// Result of the completeness proof.
#[derive(Clone, Debug)]
pub struct CompletenessResult {
    /// The δ partition covers the whole input space.
    pub delta_split_complete: bool,
    /// The sha partition covers all shift amounts.
    pub sha_split_complete: bool,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl CompletenessResult {
    /// True iff both obligations hold.
    pub fn holds(&self) -> bool {
        self.delta_split_complete && self.sha_split_complete
    }
}

/// Proves the completeness of the case split for one instruction.
pub fn prove_completeness(cfg: &FpuConfig, op: FpuOp) -> CompletenessResult {
    let start = Instant::now();
    let mut harness = build_harness(cfg, HarnessOptions::default());
    let cases = enumerate_cases(cfg, op);
    let disjunction = harness.cases_disjunction(op, &cases);
    let (delta_ok, _) = prove_tautology(&harness.netlist, disjunction);
    let sha_all = harness.sha_cases_complete();
    let (sha_ok, _) = prove_tautology(&harness.netlist, sha_all);
    CompletenessResult {
        delta_split_complete: delta_ok,
        sha_split_complete: sha_ok,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_fpu::DenormalMode;
    use fmaverify_softfloat::FpFormat;

    #[test]
    fn micro_split_is_complete() {
        for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
            let cfg = FpuConfig {
                format: FpFormat::MICRO,
                denormals: mode,
            };
            for op in [FpuOp::Fma, FpuOp::Add, FpuOp::Mul] {
                let r = prove_completeness(&cfg, op);
                assert!(r.holds(), "op {op:?} mode {mode:?}: {r:?}");
            }
        }
    }

    #[test]
    fn dropping_a_delta_breaks_completeness() {
        let cfg = FpuConfig {
            format: FpFormat::MICRO,
            denormals: DenormalMode::FlushToZero,
        };
        let mut harness = build_harness(&cfg, HarnessOptions::default());
        let mut cases = enumerate_cases(&cfg, FpuOp::Fma);
        // Remove one overlap δ entirely.
        cases.retain(|c| !matches!(c, crate::cases::CaseId::OverlapNoCancel { delta: 3 }));
        let disjunction = harness.cases_disjunction(FpuOp::Fma, &cases);
        let (ok, witness) = prove_tautology(&harness.netlist, disjunction);
        assert!(!ok, "an incomplete split must be detected");
        assert!(witness.is_some());
    }
}
