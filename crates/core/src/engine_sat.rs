//! SAT-based miter checking.
//!
//! The paper uses satisfiability checking for the far-out cases and the
//! multiply instruction: the solver only encodes the cone of influence, so
//! "the SAT-solver is able to identify that the shifters which align the
//! addend to the product are not needed" and drops them automatically —
//! whereas BDD symbolic simulation would build them anyway.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fmaverify_netlist::{sat_sweep, Netlist, Node, SatEncoder, Signal, SweepOptions};
use fmaverify_sat::{SolveResult, Solver, SolverStats};

/// Options for a SAT check.
#[derive(Clone, Copy, Debug, Default)]
pub struct SatEngineOptions {
    /// Run redundancy removal (SAT sweeping) on the cone before the check,
    /// as the paper does "prior to application of BDD- and SAT-based
    /// analysis".
    pub sweep_first: bool,
    /// Conflict budget (None = run to completion).
    pub conflict_budget: Option<u64>,
}

/// Result of a SAT miter check.
#[derive(Clone, Debug)]
pub struct SatOutcome {
    /// True iff `miter AND care` is unsatisfiable.
    pub holds: bool,
    /// Input assignment (by name) when the check fails.
    pub counterexample: Option<HashMap<String, bool>>,
    /// Solver statistics.
    pub stats: SolverStats,
    /// AND gates in the encoded cone (after sweeping, if enabled).
    pub cone_ands: usize,
    /// AND gates merged away by sweeping (0 when disabled).
    pub swept_away: usize,
    /// Node merges performed by sweeping (0 when disabled).
    pub sweep_merged: usize,
    /// SAT equivalence queries issued by sweeping (0 when disabled).
    pub sweep_sat_calls: usize,
    /// Simulation rounds run by sweeping, seed plus refinement (0 when
    /// disabled).
    pub sweep_sim_rounds: usize,
    /// Wall-clock duration.
    pub duration: Duration,
    /// True when the conflict budget was exhausted (result unknown).
    pub unknown: bool,
}

/// Checks by SAT that `miter` is false everywhere on the care set `care`.
pub fn check_miter_sat(
    netlist: &Netlist,
    miter: Signal,
    care: Signal,
    opts: &SatEngineOptions,
) -> SatOutcome {
    check_miter_sat_parts(netlist, miter, &[care], opts)
}

/// Like [`check_miter_sat`] with the care set given as a conjunction of
/// parts, each assumed as a separate literal.
pub fn check_miter_sat_parts(
    netlist: &Netlist,
    miter: Signal,
    care_parts: &[Signal],
    opts: &SatEngineOptions,
) -> SatOutcome {
    let start = Instant::now();
    let mut roots: Vec<Signal> = vec![miter];
    roots.extend_from_slice(care_parts);
    let (owned, roots, swept_away, sweep_merged, sweep_sat_calls, sweep_sim_rounds) =
        if opts.sweep_first {
            let before = netlist.cone_size(&roots);
            let result = sat_sweep(netlist, &roots, SweepOptions::default());
            let after = result.ands_after;
            (
                Some(result.netlist),
                result.roots,
                before.saturating_sub(after),
                result.merged,
                result.sat_calls,
                result.sim_rounds,
            )
        } else {
            (None, roots, 0, 0, 0, 0)
        };
    let netlist = owned.as_ref().unwrap_or(netlist);
    let miter = roots[0];

    let cone_ands = netlist.cone_size(&roots);
    let mut solver = Solver::new();
    solver.set_conflict_budget(opts.conflict_budget);
    let mut enc = SatEncoder::new();
    let mut assumptions: Vec<fmaverify_sat::Lit> = roots[1..]
        .iter()
        .map(|&c| enc.lit(netlist, &mut solver, c))
        .collect();
    let miter_lit = enc.lit(netlist, &mut solver, miter);
    assumptions.push(miter_lit);
    let result = solver.solve_with_assumptions(&assumptions);
    let holds = result == SolveResult::Unsat;
    let unknown = result == SolveResult::Unknown;
    let counterexample = if result == SolveResult::Sat {
        let mut cex = HashMap::new();
        for &id in netlist.inputs() {
            if let Node::Input { name } = netlist.node(id) {
                let value = enc
                    .existing_lit(netlist.signal(id))
                    .map(|l| solver.model_lit_value(l).is_true())
                    .unwrap_or(false);
                cex.insert(name.clone(), value);
            }
        }
        Some(cex)
    } else {
        None
    };
    SatOutcome {
        holds,
        counterexample,
        stats: solver.stats(),
        cone_ands,
        swept_away,
        sweep_merged,
        sweep_sat_calls,
        sweep_sim_rounds,
        duration: start.elapsed(),
        unknown,
    }
}

/// Proves that `property` is a tautology (true for every input assignment):
/// used for the multiplier-isolation soundness obligation and the
/// case-split completeness check. Returns `(holds, witness_of_failure)`.
pub fn prove_tautology(
    netlist: &Netlist,
    property: Signal,
) -> (bool, Option<HashMap<String, bool>>) {
    let out = check_miter_sat(
        netlist,
        !property,
        Signal::TRUE,
        &SatEngineOptions::default(),
    );
    (out.holds, out.counterexample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_netlist::BitSim;

    fn adder_pair(buggy: bool) -> (Netlist, Signal, Signal) {
        let mut n = Netlist::new();
        let a = n.word_input("a", 8);
        let b = n.word_input("b", 8);
        let s1 = n.add(&a, &b);
        let nb = n.neg(&b);
        let mut s2 = n.sub(&a, &nb);
        if buggy {
            let mut bits = s2.bits().to_vec();
            bits[5] = !bits[5];
            s2 = fmaverify_netlist::Word::from_bits(bits);
        }
        let d = n.xor_word(&s1, &s2);
        let miter = n.or_reduce(&d);
        let care = !a.bit(7);
        (n, miter, care)
    }

    #[test]
    fn equal_adders_hold() {
        let (n, miter, care) = adder_pair(false);
        for sweep in [false, true] {
            let out = check_miter_sat(
                &n,
                miter,
                care,
                &SatEngineOptions {
                    sweep_first: sweep,
                    conflict_budget: None,
                },
            );
            assert!(out.holds, "sweep={sweep}");
            if sweep {
                assert!(out.swept_away > 0, "sweeping should reduce the cone");
            }
        }
    }

    #[test]
    fn buggy_adder_cex_replays() {
        let (n, miter, care) = adder_pair(true);
        let out = check_miter_sat(&n, miter, care, &SatEngineOptions::default());
        assert!(!out.holds);
        let cex = out.counterexample.expect("counterexample");
        let mut sim = BitSim::new(&n);
        for (name, val) in &cex {
            let sig = n.find_input(name).expect("input");
            sim.set(sig, *val);
        }
        sim.eval();
        assert!(sim.get(miter) && sim.get(care));
    }

    #[test]
    fn tautology_checks() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let lhs = n.and(a, b);
        let taut = n.implies(lhs, a);
        let (holds, _) = prove_tautology(&n, taut);
        assert!(holds);
        let non_taut = n.or(a, b);
        let (holds, witness) = prove_tautology(&n, non_taut);
        assert!(!holds);
        let w = witness.expect("witness");
        assert!(!w["a"] && !w["b"]);
    }

    #[test]
    fn budget_reports_unknown() {
        // Equivalence of two multipliers is hard; with a 1-conflict budget
        // the engine must report unknown rather than a wrong verdict.
        let mut n = Netlist::new();
        let a = n.word_input("a", 12);
        let b = n.word_input("b", 12);
        let p1 = n.mul(&a, &b);
        let p2 = n.mul(&b, &a);
        // Build a second structure: (a+b)^2 - a^2 - b^2 == 2ab; compare with
        // p1 + p2 (both 2ab).
        let s = n.add(&a, &b);
        let s2 = n.mul(&s, &s);
        let a2 = n.mul(&a, &a);
        let b2 = n.mul(&b, &b);
        let a2x = n.zext(&a2, 24);
        let b2x = n.zext(&b2, 24);
        let lhs = {
            let t = n.sub(&s2, &a2x);
            n.sub(&t, &b2x)
        };
        let p1x = n.zext(&p1, 24);
        let p2x = n.zext(&p2, 24);
        let rhs = n.add(&p1x, &p2x);
        let d = n.xor_word(&lhs, &rhs);
        let miter = n.or_reduce(&d);
        let out = check_miter_sat(
            &n,
            miter,
            Signal::TRUE,
            &SatEngineOptions {
                sweep_first: false,
                conflict_budget: Some(1),
            },
        );
        assert!(out.unknown);
        assert!(!out.holds);
    }
}
