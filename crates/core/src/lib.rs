//! `fmaverify` — automatic formal verification of fused-multiply-add FPUs.
//!
//! A from-scratch reproduction of Jacobi, Weber, Paruthi & Baumgartner,
//! *Automatic Formal Verification of Fused-Multiply-Add FPUs* (DATE 2005).
//! The crate verifies a gate-level implementation FPU against a simple
//! reference FPU derived from the architectural specification, using only
//! automatic engines:
//!
//! * [`harness`] — the driver: both FPUs in one netlist, a miter over their
//!   results and flags, multiplier isolation via constrained `S'`,`T'`
//!   pseudo-inputs (Figure 1);
//! * [`cases`] — the 586-case split at double precision (δ cases, `C_sha`
//!   sub-cases, far-out), and the quadratic §6 extension for denormal
//!   operands;
//! * [`engine`] — the unified [`CaseEngine`] trait: every decision
//!   procedure returns one [`engine::EngineOutcome`] (holds /
//!   counterexample / budget-exceeded / error) with uniform
//!   [`engine::EngineStats`];
//! * [`engine_bdd`] / [`engine_sat`] / [`engine_bdd_seq`] — BDD symbolic
//!   simulation with care-set minimization, structural SAT, and the
//!   cycle-accurate sequential BDD engine, all behind the trait;
//! * [`order`] — the paper's static variable orders;
//! * [`isolation`] — the multiplier-isolation soundness obligation and the
//!   automatic derivation of the implementation-specific `S'`,`T'` rules;
//! * [`completeness`] — the tautology proof that the case split covers the
//!   whole input space;
//! * [`session`] — the [`Session`] facade: one builder-style entry point
//!   for every verification flow;
//! * [`config`] — the typed [`RunConfig`]: every tuning knob (budgets,
//!   threads, tracer, cache mode) in one struct with a single
//!   environment reader;
//! * [`cache`] — the content-addressed proof cache: case verdicts keyed by
//!   a structural hash of the analyzed cone, replayed on later runs for
//!   incremental verification;
//! * [`runner`] / [`report`] — the work-stealing scheduler with per-case
//!   budgets, [`runner::SchedulePolicy`] escalation ladders and
//!   cancellation, plus Table-1-style aggregation;
//! * [`trace`] — the telemetry layer: hierarchical spans, monotonic
//!   counters aggregated across scheduler threads, JSONL event traces, and
//!   the [`trace::summary`] fold that rebuilds per-case effort tables from
//!   a trace;
//! * [`error`] — the crate-wide [`Error`] type carried by failed cases;
//! * [`json`] — machine-readable (JSON) result serialization, emitter and
//!   parser;
//! * [`cec`] — combinational equivalence checking via SAT sweeping;
//! * [`mutate`] — fault injection for verifying the verifier.
//!
//! # Examples
//!
//! Verify the multiply instruction of a tiny-format FPU end to end:
//!
//! ```
//! use fmaverify::prelude::*;
//!
//! let cfg = FpuConfig {
//!     format: FpFormat::new(3, 2),
//!     denormals: DenormalMode::FlushToZero,
//! };
//! let report = Session::new(&cfg).run(FpuOp::Mul);
//! assert!(report.all_hold());
//! ```
//!
//! The same run with telemetry captured in memory and folded into a
//! per-case summary table:
//!
//! ```
//! use fmaverify::prelude::*;
//!
//! let cfg = FpuConfig {
//!     format: FpFormat::new(3, 2),
//!     denormals: DenormalMode::FlushToZero,
//! };
//! let (tracer, sink) = Tracer::in_memory();
//! let report = Session::new(&cfg).tracer(tracer).run(FpuOp::Mul);
//! let summary = fmaverify::trace::summary::summarize_jsonl(&sink.to_jsonl()).unwrap();
//! assert_eq!(summary.cases.len(), report.results.len());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod cases;
pub mod cec;
pub mod completeness;
pub mod config;
pub mod engine;
pub mod engine_bdd;
pub mod engine_bdd_seq;
pub mod engine_sat;
pub mod error;
pub mod harness;
pub mod isolation;
pub mod json;
pub mod mutate;
pub mod order;
pub mod report;
pub mod runner;
pub mod semi_formal;
pub mod sequential;
pub mod session;
pub mod trace;

// Re-export the companion crates' primary types so downstream users can
// depend on `fmaverify` alone.
pub use fmaverify_fpu::{DenormalMode, FpuConfig, FpuInputs, FpuOp, MultiplierMode, PipelineMode};
pub use fmaverify_softfloat::{FpFormat, RoundingMode};

pub use cache::{CacheMode, CacheStats, CachedCase, Fingerprint, ProofCache, CACHE_SCHEMA_VERSION};
pub use campaign::{run_campaign, CampaignReport, MutantOutcome, MutantStatus};
pub use cases::{cancellation_deltas, enumerate_cases, CaseClass, CaseId, ShaCase};
pub use cec::{check_equivalence, import_netlist, CecResult};
pub use completeness::{prove_completeness, CompletenessResult};
pub use config::{RunConfig, DEFAULT_CACHE_DIR};
pub use engine::{
    BddCaseEngine, BddSeqCaseEngine, CaseEngine, EngineBudget, EngineKind, EngineOutcome,
    EngineStats, EngineVerdict, SatCaseEngine,
};
pub use engine_bdd::{
    check_miter_bdd, check_miter_bdd_parts, BddEngineOptions, BddOutcome, Minimize,
};
pub use engine_bdd_seq::check_miter_bdd_sequential;
pub use engine_sat::{
    check_miter_sat, check_miter_sat_parts, prove_tautology, SatEngineOptions, SatOutcome,
};
pub use error::Error;
pub use harness::{
    architected_delta, build_harness, multiplier_property, Harness, HarnessOptions, StConstant,
};
pub use isolation::{
    derive_st_constants, derive_st_constants_for, prove_multiplier_soundness,
    prove_multiplier_soundness_for, SoundnessResult,
};
pub use json::{JsonValue, ToJson, SCHEMA_VERSION};
pub use mutate::{
    fault_candidates, inject_fault, random_fault, random_fault_in, CandidateScope, Mutation,
    MutationKind,
};
pub use order::{naive_order, paper_order};
pub use report::{render_table1, summarize, table1_rows, TableRow};
#[allow(deprecated)]
pub use runner::{
    run_case_ladder, run_cases, run_cases_with_policy, run_single_case, verify_instruction,
    verify_instruction_with_policy, CancellationToken, CaseAttempt, CaseResult, CounterExample,
    EngineStage, InstructionReport, RunOptions, SchedulePolicy, Verdict,
};
pub use semi_formal::{semi_formal_check, SemiFormalOutcome};
pub use sequential::{unroll_harness, UnrolledHarness};
pub use session::Session;
pub use trace::{Counter, MetricSet, MetricsRegistry, Span, SpanKind, TraceEvent, Tracer};

/// Everything a typical verification driver needs, in one import.
///
/// ```
/// use fmaverify::prelude::*;
/// ```
pub mod prelude {
    pub use crate::cache::{CacheMode, ProofCache};
    pub use crate::campaign::{run_campaign, CampaignReport, MutantStatus};
    pub use crate::cases::{CaseClass, CaseId};
    pub use crate::config::RunConfig;
    pub use crate::engine::{EngineBudget, EngineKind};
    pub use crate::engine_bdd::Minimize;
    pub use crate::error::Error;
    pub use crate::harness::HarnessOptions;
    pub use crate::json::ToJson;
    pub use crate::runner::{
        CancellationToken, CaseResult, InstructionReport, RunOptions, SchedulePolicy, Verdict,
    };
    pub use crate::session::Session;
    pub use crate::trace::{Counter, SpanKind, Tracer};
    pub use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
    pub use fmaverify_softfloat::{FpFormat, RoundingMode};
}
