//! Case orchestration: builds the constraints for every case of an
//! instruction, dispatches each to the appropriate engine (SAT for far-out
//! and multiply, BDD symbolic simulation for the overlap cases), runs them
//! in parallel, and collects per-case statistics — the paper's regression
//! that "takes less than a day when running 10 jobs in parallel".

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fmaverify_fpu::{FpuConfig, FpuOp};
use fmaverify_netlist::{BitSim, Netlist, Signal};

use crate::cases::{enumerate_cases, CaseClass, CaseId};
use crate::engine_bdd::{check_miter_bdd_parts, BddEngineOptions, Minimize};
use crate::engine_sat::{check_miter_sat_parts, SatEngineOptions};
use crate::harness::{build_harness, Harness, HarnessOptions};
use crate::order::paper_order;

/// Which engine discharged a case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// BDD-based symbolic simulation.
    Bdd,
    /// SAT (structural satisfiability on the unfolded netlist).
    Sat,
}

/// A counterexample decoded back to operand values.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// Raw input assignment by input name.
    pub assignment: HashMap<String, bool>,
    /// Operand A bits.
    pub a: u128,
    /// Operand B bits.
    pub b: u128,
    /// Operand C bits.
    pub c: u128,
    /// Opcode.
    pub op: u32,
    /// Rounding-mode code.
    pub rm: u32,
}

/// Per-case verification result.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The case.
    pub case: CaseId,
    /// The instruction.
    pub op: FpuOp,
    /// The engine used.
    pub engine: Engine,
    /// Whether the case held.
    pub holds: bool,
    /// Counterexample on failure.
    pub counterexample: Option<CounterExample>,
    /// Peak BDD nodes (BDD engine only).
    pub bdd_peak_nodes: Option<usize>,
    /// SAT conflicts (SAT engine only).
    pub sat_conflicts: Option<u64>,
    /// Wall-clock time for this case.
    pub duration: Duration,
}

/// Options for an instruction-level verification run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Harness construction options.
    pub harness: HarnessOptions,
    /// BDD minimization strategy.
    pub minimize: Minimize,
    /// Threads for the parallel case run (0 = all available).
    pub threads: usize,
    /// Run redundancy removal before SAT cases.
    pub sweep_before_sat: bool,
    /// Garbage-collection threshold for the BDD engine.
    pub gc_threshold: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            harness: HarnessOptions::default(),
            minimize: Minimize::Constrain,
            threads: 0,
            sweep_before_sat: false,
            gc_threshold: 2_000_000,
        }
    }
}

/// Aggregate report for one instruction.
#[derive(Clone, Debug)]
pub struct InstructionReport {
    /// The instruction.
    pub op: FpuOp,
    /// All per-case results.
    pub results: Vec<CaseResult>,
    /// Total wall-clock time (parallel).
    pub wall: Duration,
    /// Sum of per-case times (the paper's "accumulated run-time").
    pub accumulated: Duration,
}

impl InstructionReport {
    /// True iff every case held.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|r| r.holds)
    }

    /// The first failing case, if any.
    pub fn first_failure(&self) -> Option<&CaseResult> {
        self.results.iter().find(|r| !r.holds)
    }

    /// Results belonging to one Table-1 class.
    pub fn class_results(&self, class: CaseClass) -> Vec<&CaseResult> {
        self.results
            .iter()
            .filter(|r| r.case.class() == class)
            .collect()
    }
}

/// Chooses the paper's engine assignment for a case.
pub fn engine_for_case(op: FpuOp, case: CaseId) -> Engine {
    match (op, case) {
        // "Satisfiability checking was used to verify the far-out cases";
        // the multiply instruction is SAT end to end.
        (FpuOp::Mul, _) | (_, CaseId::FarOut) | (_, CaseId::Monolithic) => Engine::Sat,
        _ => Engine::Bdd,
    }
}

/// The δ a case fixes, for order derivation.
fn case_delta(case: CaseId) -> Option<i64> {
    match case {
        CaseId::Monolithic | CaseId::FarOut => None,
        CaseId::OverlapNoCancel { delta } => Some(delta),
        CaseId::OverlapCancel { delta, .. } => Some(delta),
    }
}

/// Verifies one instruction across all of its cases.
///
/// Constraints for all cases are materialized in the shared netlist first;
/// the per-case checks then run in parallel over the read-only netlist.
pub fn verify_instruction(cfg: &FpuConfig, op: FpuOp, options: &RunOptions) -> InstructionReport {
    let start = Instant::now();
    let mut harness = build_harness(cfg, options.harness.clone());
    let cases = enumerate_cases(cfg, op);
    let constraints: Vec<(CaseId, Vec<Signal>)> = cases
        .iter()
        .map(|&case| (case, harness.case_constraint_parts(op, case)))
        .collect();
    let results = run_cases(&harness, op, &constraints, options);
    let accumulated = results.iter().map(|r| r.duration).sum();
    InstructionReport {
        op,
        results,
        wall: start.elapsed(),
        accumulated,
    }
}

/// Runs pre-built `(case, constraint)` pairs in parallel on the harness.
pub fn run_cases(
    harness: &Harness,
    op: FpuOp,
    constraints: &[(CaseId, Vec<Signal>)],
    options: &RunOptions,
) -> Vec<CaseResult> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    };
    let jobs = std::sync::Mutex::new(constraints.iter().enumerate());
    let results = std::sync::Mutex::new(vec![None; constraints.len()]);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(constraints.len()).max(1) {
            scope.spawn(|_| loop {
                let job = { jobs.lock().expect("jobs lock").next() };
                let Some((idx, (case, constraint))) = job else {
                    break;
                };
                let r = run_single_case(harness, op, *case, constraint, options);
                results.lock().expect("results lock")[idx] = Some(r);
            });
        }
    })
    .expect("case worker panicked");
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Runs one case with the engine the paper assigns to it.
pub fn run_single_case(
    harness: &Harness,
    op: FpuOp,
    case: CaseId,
    constraint_parts: &[Signal],
    options: &RunOptions,
) -> CaseResult {
    let engine = engine_for_case(op, case);
    let start = Instant::now();
    match engine {
        Engine::Sat => {
            let out = check_miter_sat_parts(
                &harness.netlist,
                harness.miter,
                constraint_parts,
                &SatEngineOptions {
                    sweep_first: options.sweep_before_sat,
                    conflict_budget: None,
                },
            );
            CaseResult {
                case,
                op,
                engine,
                holds: out.holds,
                counterexample: out
                    .counterexample
                    .map(|c| decode_cex(harness, c)),
                bdd_peak_nodes: None,
                sat_conflicts: Some(out.stats.conflicts),
                duration: start.elapsed(),
            }
        }
        Engine::Bdd => {
            let order = paper_order(harness, case_delta(case));
            let out = check_miter_bdd_parts(
                &harness.netlist,
                harness.miter,
                constraint_parts,
                &BddEngineOptions {
                    minimize: options.minimize,
                    order,
                    gc_threshold: options.gc_threshold,
                    node_limit: None,
                },
            );
            CaseResult {
                case,
                op,
                engine,
                holds: out.holds,
                counterexample: out
                    .counterexample
                    .map(|c| decode_cex(harness, c)),
                bdd_peak_nodes: Some(out.peak_nodes),
                sat_conflicts: None,
                duration: start.elapsed(),
            }
        }
    }
}

/// Decodes a raw name→bit counterexample into operand words, and replays it
/// against the netlist to confirm the miter really fires.
fn decode_cex(harness: &Harness, assignment: HashMap<String, bool>) -> CounterExample {
    let get_word = |prefix: &str, width: usize| -> u128 {
        (0..width)
            .map(|i| {
                u128::from(
                    assignment
                        .get(&format!("{prefix}[{i}]"))
                        .copied()
                        .unwrap_or(false),
                ) << i
            })
            .sum()
    };
    let w = harness.cfg.format.width() as usize;
    let cex = CounterExample {
        a: get_word("a", w),
        b: get_word("b", w),
        c: get_word("c", w),
        op: get_word("op", 3) as u32,
        rm: get_word("rm", 2) as u32,
        assignment,
    };
    // Replay: a counterexample that does not reproduce is an engine bug.
    let mut sim = BitSim::new(&harness.netlist);
    for (name, value) in &cex.assignment {
        if let Some(sig) = harness.netlist.find_input(name) {
            sim.set(sig, *value);
        }
    }
    sim.eval();
    debug_assert!(
        sim.get(harness.miter),
        "counterexample failed to replay on the miter"
    );
    cex
}

impl CounterExample {
    /// Renders the counterexample as a VCD waveform of every output and
    /// probe of `netlist` (inputs held for `cycles` cycles — use the
    /// pipeline latency + 1 for sequential implementations).
    pub fn to_vcd(&self, netlist: &Netlist, cycles: usize) -> String {
        let assignment: Vec<(String, bool)> = self
            .assignment
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        fmaverify_netlist::dump_counterexample(netlist, &assignment, cycles)
    }
}

/// Replays a counterexample on a netlist, returning the miter value.
pub fn replay(netlist: &Netlist, miter: Signal, assignment: &HashMap<String, bool>) -> bool {
    let mut sim = BitSim::new(netlist);
    for (name, value) in assignment {
        if let Some(sig) = netlist.find_input(name) {
            sim.set(sig, *value);
        }
    }
    sim.eval();
    sim.get(miter)
}
