//! Case orchestration: builds the constraints for every case of an
//! instruction, schedules each onto the engine ladder its class prescribes,
//! runs the cases on a work-stealing thread pool, and collects per-case
//! statistics — the paper's regression that "takes less than a day when
//! running 10 jobs in parallel".
//!
//! Engines are driven exclusively through the [`CaseEngine`] trait; which
//! engine runs, with what budget, and what happens when a budget is
//! exhausted is decided by a [`SchedulePolicy`]: an escalation ladder of
//! `(engine, budget)` stages per case class. The default policy reproduces
//! the paper's assignment (BDD for overlap cases, SAT for far-out and the
//! multiplier) and, when budgets are configured, escalates a blown BDD run
//! to swept SAT and a blown SAT run to unbounded BDD.
//!
//! Results come back in case-enumeration order regardless of which worker
//! finished first, so runs are reproducible; a [`CancellationToken`] lets
//! bug-hunting callers stop the whole sweep as soon as one counterexample
//! is found.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fmaverify_fpu::{FpuConfig, FpuOp};
use fmaverify_netlist::{BitSim, Netlist, Signal};

use crate::cache::{CacheStats, CachedCase, Fingerprint, ProofCache};
use crate::cases::{enumerate_cases, CaseClass, CaseId};
use crate::engine::{
    BddCaseEngine, CaseEngine, EngineBudget, EngineKind, EngineOutcome, EngineStats, EngineVerdict,
    SatCaseEngine,
};
use crate::engine_bdd::Minimize;
use crate::error::Error;
use crate::harness::{build_harness, Harness, HarnessOptions};
use crate::json::{JsonValue, ToJson};
use crate::trace::{Counter, SpanKind, Tracer};

/// A counterexample decoded back to operand values.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// Raw input assignment by input name.
    pub assignment: HashMap<String, bool>,
    /// Operand A bits.
    pub a: u128,
    /// Operand B bits.
    pub b: u128,
    /// Operand C bits.
    pub c: u128,
    /// Opcode.
    pub op: u32,
    /// Rounding-mode code.
    pub rm: u32,
    /// True iff replaying the assignment on the netlist made the miter
    /// fire. A `false` here means the *engine* is buggy: it produced an
    /// assignment the design does not actually fail on.
    pub replay_confirmed: bool,
}

/// Final status of one case after the whole ladder ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The case was proved.
    Holds,
    /// A counterexample was found.
    Fails,
    /// Every ladder stage exhausted its budget.
    BudgetExceeded,
    /// Every remaining ladder stage errored (e.g. panicked).
    Error,
    /// The run was canceled before this case was decided.
    Canceled,
}

/// One engine attempt on a case (a rung of the escalation ladder).
#[derive(Clone, Debug)]
pub struct CaseAttempt {
    /// The engine kind.
    pub engine: EngineKind,
    /// The engine's short name (e.g. `"bdd/constrain"`, `"sat/sweep"`).
    pub engine_name: &'static str,
    /// The budget the attempt ran under.
    pub budget: EngineBudget,
    /// What the attempt concluded.
    pub verdict: Verdict,
    /// Resources the attempt spent.
    pub stats: EngineStats,
}

/// Per-case verification result.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The case.
    pub case: CaseId,
    /// The instruction.
    pub op: FpuOp,
    /// The engine whose attempt decided the case (the last attempt's engine
    /// when nothing decided it).
    pub engine: EngineKind,
    /// The final verdict.
    pub verdict: Verdict,
    /// Counterexample when the verdict is [`Verdict::Fails`].
    pub counterexample: Option<CounterExample>,
    /// Typed engine error when the verdict is [`Verdict::Error`].
    pub error: Option<Error>,
    /// Stats of the deciding attempt.
    pub stats: EngineStats,
    /// Every attempt in ladder order (length > 1 iff the case escalated).
    pub attempts: Vec<CaseAttempt>,
    /// Time the case spent queued before a worker picked it up (zero for
    /// single-case runs).
    pub queue_latency: Duration,
    /// True if a worker stole this case from a neighbour's queue.
    pub stolen: bool,
    /// True when the verdict was replayed from the proof cache instead of
    /// running any engine this run (`stats`/`attempts` then describe the
    /// original proving run, while `duration` is the replay time).
    pub cached: bool,
    /// Total wall-clock time across all attempts.
    pub duration: Duration,
}

impl CaseResult {
    /// True iff the case was proved.
    pub fn holds(&self) -> bool {
        self.verdict == Verdict::Holds
    }

    /// Number of escalations (attempts beyond the first).
    pub fn escalations(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Peak BDD nodes of the deciding attempt, when it was a BDD engine.
    pub fn bdd_peak_nodes(&self) -> Option<usize> {
        self.stats.peak_bdd_nodes
    }

    /// SAT conflicts of the deciding attempt, when it was the SAT engine.
    pub fn sat_conflicts(&self) -> Option<u64> {
        self.stats.sat_conflicts
    }
}

/// Cooperative stop signal shared by every scheduler worker.
///
/// Cancelling does not interrupt an engine mid-flight; cases not yet
/// started when the token trips are reported as [`Verdict::Canceled`].
#[derive(Clone, Debug, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, un-tripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token; every worker stops picking up new cases.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancellationToken::cancel`] has been called.
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// One rung of an escalation ladder: an engine plus the budget it may spend.
#[derive(Clone)]
pub struct EngineStage {
    /// The engine.
    pub engine: Arc<dyn CaseEngine>,
    /// Its resource limits.
    pub budget: EngineBudget,
}

impl std::fmt::Debug for EngineStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineStage")
            .field("engine", &self.engine.name())
            .field("budget", &self.budget)
            .finish()
    }
}

/// Which engines run for which case class, in what order, with what
/// budgets.
///
/// The scheduler walks the ladder for a case top to bottom; the first stage
/// returning a definite verdict wins. A stage that exhausts its budget
/// *escalates* to the next; a stage that errors is skipped the same way.
#[derive(Clone, Debug)]
pub struct SchedulePolicy {
    /// Ladder for the overlap cases (with and without cancellation).
    pub overlap: Vec<EngineStage>,
    /// Ladder for the far-out cases, the monolithic multiply check, and
    /// every case of the multiply instruction.
    pub farout: Vec<EngineStage>,
}

impl SchedulePolicy {
    /// The policy [`RunOptions`] describe: the paper's engine assignment,
    /// budgets from the options, plus one escalation rung per class when
    /// `escalate` is set — a blown BDD run retries as swept SAT, a blown
    /// SAT run retries as unbounded BDD.
    pub fn from_options(options: &RunOptions) -> Self {
        let bdd = BddCaseEngine {
            minimize: options.minimize,
            gc_threshold: options.gc_threshold,
            cache_size: options.bdd_cache_size,
        };
        let mut overlap = vec![EngineStage {
            engine: bdd.clone().shared(),
            budget: EngineBudget {
                node_limit: options.node_budget,
                conflict_limit: None,
            },
        }];
        if options.escalate && options.node_budget.is_some() {
            overlap.push(EngineStage {
                engine: SatCaseEngine { sweep_first: true }.shared(),
                budget: EngineBudget::UNLIMITED,
            });
        }
        let mut farout = vec![EngineStage {
            engine: SatCaseEngine {
                sweep_first: options.sweep_before_sat,
            }
            .shared(),
            budget: EngineBudget {
                node_limit: None,
                conflict_limit: options.conflict_budget,
            },
        }];
        if options.escalate && options.conflict_budget.is_some() {
            farout.push(EngineStage {
                engine: bdd.shared(),
                budget: EngineBudget::UNLIMITED,
            });
        }
        SchedulePolicy { overlap, farout }
    }

    /// The ladder driving `case` of `op`.
    pub fn ladder(&self, op: FpuOp, case: CaseId) -> &[EngineStage] {
        match (op, case) {
            // "Satisfiability checking was used to verify the far-out
            // cases"; the multiply instruction is SAT end to end.
            (FpuOp::Mul, _) | (_, CaseId::FarOut) | (_, CaseId::Monolithic) => &self.farout,
            _ => &self.overlap,
        }
    }
}

/// Options for an instruction-level verification run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Harness construction options.
    pub harness: HarnessOptions,
    /// BDD minimization strategy.
    pub minimize: Minimize,
    /// Threads for the parallel case run (0 = all available).
    pub threads: usize,
    /// Run redundancy removal before first-rung SAT cases.
    pub sweep_before_sat: bool,
    /// Garbage-collection threshold for the BDD engine.
    pub gc_threshold: usize,
    /// Computed-cache size cap (entries) for each BDD case's manager.
    pub bdd_cache_size: usize,
    /// Per-case BDD node budget (`None` = unbounded first rung).
    pub node_budget: Option<usize>,
    /// Per-case SAT conflict budget (`None` = unbounded first rung).
    pub conflict_budget: Option<u64>,
    /// Retry a budget-exceeded case on the other engine class.
    pub escalate: bool,
    /// Cancel the remaining cases as soon as one counterexample is found
    /// (bug-hunting mode).
    pub stop_on_failure: bool,
    /// External stop signal; checked before every case.
    pub cancel: CancellationToken,
    /// Telemetry pipeline; [`Tracer::disabled`] (the default) costs nearly
    /// nothing.
    pub tracer: Tracer,
    /// Content-addressed proof cache consulted before every case dispatch
    /// (`None` = always run the engines).
    pub cache: Option<Arc<ProofCache>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            harness: HarnessOptions::default(),
            minimize: Minimize::Constrain,
            threads: 0,
            sweep_before_sat: false,
            gc_threshold: 2_000_000,
            bdd_cache_size: fmaverify_bdd::DEFAULT_CACHE_SIZE,
            node_budget: None,
            conflict_budget: None,
            escalate: true,
            stop_on_failure: false,
            cancel: CancellationToken::new(),
            tracer: Tracer::disabled(),
            cache: None,
        }
    }
}

/// Aggregate report for one instruction.
#[derive(Clone, Debug)]
pub struct InstructionReport {
    /// The instruction.
    pub op: FpuOp,
    /// All per-case results, in case-enumeration order.
    pub results: Vec<CaseResult>,
    /// Total wall-clock time (parallel).
    pub wall: Duration,
    /// Sum of per-case times (the paper's "accumulated run-time").
    pub accumulated: Duration,
}

impl InstructionReport {
    /// True iff every case was proved.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|r| r.holds())
    }

    /// The first case with a counterexample, if any.
    pub fn first_failure(&self) -> Option<&CaseResult> {
        self.results.iter().find(|r| r.verdict == Verdict::Fails)
    }

    /// Results belonging to one Table-1 class.
    pub fn class_results(&self, class: CaseClass) -> Vec<&CaseResult> {
        self.results
            .iter()
            .filter(|r| r.case.class() == class)
            .collect()
    }

    /// Number of cases that needed at least one escalation.
    pub fn escalated_cases(&self) -> usize {
        self.results.iter().filter(|r| r.escalations() > 0).count()
    }
}

/// Verifies one instruction across all of its cases with the default
/// policy derived from `options`.
#[doc(hidden)]
#[deprecated(since = "0.2.0", note = "use `fmaverify::Session::new(cfg).run(op)`")]
pub fn verify_instruction(cfg: &FpuConfig, op: FpuOp, options: &RunOptions) -> InstructionReport {
    verify_with(cfg, op, options, &SchedulePolicy::from_options(options))
}

/// Verifies one instruction across all of its cases under an explicit
/// [`SchedulePolicy`].
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `fmaverify::Session::new(cfg).policy(p).run(op)`"
)]
pub fn verify_instruction_with_policy(
    cfg: &FpuConfig,
    op: FpuOp,
    options: &RunOptions,
    policy: &SchedulePolicy,
) -> InstructionReport {
    verify_with(cfg, op, options, policy)
}

/// The traced instruction-level run behind [`crate::Session::run`].
///
/// Constraints for all cases are materialized in the shared netlist first;
/// the per-case checks then run in parallel over the read-only netlist.
/// When a tracer is configured, the whole run is bracketed by a `run` span
/// with `op` children for harness construction and constraint generation,
/// and a registry-totals event is emitted at the end.
pub(crate) fn verify_with(
    cfg: &FpuConfig,
    op: FpuOp,
    options: &RunOptions,
    policy: &SchedulePolicy,
) -> InstructionReport {
    let start = Instant::now();
    let tracer = options.tracer.clone();
    let mut run_span = tracer.span(SpanKind::Run, || format!("verify:{op:?}"));
    let mut harness = {
        let _span = run_span.child(SpanKind::Op, || "build_harness".into());
        build_harness(cfg, options.harness.clone())
    };
    let cases = enumerate_cases(cfg, op);
    let constraints: Vec<(CaseId, Vec<Signal>)> = {
        let _span = run_span.child(SpanKind::Op, || "constraints".into());
        cases
            .iter()
            .map(|&case| (case, harness.case_constraint_parts(op, case)))
            .collect()
    };
    let cache_before = options.cache.as_ref().map(|c| c.stats());
    let results = schedule_cases(
        &harness,
        op,
        &constraints,
        options,
        policy,
        run_span.parent_id(),
    );
    let accumulated = results.iter().map(|r| r.duration).sum();
    run_span.field("op", JsonValue::string(format!("{op:?}")));
    run_span.field("cases", JsonValue::int(results.len() as u64));
    run_span.field(
        "all_hold",
        JsonValue::Bool(results.iter().all(|r| r.holds())),
    );
    run_span.field(
        "cached",
        JsonValue::int(results.iter().filter(|r| r.cached).count() as u64),
    );
    drop(run_span);
    finish_cache_accounting(options, cache_before, &tracer);
    tracer.emit_totals();
    tracer.flush();
    InstructionReport {
        op,
        results,
        wall: start.elapsed(),
        accumulated,
    }
}

/// Runs pre-built `(case, constraint)` pairs in parallel on the harness
/// with the default policy derived from `options`.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `fmaverify::Session::new(cfg).run_prepared(...)`"
)]
pub fn run_cases(
    harness: &Harness,
    op: FpuOp,
    constraints: &[(CaseId, Vec<Signal>)],
    options: &RunOptions,
) -> Vec<CaseResult> {
    run_prepared_traced(
        harness,
        op,
        constraints,
        options,
        &SchedulePolicy::from_options(options),
    )
}

/// Runs pre-built `(case, constraint)` pairs on a work-stealing pool under
/// an explicit policy.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `fmaverify::Session::new(cfg).policy(p).run_prepared(...)`"
)]
pub fn run_cases_with_policy(
    harness: &Harness,
    op: FpuOp,
    constraints: &[(CaseId, Vec<Signal>)],
    options: &RunOptions,
    policy: &SchedulePolicy,
) -> Vec<CaseResult> {
    run_prepared_traced(harness, op, constraints, options, policy)
}

/// [`schedule_cases`] wrapped in its own `run` span plus the end-of-run
/// totals event — the body of [`crate::Session::run_prepared`].
pub(crate) fn run_prepared_traced(
    harness: &Harness,
    op: FpuOp,
    constraints: &[(CaseId, Vec<Signal>)],
    options: &RunOptions,
    policy: &SchedulePolicy,
) -> Vec<CaseResult> {
    let tracer = options.tracer.clone();
    let mut run_span = tracer.span(SpanKind::Run, || format!("cases:{op:?}"));
    let cache_before = options.cache.as_ref().map(|c| c.stats());
    let results = schedule_cases(
        harness,
        op,
        constraints,
        options,
        policy,
        run_span.parent_id(),
    );
    run_span.field("cases", JsonValue::int(results.len() as u64));
    drop(run_span);
    finish_cache_accounting(options, cache_before, &tracer);
    tracer.emit_totals();
    tracer.flush();
    results
}

/// Folds the cache activity of the run that just finished (the delta since
/// `before`) into the registry totals and persists any pending stores.
fn finish_cache_accounting(options: &RunOptions, before: Option<CacheStats>, tracer: &Tracer) {
    let (Some(cache), Some(before)) = (options.cache.as_ref(), before) else {
        return;
    };
    let after = cache.stats();
    let handle = tracer.handle();
    handle.add(Counter::CacheHits, after.hits.saturating_sub(before.hits));
    handle.add(
        Counter::CacheMisses,
        after.misses.saturating_sub(before.misses),
    );
    handle.add(
        Counter::CacheStores,
        after.stores.saturating_sub(before.stores),
    );
    cache.flush();
}

/// The work-stealing pool.
///
/// Each worker owns a deque seeded round-robin with case indices; an idle
/// worker steals from the back of its neighbours' deques. Since cases are
/// only ever removed, the pool terminates when every deque is empty.
/// Results are returned in `constraints` order regardless of completion
/// order.
///
/// Every worker registers a thread slot with the tracer's metrics registry
/// and folds its cases' engine counters plus scheduler telemetry (steals,
/// escalations, queue latency) into it; each case runs under a `case` span
/// parented to `parent`.
fn schedule_cases(
    harness: &Harness,
    op: FpuOp,
    constraints: &[(CaseId, Vec<Signal>)],
    options: &RunOptions,
    policy: &SchedulePolicy,
    parent: Option<u64>,
) -> Vec<CaseResult> {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    };
    let workers = threads.min(constraints.len()).max(1);

    // Seed the per-worker deques round-robin so every worker starts with a
    // spread of case classes (heavy and light cases interleave).
    let queues: Vec<Mutex<std::collections::VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..constraints.len())
                    .filter(|i| i % workers == w)
                    .collect(),
            )
        })
        .collect();
    let results: Vec<Mutex<Option<CaseResult>>> =
        (0..constraints.len()).map(|_| Mutex::new(None)).collect();
    let cancel = &options.cancel;
    let tracer = &options.tracer;
    let pool_start = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            scope.spawn(move || {
                let metrics = tracer.handle();
                while let Some((idx, stolen)) = next_job(w, queues) {
                    let queue_latency = pool_start.elapsed();
                    let (case, constraint) = &constraints[idx];
                    let result = if cancel.is_canceled() {
                        canceled_result(op, *case, policy)
                    } else {
                        let r = run_case_traced(
                            harness,
                            op,
                            *case,
                            constraint,
                            policy.ladder(op, *case),
                            CaseCtx {
                                tracer,
                                cache: options.cache.as_deref(),
                                parent,
                                queue_latency,
                                stolen,
                            },
                        );
                        if options.stop_on_failure && r.verdict == Verdict::Fails {
                            cancel.cancel();
                        }
                        r
                    };
                    if metrics.is_recording() {
                        // A replayed result carries the *original* run's
                        // attempt metrics; folding them here would claim
                        // work this run never did.
                        if !result.cached {
                            for attempt in &result.attempts {
                                metrics.add_set(&attempt.stats.metrics);
                            }
                        }
                        metrics.add(Counter::SchedCasesCompleted, 1);
                        metrics.add(Counter::SchedEscalations, result.escalations() as u64);
                        metrics.add(
                            Counter::SchedQueueLatencyMicros,
                            queue_latency.as_micros() as u64,
                        );
                        if stolen {
                            metrics.add(Counter::SchedSteals, 1);
                        }
                    }
                    *results[idx].lock().expect("result slot") = Some(result);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("all jobs completed")
        })
        .collect()
}

/// Pops a job: first from the worker's own deque (front), then by stealing
/// from the back of the other workers' deques. The flag reports whether the
/// job was stolen.
fn next_job(
    worker: usize,
    queues: &[Mutex<std::collections::VecDeque<usize>>],
) -> Option<(usize, bool)> {
    if let Some(idx) = queues[worker].lock().expect("queue lock").pop_front() {
        return Some((idx, false));
    }
    for off in 1..queues.len() {
        let victim = (worker + off) % queues.len();
        if let Some(idx) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some((idx, true));
        }
    }
    None
}

fn canceled_result(op: FpuOp, case: CaseId, policy: &SchedulePolicy) -> CaseResult {
    let ladder = policy.ladder(op, case);
    CaseResult {
        case,
        op,
        engine: ladder
            .first()
            .map(|s| s.engine.kind())
            .unwrap_or(EngineKind::Bdd),
        verdict: Verdict::Canceled,
        counterexample: None,
        error: None,
        stats: EngineStats::default(),
        attempts: Vec::new(),
        queue_latency: Duration::ZERO,
        stolen: false,
        cached: false,
        duration: Duration::ZERO,
    }
}

/// Runs one case with the default policy derived from `options` (ladder
/// escalation included, no threading).
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `fmaverify::Session::new(cfg).run_case(...)`"
)]
pub fn run_single_case(
    harness: &Harness,
    op: FpuOp,
    case: CaseId,
    constraint_parts: &[Signal],
    options: &RunOptions,
) -> CaseResult {
    let policy = SchedulePolicy::from_options(options);
    let result = run_case_traced(
        harness,
        op,
        case,
        constraint_parts,
        policy.ladder(op, case),
        CaseCtx::standalone(&options.tracer, options.cache.as_deref()),
    );
    if let Some(cache) = &options.cache {
        cache.flush();
    }
    result
}

/// Walks one case down an escalation ladder until a stage decides it.
///
/// This is the un-traced low-level primitive; the scheduler and
/// [`crate::Session`] route through the traced variant, which brackets the
/// ladder in a `case` span.
pub fn run_case_ladder(
    harness: &Harness,
    op: FpuOp,
    case: CaseId,
    constraint_parts: &[Signal],
    ladder: &[EngineStage],
) -> CaseResult {
    let tracer = Tracer::disabled();
    run_case_traced(
        harness,
        op,
        case,
        constraint_parts,
        ladder,
        CaseCtx::standalone(&tracer, None),
    )
}

/// Ambient context of one case dispatch: where telemetry goes, which proof
/// cache (if any) to consult, and the scheduler provenance of the dispatch.
pub(crate) struct CaseCtx<'a> {
    /// Telemetry pipeline.
    pub tracer: &'a Tracer,
    /// Proof cache to consult before running engines.
    pub cache: Option<&'a ProofCache>,
    /// Span to parent the case span to.
    pub parent: Option<u64>,
    /// Time the case spent queued before dispatch.
    pub queue_latency: Duration,
    /// Whether the dispatching worker stole the case.
    pub stolen: bool,
}

impl<'a> CaseCtx<'a> {
    /// Context for a standalone (unscheduled) dispatch.
    pub(crate) fn standalone(tracer: &'a Tracer, cache: Option<&'a ProofCache>) -> CaseCtx<'a> {
        CaseCtx {
            tracer,
            cache,
            parent: None,
            queue_latency: Duration::ZERO,
            stolen: false,
        }
    }
}

/// The traced per-case driver: opens a `case` span (parented to the run
/// span via `ctx.parent`), consults the proof cache, and on a miss walks
/// the ladder with one `stage` span per attempt, storing fresh definite
/// verdicts back. The case span is annotated with verdict, deciding
/// engine, cache status and scheduler telemetry.
pub(crate) fn run_case_traced(
    harness: &Harness,
    op: FpuOp,
    case: CaseId,
    constraint_parts: &[Signal],
    ladder: &[EngineStage],
    ctx: CaseCtx<'_>,
) -> CaseResult {
    assert!(!ladder.is_empty(), "empty engine ladder for {case:?}");
    let tracer = ctx.tracer;
    let mut case_span = tracer.span_child(ctx.parent, SpanKind::Case, || format!("{case:?}"));
    let start = Instant::now();

    let fingerprint = ctx
        .cache
        .map(|_| Fingerprint::compute(harness, op, case, constraint_parts, ladder));
    if let Some(hit) = ctx
        .cache
        .zip(fingerprint.as_ref())
        .and_then(|(cache, fp)| cache.lookup(fp))
    {
        let result = CaseResult {
            case,
            op,
            engine: hit.engine,
            verdict: hit.verdict,
            counterexample: hit.counterexample,
            error: None,
            stats: hit.stats,
            attempts: hit.attempts,
            queue_latency: ctx.queue_latency,
            stolen: ctx.stolen,
            cached: true,
            duration: start.elapsed(),
        };
        if case_span.is_recording() {
            case_span.record(Counter::CacheHits, 1);
            case_span.field("verdict", result.verdict.to_json());
            case_span.field("engine", JsonValue::string(hit.engine_name));
            case_span.field("cached", JsonValue::Bool(true));
        }
        return result;
    }

    let mut attempts: Vec<CaseAttempt> = Vec::with_capacity(1);
    let mut last_error: Option<Error> = None;
    let mut decided: Option<(usize, Verdict, Option<CounterExample>, EngineStats)> = None;

    for (rung, stage) in ladder.iter().enumerate() {
        let mut stage_span = case_span.child(SpanKind::Stage, || stage.engine.name().to_string());
        let attempt_start = Instant::now();
        // A panicking engine must not take down the scheduler: fold the
        // panic into an Error verdict and let the ladder escalate past it.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            stage
                .engine
                .check(harness, op, case, constraint_parts, &stage.budget)
        }))
        .unwrap_or_else(|payload| {
            EngineOutcome::error(
                Error::EnginePanic {
                    engine: stage.engine.name(),
                    message: panic_message(payload.as_ref()),
                },
                attempt_start.elapsed(),
            )
        });

        let attempt_verdict = match &outcome.verdict {
            EngineVerdict::Holds => Verdict::Holds,
            EngineVerdict::Counterexample(_) => Verdict::Fails,
            EngineVerdict::BudgetExceeded => Verdict::BudgetExceeded,
            EngineVerdict::Error(_) => Verdict::Error,
        };
        stage_span.record_set(&outcome.stats.metrics);
        stage_span.field("verdict", attempt_verdict.to_json());
        drop(stage_span);
        attempts.push(CaseAttempt {
            engine: stage.engine.kind(),
            engine_name: stage.engine.name(),
            budget: stage.budget,
            verdict: attempt_verdict,
            stats: outcome.stats.clone(),
        });

        match outcome.verdict {
            EngineVerdict::Holds => {
                decided = Some((rung, Verdict::Holds, None, outcome.stats));
                break;
            }
            EngineVerdict::Counterexample(assignment) => {
                let cex = {
                    let _span = case_span.child(SpanKind::Op, || "replay".into());
                    decode_cex(harness, assignment)
                };
                decided = Some((rung, Verdict::Fails, Some(cex), outcome.stats));
                break;
            }
            EngineVerdict::BudgetExceeded => continue,
            EngineVerdict::Error(cause) => {
                last_error = Some(cause);
                continue;
            }
        }
    }

    let mut result = match decided {
        Some((rung, verdict, cex, stats)) => finish(
            case,
            op,
            &ladder[rung],
            verdict,
            cex,
            None,
            stats,
            attempts,
            start,
        ),
        None => {
            // The whole ladder ran out without a definite verdict.
            let last = attempts.last().expect("at least one attempt");
            let verdict = if last.verdict == Verdict::Error {
                Verdict::Error
            } else {
                Verdict::BudgetExceeded
            };
            let (engine, stats) = (last.engine, last.stats.clone());
            CaseResult {
                case,
                op,
                engine,
                verdict,
                counterexample: None,
                error: last_error,
                stats,
                attempts,
                queue_latency: Duration::ZERO,
                stolen: false,
                cached: false,
                duration: start.elapsed(),
            }
        }
    };
    result.queue_latency = ctx.queue_latency;
    result.stolen = ctx.stolen;

    // Memoize fresh definite verdicts (no-op unless the cache is
    // read-write). Indefinite outcomes say nothing reusable about the case.
    if let (Some(cache), Some(fp)) = (ctx.cache, &fingerprint) {
        if matches!(result.verdict, Verdict::Holds | Verdict::Fails) {
            cache.store(
                fp,
                CachedCase {
                    verdict: result.verdict,
                    engine: result.engine,
                    engine_name: result
                        .attempts
                        .last()
                        .map(|a| a.engine_name)
                        .unwrap_or("cached"),
                    counterexample: result.counterexample.clone(),
                    stats: result.stats.clone(),
                    attempts: result.attempts.clone(),
                    duration: result.duration,
                },
            );
        }
    }

    if case_span.is_recording() {
        for attempt in &result.attempts {
            case_span.record_set(&attempt.stats.metrics);
        }
        case_span.record(Counter::SchedEscalations, result.escalations() as u64);
        case_span.record(
            Counter::SchedQueueLatencyMicros,
            ctx.queue_latency.as_micros() as u64,
        );
        if ctx.stolen {
            case_span.record(Counter::SchedSteals, 1);
        }
        case_span.field("verdict", result.verdict.to_json());
        if let Some(last) = result.attempts.last() {
            case_span.field("engine", JsonValue::string(last.engine_name));
        }
        case_span.field("attempts", JsonValue::int(result.attempts.len() as u64));
        if let Some(error) = &result.error {
            case_span.field("error", JsonValue::string(error.to_string()));
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn finish(
    case: CaseId,
    op: FpuOp,
    stage: &EngineStage,
    verdict: Verdict,
    counterexample: Option<CounterExample>,
    error: Option<Error>,
    stats: EngineStats,
    attempts: Vec<CaseAttempt>,
    start: Instant,
) -> CaseResult {
    CaseResult {
        case,
        op,
        engine: stage.engine.kind(),
        verdict,
        counterexample,
        error,
        stats,
        attempts,
        queue_latency: Duration::ZERO,
        stolen: false,
        cached: false,
        duration: start.elapsed(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Decodes a raw name→bit counterexample into operand words, and replays it
/// against the netlist to confirm the miter really fires. The replay result
/// is surfaced as [`CounterExample::replay_confirmed`] — an unconfirmed
/// counterexample indicates an engine bug, not a design bug.
fn decode_cex(harness: &Harness, assignment: HashMap<String, bool>) -> CounterExample {
    let get_word = |prefix: &str, width: usize| -> u128 {
        (0..width)
            .map(|i| {
                // Unrolled harnesses hold their inputs at cycle 0, so the
                // assignment keys carry an `@0` suffix.
                let bit = assignment
                    .get(&format!("{prefix}[{i}]"))
                    .or_else(|| assignment.get(&format!("{prefix}[{i}]@0")))
                    .copied()
                    .unwrap_or(false);
                u128::from(bit) << i
            })
            .sum()
    };
    let w = harness.cfg.format.width() as usize;
    let replay_confirmed = replay(&harness.netlist, harness.miter, &assignment);
    CounterExample {
        a: get_word("a", w),
        b: get_word("b", w),
        c: get_word("c", w),
        op: get_word("op", 3) as u32,
        rm: get_word("rm", 2) as u32,
        assignment,
        replay_confirmed,
    }
}

impl CounterExample {
    /// Renders the counterexample as a VCD waveform of every output and
    /// probe of `netlist` (inputs held for `cycles` cycles — use the
    /// pipeline latency + 1 for sequential implementations).
    pub fn to_vcd(&self, netlist: &Netlist, cycles: usize) -> String {
        let assignment: Vec<(String, bool)> = self
            .assignment
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        fmaverify_netlist::dump_counterexample(netlist, &assignment, cycles)
    }
}

/// Replays a counterexample on a netlist, returning the miter value.
pub fn replay(netlist: &Netlist, miter: Signal, assignment: &HashMap<String, bool>) -> bool {
    let mut sim = BitSim::new(netlist);
    for (name, value) in assignment {
        if let Some(sig) = netlist.find_input(name) {
            sim.set(sig, *value);
        }
    }
    sim.eval();
    sim.get(miter)
}
