//! Static BDD variable orders (paper Section 5).
//!
//! "The superior orders are intuitively derivable: the operand exponents
//! come first, followed by the fractions intertwined with the pseudo-inputs
//! S' and T' for the multiplier override; the fractions and S' and T' are
//! aligned according to the δ of each individual run." This module derives
//! exactly those orders from the harness, parameterized by the case's δ.

use fmaverify_netlist::Signal;

use crate::harness::Harness;

/// The paper's static variable order for a given case δ (`None` for far-out
/// or δ-independent runs).
pub fn paper_order(harness: &Harness, delta: Option<i64>) -> Vec<Signal> {
    let cfg = &harness.cfg;
    let f = cfg.format.frac_bits() as usize;
    let eb = cfg.format.exp_bits() as usize;
    let mut order = Vec::new();

    let a = &harness.inputs.a;
    let b = &harness.inputs.b;
    let c = &harness.inputs.c;

    // Exponents first, interleaved MSB-down.
    for k in (0..eb).rev() {
        order.push(a.bit(f + k));
        order.push(b.bit(f + k));
        order.push(c.bit(f + k));
    }
    // Control: signs, opcode, rounding mode.
    order.push(a.bit(f + eb));
    order.push(b.bit(f + eb));
    order.push(c.bit(f + eb));
    order.extend(harness.inputs.op.bits().iter().copied());
    order.extend(harness.inputs.rm.bits().iter().copied());

    // Fractions and S'/T', aligned by δ: the addend fraction bit that lands
    // at product position k is c[k - f + δ].
    let d = delta.unwrap_or(0);
    match &harness.st {
        Some((s, t)) => {
            let wwin = cfg.window_bits();
            // a/b fractions only feed the classification predicates when the
            // multiplier is overridden; keep them right after the control
            // block, interleaved.
            for k in (0..f).rev() {
                order.push(a.bit(k));
                order.push(b.bit(k));
            }
            // S'/T' interleaved MSB-down with the aligned addend fraction.
            for k in (0..wwin).rev() {
                order.push(s.bit(k));
                order.push(t.bit(k));
                // S index k corresponds to addend fraction bit k - f + δ
                // (including the implicit bit position f, which is not an
                // input; input fraction bits are 0..f).
                let j = k as i64 - f as i64 + d;
                if (0..f as i64).contains(&j) {
                    order.push(c.bit(j as usize));
                }
            }
            // Any addend bits not placed (far-out δ) go at the bottom.
            for k in (0..f).rev() {
                order.push(c.bit(k));
            }
        }
        None => {
            // Real-multiplier runs (e.g. the add instruction): interleave
            // all three fractions, with c offset by δ.
            for k in (0..(2 * f + 2)).rev() {
                let ka = k as i64 - (f as i64);
                if (0..f as i64).contains(&ka) {
                    order.push(a.bit(ka as usize));
                    order.push(b.bit(ka as usize));
                }
                let j = k as i64 - f as i64 + d;
                if (0..f as i64).contains(&j) {
                    order.push(c.bit(j as usize));
                }
            }
            for k in (0..f).rev() {
                order.push(a.bit(k));
                order.push(b.bit(k));
                order.push(c.bit(k));
            }
        }
    }
    // Deduplicate, keeping first occurrences.
    let mut seen = std::collections::HashSet::new();
    order.retain(|s| seen.insert(*s));
    order
}

/// A deliberately naive order: all inputs in creation order (operands
/// low-bit-first, S'/T' last). The ordering ablation contrasts this with
/// [`paper_order`].
pub fn naive_order(harness: &Harness) -> Vec<Signal> {
    let mut order: Vec<Signal> = Vec::new();
    for &id in harness.netlist.inputs() {
        order.push(harness.netlist.signal(id));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{build_harness, HarnessOptions};
    use fmaverify_fpu::{DenormalMode, FpuConfig};
    use fmaverify_softfloat::FpFormat;

    #[test]
    fn order_covers_all_inputs_exactly_once() {
        let cfg = FpuConfig {
            format: FpFormat::MICRO,
            denormals: DenormalMode::FlushToZero,
        };
        for isolate in [true, false] {
            let h = build_harness(
                &cfg,
                HarnessOptions {
                    isolate_multiplier: isolate,
                    ..HarnessOptions::default()
                },
            );
            for delta in [None, Some(-2), Some(0), Some(5)] {
                let order = paper_order(&h, delta);
                let mut sorted: Vec<Signal> = order.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), order.len(), "duplicates in order");
                // Every operand input is present; st inputs too when isolated.
                let expected: usize = h.netlist.inputs().len();
                assert_eq!(order.len(), expected, "delta {delta:?} isolate {isolate}");
            }
        }
    }

    #[test]
    fn exponents_lead_the_order() {
        let cfg = FpuConfig {
            format: FpFormat::MICRO,
            denormals: DenormalMode::FlushToZero,
        };
        let h = build_harness(&cfg, HarnessOptions::default());
        let order = paper_order(&h, Some(0));
        let f = cfg.format.frac_bits() as usize;
        let eb = cfg.format.exp_bits() as usize;
        // The first 3*eb entries are exponent bits.
        for sig in order.iter().take(3 * eb) {
            let found = [&h.inputs.a, &h.inputs.b, &h.inputs.c]
                .iter()
                .any(|w| (f..f + eb).any(|k| w.bit(k) == *sig));
            assert!(found, "expected exponent bit at the top of the order");
        }
    }
}
