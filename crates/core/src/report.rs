//! Table-1-style aggregation and rendering of verification results.
//!
//! The paper's Table 1 reports, per instruction and case class, the average
//! and peak BDD node counts and run times. This module computes the same
//! rows from [`CaseResult`]s and renders them as a text table.

use std::fmt::Write as _;
use std::time::Duration;

use fmaverify_fpu::FpuOp;

use crate::cases::CaseClass;
use crate::engine::EngineKind;
use crate::runner::{CaseResult, InstructionReport};

/// One row of the Table-1 reproduction.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Instruction.
    pub op: FpuOp,
    /// Case class.
    pub class: CaseClass,
    /// Number of cases aggregated.
    pub cases: usize,
    /// Average peak BDD nodes (None for SAT rows — "n/a").
    pub nodes_avg: Option<f64>,
    /// Maximum peak BDD nodes.
    pub nodes_max: Option<usize>,
    /// Average per-case time.
    pub time_avg: Duration,
    /// Maximum per-case time.
    pub time_max: Duration,
    /// Accumulated time over all cases of the row.
    pub time_total: Duration,
}

/// Builds the Table-1 rows for a set of instruction reports.
pub fn table1_rows(reports: &[InstructionReport]) -> Vec<TableRow> {
    let mut rows = Vec::new();
    for report in reports {
        for class in [
            CaseClass::OverlapWithCancellation,
            CaseClass::OverlapNoCancellation,
            CaseClass::FarOut,
            CaseClass::Monolithic,
        ] {
            let results: Vec<&CaseResult> = report.class_results(class);
            if results.is_empty() {
                continue;
            }
            rows.push(aggregate_row(report.op, class, &results));
        }
    }
    rows
}

fn aggregate_row(op: FpuOp, class: CaseClass, results: &[&CaseResult]) -> TableRow {
    let bdd: Vec<usize> = results
        .iter()
        .filter_map(|r| r.stats.peak_bdd_nodes)
        .collect();
    let (nodes_avg, nodes_max) = if bdd.is_empty() {
        (None, None)
    } else {
        (
            Some(bdd.iter().sum::<usize>() as f64 / bdd.len() as f64),
            Some(*bdd.iter().max().expect("non-empty")),
        )
    };
    let times: Vec<Duration> = results.iter().map(|r| r.duration).collect();
    let total: Duration = times.iter().sum();
    TableRow {
        op,
        class,
        cases: results.len(),
        nodes_avg,
        nodes_max,
        time_avg: total / times.len() as u32,
        time_max: *times.iter().max().expect("non-empty"),
        time_total: total,
    }
}

fn class_name(class: CaseClass) -> &'static str {
    match class {
        CaseClass::OverlapWithCancellation => "overlap w/ cancellation",
        CaseClass::OverlapNoCancellation => "overlap w/o cancellation",
        CaseClass::FarOut => "far-out",
        CaseClass::Monolithic => "n/a (single SAT run)",
    }
}

fn op_name(op: FpuOp) -> &'static str {
    match op {
        FpuOp::Fma => "FMA",
        FpuOp::Fms => "FMS",
        FpuOp::Add => "add",
        FpuOp::Mul => "mult",
        FpuOp::Fnma => "FNMA",
        FpuOp::Fnms => "FNMS",
    }
}

/// Renders rows in the layout of the paper's Table 1 (nodes in units of
/// 10^3 here — our formats are smaller than the paper's testbed).
pub fn render_table1(rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<26} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "Instr.", "Case", "cases", "nodes avg", "nodes max", "t avg", "t max"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    for r in rows {
        let nodes_avg = r
            .nodes_avg
            .map(|v| format!("{:.1}", v))
            .unwrap_or_else(|| "n/a".to_string());
        let nodes_max = r
            .nodes_max
            .map(|v| v.to_string())
            .unwrap_or_else(|| "n/a".to_string());
        let _ = writeln!(
            out,
            "{:<6} {:<26} {:>6} {:>12} {:>12} {:>9.1?} {:>9.1?}",
            op_name(r.op),
            class_name(r.class),
            r.cases,
            nodes_avg,
            nodes_max,
            r.time_avg,
            r.time_max,
        );
    }
    out
}

/// Renders a one-line summary of an instruction report (accumulated time,
/// engine split, escalations, pass/fail).
pub fn summarize(report: &InstructionReport) -> String {
    let bdd = report
        .results
        .iter()
        .filter(|r| matches!(r.engine, EngineKind::Bdd | EngineKind::BddSequential))
        .count();
    let sat = report.results.len() - bdd;
    let escalated = report.escalated_cases();
    let escalation_note = if escalated > 0 {
        format!(", {escalated} escalated")
    } else {
        String::new()
    };
    let cached = report.results.iter().filter(|r| r.cached).count();
    let cache_note = if cached > 0 {
        format!(", {cached} cached")
    } else {
        String::new()
    };
    format!(
        "{}: {} cases ({} BDD, {} SAT{}{}), accumulated {:?}, wall {:?}, {}",
        op_name(report.op),
        report.results.len(),
        bdd,
        sat,
        escalation_note,
        cache_note,
        report.accumulated,
        report.wall,
        if report.all_hold() {
            "ALL HOLD"
        } else {
            "FAILURES"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::CaseId;

    fn fake_result(case: CaseId, nodes: Option<usize>, ms: u64) -> CaseResult {
        use crate::engine::EngineStats;
        use crate::runner::Verdict;
        CaseResult {
            case,
            op: FpuOp::Fma,
            engine: if nodes.is_some() {
                EngineKind::Bdd
            } else {
                EngineKind::Sat
            },
            verdict: Verdict::Holds,
            counterexample: None,
            error: None,
            stats: EngineStats {
                peak_bdd_nodes: nodes,
                sat_conflicts: nodes.is_none().then_some(10),
                ..EngineStats::default()
            },
            attempts: Vec::new(),
            queue_latency: Duration::ZERO,
            stolen: false,
            cached: false,
            duration: Duration::from_millis(ms),
        }
    }

    #[test]
    fn aggregation() {
        let report = InstructionReport {
            op: FpuOp::Fma,
            results: vec![
                fake_result(CaseId::OverlapNoCancel { delta: 0 }, Some(100), 10),
                fake_result(CaseId::OverlapNoCancel { delta: 1 }, Some(300), 30),
                fake_result(CaseId::FarOut, None, 50),
            ],
            wall: Duration::from_millis(60),
            accumulated: Duration::from_millis(90),
        };
        let rows = table1_rows(std::slice::from_ref(&report));
        assert_eq!(rows.len(), 2);
        let ov = rows
            .iter()
            .find(|r| r.class == CaseClass::OverlapNoCancellation)
            .expect("overlap row");
        assert_eq!(ov.cases, 2);
        assert_eq!(ov.nodes_avg, Some(200.0));
        assert_eq!(ov.nodes_max, Some(300));
        assert_eq!(ov.time_max, Duration::from_millis(30));
        let fo = rows
            .iter()
            .find(|r| r.class == CaseClass::FarOut)
            .expect("farout row");
        assert_eq!(fo.nodes_avg, None);
        let text = render_table1(&rows);
        assert!(text.contains("FMA"));
        assert!(text.contains("n/a"));
        assert!(summarize(&report).contains("ALL HOLD"));
    }
}
