//! Mutation-coverage campaigns: verify the verifier.
//!
//! The paper's headline evidence that the flow works is that it "found
//! dozens of high-quality bugs" in the industrial FMA FPU. This module
//! turns that claim into a measurable regression metric: it enumerates
//! single-gate mutants over the implementation FPU's *sequential* cone of
//! influence (so faults behind pipeline registers are reachable), runs
//! every mutant through the existing case-split verification on the
//! work-stealing scheduler, and classifies each one:
//!
//! * **killed** — some case produced a replay-confirmed counterexample;
//!   the killing case is recorded, giving the per-`MutationKind` ×
//!   case-class kill matrix;
//! * **survived** — every case held. Because each selected mutant carries a
//!   simulation witness proving it changes the architected function, a
//!   survivor is a genuine alarm: a coverage hole in the case split or a
//!   checker bug;
//! * **budget-exceeded** — some case was left undecided by the engine
//!   budgets (never reported as killed or survived).
//!
//! Candidate faults with no witness after the random-simulation screen are
//! skipped and counted ([`CampaignReport::screened_out`]): simulation
//! cannot tell a functionally equivalent mutant from one it merely failed
//! to excite, and either way its survival would carry no signal.
//!
//! The campaign shares one proof cache across the clean baseline and all
//! mutants ([`crate::RunConfig::cache_mode`]): a case whose cone-of-influence
//! fingerprint the fault did not change replays the clean design's verdict,
//! so each mutant only pays for the cases the fault can actually affect —
//! and a warm rerun of the same seed replays everything.
//!
//! The harness is built *without* multiplier isolation: the `S'`,`T'`
//! pseudo-inputs are only sound under the multiplier constraint, which
//! random vectors essentially never satisfy, and the mutant space should
//! cover the real multiplier anyway.

use std::time::{Duration, Instant};

use fmaverify_fpu::{FpuConfig, FpuOp, PipelineMode};
use fmaverify_netlist::{unroll, BitSim, InputMode, Netlist, Node, NodeId, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cases::{enumerate_cases, CaseClass, CaseId};
use crate::config::RunConfig;
use crate::harness::{build_harness, Harness, HarnessOptions};
use crate::json::{JsonValue, ToJson};
use crate::mutate::{inject_fault, Mutation, MutationKind};
use crate::runner::{CancellationToken, RunOptions, Verdict};
use crate::session::Session;
use crate::trace::{Counter, SpanKind};

/// Random vectors tried per candidate fault by the observability screen.
const SCREEN_VECTORS: usize = 256;

/// The fate of one verified mutant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutantStatus {
    /// A case produced a counterexample; `replay_confirmed` echoes the
    /// bit-level replay of that counterexample on the mutant netlist.
    Killed {
        /// The case whose counterexample killed the mutant.
        case: CaseId,
        /// Whether the counterexample replayed to `miter = 1`.
        replay_confirmed: bool,
    },
    /// Every case held even though the mutant provably changes the
    /// function: a coverage hole or a checker bug.
    Survived,
    /// At least one case exhausted its engine budgets undecided.
    BudgetExceeded,
}

/// One mutant's verification record.
#[derive(Clone, Debug)]
pub struct MutantOutcome {
    /// The injected fault.
    pub mutation: Mutation,
    /// Killed, survived, or budget-exceeded.
    pub status: MutantStatus,
    /// Cases decided before the run stopped (kills cancel the remainder).
    pub cases_run: usize,
    /// Cases replayed from the proof cache instead of re-proved.
    pub cached_cases: usize,
    /// Wall time spent verifying this mutant.
    pub wall: Duration,
}

/// The full campaign record.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The instruction under campaign.
    pub op: FpuOp,
    /// AND gates exclusive to the implementation's sequential cone.
    pub candidate_gates: usize,
    /// `candidate_gates ×` [`MutationKind::ALL`]`.len()`.
    pub mutant_space: usize,
    /// Sampled faults skipped for lack of a simulation witness.
    pub screened_out: usize,
    /// Cases proved on the clean baseline (which also seeds the cache).
    pub clean_cases: usize,
    /// Clean-baseline cases that were already cached.
    pub clean_cached: usize,
    /// Per-mutant outcomes, in verification order.
    pub outcomes: Vec<MutantOutcome>,
    /// Total campaign wall time.
    pub wall: Duration,
}

impl CampaignReport {
    /// Mutants killed by a counterexample.
    pub fn killed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, MutantStatus::Killed { .. }))
            .count()
    }

    /// Mutants that survived every case (alarms).
    pub fn survived(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == MutantStatus::Survived)
            .count()
    }

    /// Mutants left undecided by engine budgets.
    pub fn budget_exceeded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == MutantStatus::BudgetExceeded)
            .count()
    }

    /// Killed / verified (1.0 when no mutants ran).
    pub fn kill_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.killed() as f64 / self.outcomes.len() as f64
        }
    }

    /// How many of the five [`MutationKind`]s have at least one kill.
    pub fn kinds_with_kills(&self) -> usize {
        MutationKind::ALL
            .iter()
            .filter(|&&k| {
                self.outcomes.iter().any(|o| {
                    o.mutation.kind == k && matches!(o.status, MutantStatus::Killed { .. })
                })
            })
            .count()
    }

    /// Cases replayed from the proof cache across the baseline and all
    /// mutants.
    pub fn cases_replayed(&self) -> usize {
        self.clean_cached + self.outcomes.iter().map(|o| o.cached_cases).sum::<usize>()
    }

    /// The kill matrix: `matrix[kind][class]` counts mutants of
    /// [`MutationKind::ALL`]`[kind]` killed by a case of
    /// [`CaseClass::ALL`]`[class]`.
    pub fn kill_matrix(&self) -> [[usize; CaseClass::ALL.len()]; MutationKind::ALL.len()] {
        let mut matrix = [[0usize; CaseClass::ALL.len()]; MutationKind::ALL.len()];
        for o in &self.outcomes {
            if let MutantStatus::Killed { case, .. } = &o.status {
                let row = MutationKind::ALL
                    .iter()
                    .position(|&k| k == o.mutation.kind)
                    .expect("kind in ALL");
                let col = CaseClass::ALL
                    .iter()
                    .position(|&c| c == case.class())
                    .expect("class in ALL");
                matrix[row][col] += 1;
            }
        }
        matrix
    }
}

impl ToJson for MutantOutcome {
    fn to_json(&self) -> JsonValue {
        let (status, killing_case, killing_class, replay) = match &self.status {
            MutantStatus::Killed {
                case,
                replay_confirmed,
            } => (
                "killed",
                JsonValue::string(case.label()),
                JsonValue::string(case.class().label()),
                JsonValue::Bool(*replay_confirmed),
            ),
            MutantStatus::Survived => (
                "survived",
                JsonValue::Null,
                JsonValue::Null,
                JsonValue::Null,
            ),
            MutantStatus::BudgetExceeded => (
                "budget_exceeded",
                JsonValue::Null,
                JsonValue::Null,
                JsonValue::Null,
            ),
        };
        JsonValue::object(vec![
            ("node", JsonValue::int(self.mutation.node.index())),
            ("kind", JsonValue::string(self.mutation.kind.label())),
            ("status", JsonValue::string(status)),
            ("killing_case", killing_case),
            ("killing_class", killing_class),
            ("replay_confirmed", replay),
            ("cases_run", JsonValue::int(self.cases_run)),
            ("cached_cases", JsonValue::int(self.cached_cases)),
            ("wall_seconds", JsonValue::Number(self.wall.as_secs_f64())),
        ])
    }
}

impl ToJson for CampaignReport {
    fn to_json(&self) -> JsonValue {
        let matrix = self.kill_matrix();
        let kill_matrix = JsonValue::Object(
            MutationKind::ALL
                .iter()
                .enumerate()
                .map(|(row, kind)| {
                    (
                        kind.label().to_string(),
                        JsonValue::Object(
                            CaseClass::ALL
                                .iter()
                                .enumerate()
                                .map(|(col, class)| {
                                    (class.label().to_string(), JsonValue::int(matrix[row][col]))
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        JsonValue::object(vec![
            ("op", JsonValue::string(format!("{:?}", self.op))),
            ("candidate_gates", JsonValue::int(self.candidate_gates)),
            ("mutant_space", JsonValue::int(self.mutant_space)),
            ("screened_out", JsonValue::int(self.screened_out)),
            (
                "totals",
                JsonValue::object(vec![
                    ("mutants", JsonValue::int(self.outcomes.len())),
                    ("killed", JsonValue::int(self.killed())),
                    ("survived", JsonValue::int(self.survived())),
                    ("budget_exceeded", JsonValue::int(self.budget_exceeded())),
                    ("kill_rate", JsonValue::Number(self.kill_rate())),
                    ("kinds_with_kills", JsonValue::int(self.kinds_with_kills())),
                ]),
            ),
            ("kill_matrix", kill_matrix),
            (
                "clean",
                JsonValue::object(vec![
                    ("cases", JsonValue::int(self.clean_cases)),
                    ("cached", JsonValue::int(self.clean_cached)),
                ]),
            ),
            ("cases_replayed", JsonValue::int(self.cases_replayed())),
            ("mutants", self.outcomes.to_json()),
            ("wall_seconds", JsonValue::Number(self.wall.as_secs_f64())),
        ])
    }
}

/// The per-case verification view of one (possibly mutated) netlist:
/// pipelined harnesses are unrolled to their latency, combinational ones
/// pass through, and the miter/constraint signals are re-located by name.
struct View {
    harness: Harness,
    constraints: Vec<(CaseId, Vec<Signal>)>,
}

fn make_view(
    base: &Harness,
    netlist: Netlist,
    probe_names: &[(CaseId, Vec<String>)],
    pipeline: PipelineMode,
) -> View {
    let (netlist, miter, suffix) = if pipeline == PipelineMode::Combinational {
        let miter = netlist.find_output("miter").expect("miter output");
        (netlist, miter, String::new())
    } else {
        let latency = pipeline.latency();
        let unrolled = unroll(&netlist, latency + 1, InputMode::HoldFirst);
        let miter = unrolled
            .netlist
            .find_output(&format!("miter@{latency}"))
            .expect("unrolled miter output");
        (unrolled.netlist, miter, "@0".to_string())
    };
    let constraints = probe_names
        .iter()
        .map(|(case, names)| {
            let parts = names
                .iter()
                .map(|n| {
                    netlist
                        .find_probe(&format!("{n}{suffix}"))
                        .expect("constraint probe")
                })
                .collect();
            (*case, parts)
        })
        .collect();
    let harness = base.rebind(netlist, miter);
    View {
        harness,
        constraints,
    }
}

/// True if random simulation finds an input (with the opcode pinned to
/// `op`) on which the view's miter fires — a witness that the mutant
/// changes the architected function of this instruction.
fn has_witness(view: &View, op: FpuOp, rng: &mut StdRng) -> bool {
    let netlist = &view.harness.netlist;
    // Pin the opcode; every other input is driven randomly. Unrolled
    // netlists hold their inputs at cycle 0 under `name@0`.
    let op_bits: Vec<(String, bool)> = (0..3)
        .flat_map(|i| {
            let v = op.encode() >> i & 1 == 1;
            [(format!("op[{i}]"), v), (format!("op[{i}]@0"), v)]
        })
        .collect();
    let mut sim = BitSim::new(netlist);
    for _ in 0..SCREEN_VECTORS {
        for &id in netlist.inputs() {
            let Node::Input { name } = netlist.node(id) else {
                unreachable!("inputs() returned a non-input node");
            };
            let value = match op_bits.iter().find(|(n, _)| n == name) {
                Some(&(_, v)) => v,
                None => rng.gen::<bool>(),
            };
            sim.set(netlist.signal(id), value);
        }
        sim.eval();
        if sim.get(view.harness.miter) {
            return true;
        }
    }
    false
}

/// Runs a mutation-coverage campaign for `op`.
///
/// The harness is built from [`RunConfig::harness`] with multiplier
/// isolation forced off (see the module docs); [`RunConfig::mutants`] caps
/// the number of verified mutants (`None` = exhaustive) and
/// [`RunConfig::mutation_seed`] drives both the sample and the
/// observability screen. Kills stop a mutant's remaining cases early
/// regardless of [`RunConfig::stop_on_failure`].
///
/// # Panics
/// Panics if the clean baseline does not verify (a campaign against a
/// broken design measures nothing), or if the implementation cone contains
/// no candidate gates.
pub fn run_campaign(cfg: &FpuConfig, op: FpuOp, run: &RunConfig) -> CampaignReport {
    let start = Instant::now();
    let pipeline = run.harness.pipeline;
    let mut base = build_harness(
        cfg,
        HarnessOptions {
            isolate_multiplier: false,
            ..run.harness.clone()
        },
    );

    // Materialize every case constraint as named probes: fault injection
    // and unrolling preserve names, not node ids.
    let cases = enumerate_cases(cfg, op);
    let mut probe_names: Vec<(CaseId, Vec<String>)> = Vec::new();
    for &case in &cases {
        let parts = base.case_constraint_parts(op, case);
        let names: Vec<String> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let name = format!("campaign.{op:?}.{}#{i}", case.label());
                base.netlist.probe(&name, *p);
                name
            })
            .collect();
        probe_names.push((case, names));
    }

    // Candidate faults: AND gates in the implementation's *sequential*
    // cone (through pipeline registers) that feed neither the reference
    // FPU nor the constraint logic — mutating those would corrupt the
    // specification, not the design under test.
    let gather = |w: &fmaverify_netlist::Word, f: &fmaverify_netlist::Word| -> Vec<Signal> {
        w.bits().iter().chain(f.bits()).copied().collect()
    };
    let impl_roots = gather(&base.impl_fpu.outputs.result, &base.impl_fpu.outputs.flags);
    let ref_roots = gather(&base.ref_fpu.outputs.result, &base.ref_fpu.outputs.flags);
    let part_roots: Vec<Signal> = probe_names
        .iter()
        .flat_map(|(_, names)| names.iter())
        .map(|n| base.netlist.find_probe(n).expect("probe"))
        .collect();
    let in_impl = base.netlist.seq_cone(&impl_roots);
    let in_ref = base.netlist.seq_cone(&ref_roots);
    let in_parts = base.netlist.seq_cone(&part_roots);
    let targets: Vec<NodeId> = base
        .netlist
        .node_ids()
        .filter(|id| {
            in_impl[id.index()]
                && !in_ref[id.index()]
                && !in_parts[id.index()]
                && matches!(base.netlist.node(*id), Node::And(..))
        })
        .collect();
    assert!(
        !targets.is_empty(),
        "implementation cone contains no candidate gates"
    );
    let kinds = MutationKind::ALL;
    let mutant_space = targets.len() * kinds.len();

    // One option set (and thus one shared proof cache) for the whole
    // campaign; each mutant gets a fresh cancellation token because a kill
    // trips the token permanently.
    let mut options = run.to_run_options();
    options.stop_on_failure = true;
    let session_for = |options: &RunOptions| {
        Session::new(cfg).options(RunOptions {
            cancel: CancellationToken::new(),
            ..options.clone()
        })
    };

    let mut span = run
        .tracer
        .span(SpanKind::Run, || format!("campaign.{op:?}"));

    // Clean baseline: the design must verify, and the shared cache is
    // seeded so mutants only re-prove cases their fault can reach.
    let clean_view = make_view(&base, base.netlist.clone(), &probe_names, pipeline);
    let clean =
        session_for(&options).run_prepared(&clean_view.harness, op, &clean_view.constraints);
    assert!(
        clean.iter().all(|r| r.verdict == Verdict::Holds),
        "clean design failed verification; a campaign against a broken design measures nothing"
    );
    let clean_cases = clean.len();
    let clean_cached = clean.iter().filter(|r| r.cached).count();

    // Sample without replacement from the (gate × kind) product space.
    let mut rng = StdRng::seed_from_u64(run.mutation_seed);
    let mut pool: Vec<usize> = (0..mutant_space).collect();
    let want = run.mutants.unwrap_or(mutant_space).min(mutant_space);
    let exhaustive = want == mutant_space;

    let mut outcomes = Vec::new();
    let mut screened_out = 0usize;
    while outcomes.len() < want && !pool.is_empty() {
        let pick = if exhaustive {
            // Exhaustive campaigns walk the space in a stable order.
            pool.remove(0)
        } else {
            let i = rng.gen_range(0..pool.len());
            pool.swap_remove(i)
        };
        let mutation = Mutation {
            node: targets[pick / kinds.len()],
            kind: kinds[pick % kinds.len()],
        };
        let mutated = inject_fault(&base.netlist, mutation.node, mutation.kind);
        let view = make_view(&base, mutated, &probe_names, pipeline);
        if !has_witness(&view, op, &mut rng) {
            screened_out += 1;
            continue;
        }

        let mutant_start = Instant::now();
        let results = session_for(&options).run_prepared(&view.harness, op, &view.constraints);
        let status = if let Some(fail) = results.iter().find(|r| r.verdict == Verdict::Fails) {
            MutantStatus::Killed {
                case: fail.case,
                replay_confirmed: fail
                    .counterexample
                    .as_ref()
                    .is_some_and(|c| c.replay_confirmed),
            }
        } else if results
            .iter()
            .any(|r| matches!(r.verdict, Verdict::BudgetExceeded | Verdict::Error))
        {
            MutantStatus::BudgetExceeded
        } else {
            MutantStatus::Survived
        };
        outcomes.push(MutantOutcome {
            mutation,
            status,
            cases_run: results
                .iter()
                .filter(|r| r.verdict != Verdict::Canceled)
                .count(),
            cached_cases: results.iter().filter(|r| r.cached).count(),
            wall: mutant_start.elapsed(),
        });
    }

    let report = CampaignReport {
        op,
        candidate_gates: targets.len(),
        mutant_space,
        screened_out,
        clean_cases,
        clean_cached,
        outcomes,
        wall: start.elapsed(),
    };

    let handle = run.tracer.handle();
    handle.add(Counter::CampaignMutants, report.outcomes.len() as u64);
    handle.add(Counter::CampaignKilled, report.killed() as u64);
    handle.add(Counter::CampaignSurvived, report.survived() as u64);
    handle.add(
        Counter::CampaignBudgetExceeded,
        report.budget_exceeded() as u64,
    );
    handle.add(Counter::CampaignSkippedUnobserved, screened_out as u64);
    span.record(Counter::CampaignMutants, report.outcomes.len() as u64);
    span.record(Counter::CampaignKilled, report.killed() as u64);
    span.field("op", JsonValue::string(format!("{op:?}")));

    report
}
