//! The unified case-engine abstraction.
//!
//! The paper discharges each case of the split with whichever automatic
//! engine fits it — BDD symbolic simulation for the overlap cases, SAT for
//! the far-out cases and the multiplier — and reports per-case resources.
//! This module gives every engine one face: [`CaseEngine::check`] takes a
//! harness, a case, its constraint and a [`EngineBudget`], and returns an
//! [`EngineOutcome`] whose [`EngineVerdict`] distinguishes *holds*,
//! *counterexample*, *budget exceeded* and *engine error*, with uniform
//! [`EngineStats`] (peak BDD nodes, SAT conflicts, cone size, wall time).
//!
//! The scheduler in [`crate::runner`] never names a concrete engine: it
//! walks an escalation ladder of `(engine, budget)` stages (see
//! [`crate::runner::SchedulePolicy`]) until one stage produces a definite
//! verdict.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use fmaverify_fpu::FpuOp;
use fmaverify_netlist::Signal;

use crate::cases::CaseId;
use crate::engine_bdd::{check_miter_bdd_parts, BddEngineOptions, Minimize};
use crate::engine_bdd_seq::check_miter_bdd_sequential;
use crate::engine_sat::{check_miter_sat_parts, SatEngineOptions};
use crate::error::Error;
use crate::harness::Harness;
use crate::order::paper_order;
use crate::trace::{Counter, MetricSet};

/// Which kind of engine produced a result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Combinational BDD symbolic simulation.
    Bdd,
    /// Cycle-accurate BDD symbolic simulation of a sequential harness.
    BddSequential,
    /// Structural SAT on the (optionally swept) cone.
    Sat,
}

/// Resource limits for one engine attempt. `Default` is unlimited.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineBudget {
    /// Abort a BDD run whose arena exceeds this many live nodes.
    pub node_limit: Option<usize>,
    /// Abort a SAT run after this many conflicts.
    pub conflict_limit: Option<u64>,
}

impl EngineBudget {
    /// No limits: the engine runs to completion.
    pub const UNLIMITED: EngineBudget = EngineBudget {
        node_limit: None,
        conflict_limit: None,
    };
}

/// Uniform per-attempt resource statistics, regardless of engine kind.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Peak allocated BDD nodes (BDD engines only).
    pub peak_bdd_nodes: Option<usize>,
    /// Nodes in the care-set BDD (BDD engines only).
    pub care_nodes: Option<usize>,
    /// Solver conflicts (SAT engine only).
    pub sat_conflicts: Option<u64>,
    /// AND gates in the analyzed cone of influence (SAT engine only;
    /// post-sweep when sweeping is enabled).
    pub coi_ands: Option<usize>,
    /// Wall-clock time of the attempt.
    pub wall: Duration,
    /// Fine-grained operation counters (cache hits, propagations, sweep
    /// merges, …) for the telemetry layer; always collected — the engines
    /// count into their own stats structs and this is a cheap translation.
    pub metrics: MetricSet,
}

/// What one engine attempt concluded.
#[derive(Clone, Debug)]
pub enum EngineVerdict {
    /// The miter is unsatisfiable on the care set: the case holds.
    Holds,
    /// A care-set assignment (by input name) on which the miter fires.
    Counterexample(HashMap<String, bool>),
    /// The budget was exhausted before a conclusion; escalate or give up.
    BudgetExceeded,
    /// The engine failed (e.g. panicked); the typed cause says how.
    Error(Error),
}

impl EngineVerdict {
    /// True for the two definite verdicts (holds / counterexample).
    pub fn is_definite(&self) -> bool {
        matches!(
            self,
            EngineVerdict::Holds | EngineVerdict::Counterexample(_)
        )
    }
}

/// The unified result of one engine attempt.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// The conclusion.
    pub verdict: EngineVerdict,
    /// Resources spent reaching it.
    pub stats: EngineStats,
}

impl EngineOutcome {
    /// An error outcome with empty stats except wall time.
    pub fn error(cause: Error, wall: Duration) -> Self {
        EngineOutcome {
            verdict: EngineVerdict::Error(cause),
            stats: EngineStats {
                wall,
                ..EngineStats::default()
            },
        }
    }
}

/// A decision procedure for one case of the split.
///
/// Implementations are stateless (all mutable state lives inside one
/// `check` call), so a single instance can be shared by every scheduler
/// worker thread.
pub trait CaseEngine: Send + Sync {
    /// The engine kind, for reporting.
    fn kind(&self) -> EngineKind;
    /// A short human-readable name (e.g. `"bdd/constrain"`).
    fn name(&self) -> &'static str;
    /// Decides `case` of `op` on `harness` under `constraint_parts`,
    /// spending at most `budget`.
    fn check(
        &self,
        harness: &Harness,
        op: FpuOp,
        case: CaseId,
        constraint_parts: &[Signal],
        budget: &EngineBudget,
    ) -> EngineOutcome;
}

/// The δ a case fixes, for variable-order derivation.
pub(crate) fn case_delta(case: CaseId) -> Option<i64> {
    match case {
        CaseId::Monolithic | CaseId::FarOut => None,
        CaseId::OverlapNoCancel { delta } => Some(delta),
        CaseId::OverlapCancel { delta, .. } => Some(delta),
    }
}

/// BDD symbolic simulation with care-set minimization
/// (wraps [`check_miter_bdd_parts`]).
#[derive(Clone, Debug)]
pub struct BddCaseEngine {
    /// Minimization strategy.
    pub minimize: Minimize,
    /// Garbage-collection threshold for the node arena.
    pub gc_threshold: usize,
    /// Computed-cache size cap (entries) for each case's manager.
    pub cache_size: usize,
}

impl Default for BddCaseEngine {
    fn default() -> Self {
        BddCaseEngine {
            minimize: Minimize::Constrain,
            gc_threshold: 2_000_000,
            cache_size: fmaverify_bdd::DEFAULT_CACHE_SIZE,
        }
    }
}

impl CaseEngine for BddCaseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Bdd
    }

    fn name(&self) -> &'static str {
        match self.minimize {
            Minimize::Constrain => "bdd/constrain",
            Minimize::Restrict => "bdd/restrict",
            Minimize::None => "bdd/plain",
        }
    }

    fn check(
        &self,
        harness: &Harness,
        _op: FpuOp,
        case: CaseId,
        constraint_parts: &[Signal],
        budget: &EngineBudget,
    ) -> EngineOutcome {
        let order = paper_order(harness, case_delta(case));
        let out = check_miter_bdd_parts(
            &harness.netlist,
            harness.miter,
            constraint_parts,
            &BddEngineOptions {
                minimize: self.minimize,
                order,
                gc_threshold: self.gc_threshold,
                node_limit: budget.node_limit,
                cache_size: self.cache_size,
            },
        );
        bdd_outcome_to_engine(out)
    }
}

/// Cycle-accurate BDD symbolic simulation for pipelined harnesses
/// (wraps [`check_miter_bdd_sequential`]).
#[derive(Clone, Debug)]
pub struct BddSeqCaseEngine {
    /// Minimization strategy.
    pub minimize: Minimize,
    /// Garbage-collection threshold for the node arena.
    pub gc_threshold: usize,
    /// Computed-cache size cap (entries) for each case's manager.
    pub cache_size: usize,
    /// Cycle at which the miter is sampled; `None` derives it from the
    /// harness's pipeline latency.
    pub check_cycle: Option<usize>,
}

impl Default for BddSeqCaseEngine {
    fn default() -> Self {
        BddSeqCaseEngine {
            minimize: Minimize::Constrain,
            gc_threshold: 2_000_000,
            cache_size: fmaverify_bdd::DEFAULT_CACHE_SIZE,
            check_cycle: None,
        }
    }
}

impl CaseEngine for BddSeqCaseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::BddSequential
    }

    fn name(&self) -> &'static str {
        "bdd-seq"
    }

    fn check(
        &self,
        harness: &Harness,
        _op: FpuOp,
        case: CaseId,
        constraint_parts: &[Signal],
        budget: &EngineBudget,
    ) -> EngineOutcome {
        let order = paper_order(harness, case_delta(case));
        let check_cycle = self
            .check_cycle
            .unwrap_or_else(|| harness.options().pipeline.latency());
        let out = check_miter_bdd_sequential(
            &harness.netlist,
            harness.miter,
            constraint_parts,
            check_cycle,
            &BddEngineOptions {
                minimize: self.minimize,
                order,
                gc_threshold: self.gc_threshold,
                node_limit: budget.node_limit,
                cache_size: self.cache_size,
            },
        );
        bdd_outcome_to_engine(out)
    }
}

/// Structural SAT with optional redundancy removal
/// (wraps [`check_miter_sat_parts`]).
#[derive(Clone, Debug, Default)]
pub struct SatCaseEngine {
    /// Run SAT sweeping on the cone before solving.
    pub sweep_first: bool,
}

impl CaseEngine for SatCaseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sat
    }

    fn name(&self) -> &'static str {
        if self.sweep_first {
            "sat/sweep"
        } else {
            "sat"
        }
    }

    fn check(
        &self,
        harness: &Harness,
        _op: FpuOp,
        _case: CaseId,
        constraint_parts: &[Signal],
        budget: &EngineBudget,
    ) -> EngineOutcome {
        let out = check_miter_sat_parts(
            &harness.netlist,
            harness.miter,
            constraint_parts,
            &SatEngineOptions {
                sweep_first: self.sweep_first,
                conflict_budget: budget.conflict_limit,
            },
        );
        let mut metrics = MetricSet::new();
        metrics.add(Counter::SatDecisions, out.stats.decisions);
        metrics.add(Counter::SatPropagations, out.stats.propagations);
        metrics.add(Counter::SatConflicts, out.stats.conflicts);
        metrics.add(Counter::SatRestarts, out.stats.restarts);
        metrics.add(Counter::SweepMerges, out.sweep_merged as u64);
        metrics.add(Counter::SweepSatCalls, out.sweep_sat_calls as u64);
        metrics.add(Counter::SweepSimRounds, out.sweep_sim_rounds as u64);
        let stats = EngineStats {
            peak_bdd_nodes: None,
            care_nodes: None,
            sat_conflicts: Some(out.stats.conflicts),
            coi_ands: Some(out.cone_ands),
            wall: out.duration,
            metrics,
        };
        let verdict = if out.unknown {
            EngineVerdict::BudgetExceeded
        } else if out.holds {
            EngineVerdict::Holds
        } else {
            match out.counterexample {
                Some(cex) => EngineVerdict::Counterexample(cex),
                None => EngineVerdict::Error(Error::MissingModel {
                    engine: EngineKind::Sat,
                }),
            }
        };
        EngineOutcome { verdict, stats }
    }
}

fn bdd_outcome_to_engine(out: crate::engine_bdd::BddOutcome) -> EngineOutcome {
    let m = out.manager_stats;
    let mut metrics = MetricSet::new();
    metrics.add(Counter::BddIteCalls, m.ite_calls);
    metrics.add(Counter::BddCacheHits, m.cache_hits);
    metrics.add(Counter::BddCacheMisses, m.cache_misses);
    metrics.add(Counter::BddNodesAllocated, m.nodes_created);
    metrics.add(Counter::BddPeakLiveNodes, out.peak_nodes as u64);
    metrics.add(Counter::BddGcRuns, m.gc_runs);
    metrics.add(Counter::BddCacheEvictions, m.cache_evictions);
    metrics.add(Counter::BddUniqueProbes, m.unique_probes);
    metrics.add(Counter::BddGcFreed, m.gc_freed);
    metrics.add(Counter::BddCacheOccupancy, m.cache_occupancy as u64);
    let stats = EngineStats {
        peak_bdd_nodes: Some(out.peak_nodes),
        care_nodes: Some(out.care_nodes),
        sat_conflicts: None,
        coi_ands: None,
        wall: out.duration,
        metrics,
    };
    let verdict = if out.aborted {
        EngineVerdict::BudgetExceeded
    } else if out.holds {
        EngineVerdict::Holds
    } else {
        match out.counterexample {
            Some(cex) => EngineVerdict::Counterexample(cex),
            None => EngineVerdict::Error(Error::MissingModel {
                engine: EngineKind::Bdd,
            }),
        }
    };
    EngineOutcome { verdict, stats }
}

/// Convenience constructors for shared engine handles.
impl BddCaseEngine {
    /// Boxes the engine behind an [`Arc`] for use in a schedule ladder.
    pub fn shared(self) -> Arc<dyn CaseEngine> {
        Arc::new(self)
    }
}

impl BddSeqCaseEngine {
    /// Boxes the engine behind an [`Arc`] for use in a schedule ladder.
    pub fn shared(self) -> Arc<dyn CaseEngine> {
        Arc::new(self)
    }
}

impl SatCaseEngine {
    /// Boxes the engine behind an [`Arc`] for use in a schedule ladder.
    pub fn shared(self) -> Arc<dyn CaseEngine> {
        Arc::new(self)
    }
}
