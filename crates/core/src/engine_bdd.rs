//! BDD-based symbolic simulation of a miter under a care-set constraint.
//!
//! The engine assigns a BDD variable to every primary input following a
//! static order (the paper's orders put operand exponents first and
//! interleave the fractions with the `S'`,`T'` pseudo-inputs), evaluates the
//! constraint cone to obtain the care set, then sweeps the miter cone in
//! topological order with care-set minimization applied:
//!
//! * [`Minimize::Constrain`] — the Coudert–Madre generalized cofactor.
//!   Because `constrain` distributes over gates, applying it at the inputs
//!   minimizes every intermediate node implicitly; this is how "the `C_sha`
//!   constraint alone suffices to bound BDD size both for the reference and
//!   real FPU computations".
//! * [`Minimize::Restrict`] — sibling substitution at every gate (agreement
//!   on the care set composes gate-wise even though restrict does not
//!   distribute).
//! * [`Minimize::None`] — no minimization; the constraint is conjoined only
//!   at the end (the expensive strawman of the paper's ablation).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fmaverify_bdd::{Bdd, BddManager, BddVar};
use fmaverify_netlist::{Netlist, Node, NodeId, Signal};

/// Care-set minimization strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Minimize {
    /// Generalized cofactor at the inputs (distributes through the circuit).
    Constrain,
    /// Sibling-substitution restrict at every gate.
    Restrict,
    /// No minimization until the final conjunction.
    None,
}

/// Options for a BDD check.
#[derive(Clone, Debug)]
pub struct BddEngineOptions {
    /// Minimization strategy (the paper's winner is `Constrain`).
    pub minimize: Minimize,
    /// Variable order: input signals from top to bottom of the order.
    /// Inputs not listed are appended in creation order.
    pub order: Vec<Signal>,
    /// Garbage-collect when the node arena exceeds this size. This is the
    /// floor of a dead-fraction trigger: after each collection the next one
    /// fires only once allocations at least double the surviving live set,
    /// so a large live working set does not cause a collection per gate.
    pub gc_threshold: usize,
    /// Abort when the node arena exceeds this size even right after a
    /// collection (memory explosion guard). `None` = unbounded.
    pub node_limit: Option<usize>,
    /// Computed-cache size cap for the manager, in entries (rounded to a
    /// power of two). The cache is lossy: a smaller cap trades recompute
    /// for memory and never changes results.
    pub cache_size: usize,
}

impl Default for BddEngineOptions {
    fn default() -> Self {
        BddEngineOptions {
            minimize: Minimize::Constrain,
            order: Vec::new(),
            gc_threshold: 2_000_000,
            node_limit: None,
            cache_size: fmaverify_bdd::DEFAULT_CACHE_SIZE,
        }
    }
}

/// Result of a BDD miter check.
#[derive(Clone, Debug)]
pub struct BddOutcome {
    /// True iff `miter AND care` is unsatisfiable (the property holds on the
    /// care set).
    pub holds: bool,
    /// A satisfying input assignment (by input name) when the check fails.
    pub counterexample: Option<HashMap<String, bool>>,
    /// Peak allocated BDD nodes during the run.
    pub peak_nodes: usize,
    /// Live (reachable) nodes at the end.
    pub final_nodes: usize,
    /// Nodes in the care-set BDD.
    pub care_nodes: usize,
    /// Wall-clock duration.
    pub duration: Duration,
    /// True if the node limit aborted the run (result fields are then
    /// meaningless except `peak_nodes`).
    pub aborted: bool,
    /// Manager operation counters (apply calls, computed-table hits/misses,
    /// allocations, GC runs) snapshotted at the end of the run, for the
    /// telemetry layer.
    pub manager_stats: fmaverify_bdd::BddStats,
}

/// Checks that `miter` is false everywhere on the care set defined by
/// `care` (a constraint signal of the same netlist).
pub fn check_miter_bdd(
    netlist: &Netlist,
    miter: Signal,
    care: Signal,
    opts: &BddEngineOptions,
) -> BddOutcome {
    check_miter_bdd_parts(netlist, miter, &[care], opts)
}

/// Like [`check_miter_bdd`], but the care set is given as a conjunction of
/// parts. The parts are conjoined progressively, cheapest cone first, with
/// the accumulated care set minimizing the evaluation of the next part —
/// this is how the cheap `C_δ` constraint bounds the BDDs built for the
/// expensive `C_sha` cone (the reference FPU's aligner, adder and
/// leading-zero counter).
pub fn check_miter_bdd_parts(
    netlist: &Netlist,
    miter: Signal,
    care_parts: &[Signal],
    opts: &BddEngineOptions,
) -> BddOutcome {
    let start = Instant::now();
    let mut mgr = BddManager::with_cache_size(opts.cache_size);

    // Assign variables per the requested order.
    let mut var_of_node: HashMap<u32, BddVar> = HashMap::new();
    let mut input_name_of_var: Vec<(BddVar, String)> = Vec::new();
    for sig in &opts.order {
        assert!(
            !sig.is_inverted(),
            "order entries must be non-inverted input signals"
        );
        let id = sig.node().index() as u32;
        if var_of_node.contains_key(&id) {
            continue;
        }
        let v = mgr.new_var();
        var_of_node.insert(id, v);
        if let Node::Input { name } = netlist.node(sig.node()) {
            input_name_of_var.push((v, name.clone()));
        } else {
            panic!("order entry {sig:?} is not a primary input");
        }
    }
    for &id in netlist.inputs() {
        let key = id.index() as u32;
        if let std::collections::hash_map::Entry::Vacant(e) = var_of_node.entry(key) {
            let v = mgr.new_var();
            e.insert(v);
            if let Node::Input { name } = netlist.node(id) {
                input_name_of_var.push((v, name.clone()));
            }
        }
    }
    // Latches evaluate to their reset values in a combinational check.
    let latch_value = |netlist: &Netlist, id: NodeId| -> Bdd {
        match netlist.node(id) {
            Node::Latch { init, .. } => {
                if *init {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
            _ => unreachable!(),
        }
    };

    // Pass 1: evaluate the care parts, cheapest cone first, each one
    // minimized against the conjunction of the previous parts. Because
    // `constrain(c2, c1) AND c1 == c2 AND c1`, the accumulated care set is
    // exact while the intermediate BDDs stay bounded.
    let mut parts: Vec<Signal> = care_parts.to_vec();
    parts.sort_by_key(|&p| netlist.cone_size(&[p]));
    let mut care_bdd = Bdd::TRUE;
    let abort_outcome = |mgr: &BddManager, care_nodes: usize, start: Instant| BddOutcome {
        holds: false,
        counterexample: None,
        peak_nodes: mgr.stats().peak_allocated,
        final_nodes: mgr.stats().allocated,
        care_nodes,
        duration: start.elapsed(),
        aborted: true,
        manager_stats: mgr.stats(),
    };
    for part in parts {
        let cone = netlist.comb_cone(&[part]);
        let mut values: Vec<Option<Bdd>> = vec![None; netlist.num_nodes()];
        for id in netlist.node_ids() {
            if !cone[id.index()] {
                continue;
            }
            if let Some(limit) = opts.node_limit {
                if mgr.stats().allocated > limit {
                    return abort_outcome(&mgr, 0, start);
                }
            }
            let v = match netlist.node(id) {
                Node::Const => Bdd::FALSE,
                Node::Input { .. } => {
                    let raw = mgr.var_bdd(var_of_node[&(id.index() as u32)]);
                    if care_bdd.is_true() || care_bdd.is_false() {
                        raw
                    } else {
                        match opts.minimize {
                            Minimize::Constrain => mgr.constrain(raw, care_bdd),
                            Minimize::Restrict => mgr.restrict(raw, care_bdd),
                            Minimize::None => raw,
                        }
                    }
                }
                Node::Latch { .. } => latch_value(netlist, id),
                Node::And(a, b) => {
                    let va = edge(&values, *a);
                    let vb = edge(&values, *b);
                    let g = mgr.and(va, vb);
                    if !care_bdd.is_true()
                        && !care_bdd.is_false()
                        && opts.minimize == Minimize::Restrict
                    {
                        mgr.restrict(g, care_bdd)
                    } else {
                        g
                    }
                }
            };
            values[id.index()] = Some(v);
        }
        let part_bdd = edge(&values, part);
        drop(values);
        care_bdd = mgr.and(care_bdd, part_bdd);
        if std::env::var_os("FMAVERIFY_BDD_TRACE").is_some() {
            eprintln!(
                "care part {part:?}: part_false={} care_false={} alloc={}",
                part_bdd.is_false(),
                care_bdd.is_false(),
                mgr.stats().allocated
            );
        }
        if care_bdd.is_false() {
            break;
        }
        let roots = mgr.gc(&[care_bdd]);
        care_bdd = roots[0];
    }
    if care_bdd.is_false() {
        // Empty care set: the case is trivially discharged (the paper's
        // C_sha/rest case).
        return BddOutcome {
            holds: true,
            counterexample: None,
            peak_nodes: mgr.stats().peak_allocated,
            final_nodes: mgr.reachable_count(&[care_bdd]),
            care_nodes: 1,
            duration: start.elapsed(),
            aborted: false,
            manager_stats: mgr.stats(),
        };
    }
    let care_nodes = mgr.reachable_count(&[care_bdd]);

    // Pass 2: evaluate the miter cone with minimization.
    let cone = netlist.comb_cone(&[miter]);
    // Remaining-use counts for value liveness (so GC can free dead nodes).
    let mut uses: Vec<u32> = vec![0; netlist.num_nodes()];
    for id in netlist.node_ids() {
        if cone[id.index()] {
            if let Node::And(a, b) = netlist.node(id) {
                uses[a.node().index()] += 1;
                uses[b.node().index()] += 1;
            }
        }
    }
    uses[miter.node().index()] += 1;

    let mut values: Vec<Option<Bdd>> = vec![None; netlist.num_nodes()];
    let mut care_cur = care_bdd;
    let mut aborted = false;
    let mut next_gc = opts.gc_threshold;
    for id in netlist.node_ids() {
        if !cone[id.index()] {
            continue;
        }
        let v = match netlist.node(id) {
            Node::Const => Bdd::FALSE,
            Node::Input { .. } => {
                let raw = mgr.var_bdd(var_of_node[&(id.index() as u32)]);
                match opts.minimize {
                    Minimize::Constrain => mgr.constrain(raw, care_cur),
                    Minimize::Restrict => mgr.restrict(raw, care_cur),
                    Minimize::None => raw,
                }
            }
            Node::Latch { .. } => latch_value(netlist, id),
            Node::And(a, b) => {
                let va = edge(&values, *a);
                let vb = edge(&values, *b);
                let g = mgr.and(va, vb);
                match opts.minimize {
                    // Constrain distributes: children are already minimized,
                    // so the plain AND *is* the constrained function.
                    Minimize::Constrain => g,
                    Minimize::Restrict => mgr.restrict(g, care_cur),
                    Minimize::None => g,
                }
            }
        };
        values[id.index()] = Some(v);
        // Release operands that will not be used again.
        if let Node::And(a, b) = netlist.node(id) {
            for child in [a.node(), b.node()] {
                uses[child.index()] -= 1;
                if uses[child.index()] == 0 {
                    values[child.index()] = None;
                }
            }
        }
        if mgr.stats().allocated > next_gc {
            let mut roots: Vec<Bdd> = values.iter().flatten().copied().collect();
            roots.push(care_cur);
            let new_roots = mgr.gc(&roots);
            let mut k = 0;
            for slot in values.iter_mut() {
                if slot.is_some() {
                    *slot = Some(new_roots[k]);
                    k += 1;
                }
            }
            care_cur = new_roots[k];
            // Dead-fraction trigger: fire the next collection once the arena
            // is at least half garbage relative to the survivors of this one
            // (allocations doubled the live set), never below the configured
            // floor. A mostly-live arena is not worth re-collecting.
            next_gc = (mgr.stats().allocated * 2).max(opts.gc_threshold);
            if let Some(limit) = opts.node_limit {
                if mgr.stats().allocated > limit {
                    aborted = true;
                    break;
                }
            }
        }
    }
    if aborted {
        return BddOutcome {
            holds: false,
            counterexample: None,
            peak_nodes: mgr.stats().peak_allocated,
            final_nodes: mgr.stats().allocated,
            care_nodes,
            duration: start.elapsed(),
            aborted: true,
            manager_stats: mgr.stats(),
        };
    }
    let miter_val = edge(&values, miter);
    let bad = mgr.and(miter_val, care_cur);
    let holds = bad.is_false();
    let counterexample = if holds {
        None
    } else {
        let path = mgr.pick_sat(bad).expect("bad is satisfiable");
        let mut by_var: HashMap<usize, bool> = HashMap::new();
        for (v, val) in path {
            by_var.insert(v.index(), val);
        }
        let mut cex = HashMap::new();
        for (v, name) in &input_name_of_var {
            cex.insert(
                name.clone(),
                by_var.get(&v.index()).copied().unwrap_or(false),
            );
        }
        Some(cex)
    };
    BddOutcome {
        holds,
        counterexample,
        peak_nodes: mgr.stats().peak_allocated,
        final_nodes: mgr.reachable_count(&[bad, care_cur]),
        care_nodes,
        duration: start.elapsed(),
        aborted: false,
        manager_stats: mgr.stats(),
    }
}

#[inline]
fn edge(values: &[Option<Bdd>], sig: Signal) -> Bdd {
    let v = values[sig.node().index()].expect("value computed");
    if sig.is_inverted() {
        !v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny miter: two adders built differently must agree; with a bug
    /// injected, the engine must produce a counterexample.
    fn adder_pair(buggy: bool) -> (Netlist, Signal, Signal) {
        let mut n = Netlist::new();
        let a = n.word_input("a", 6);
        let b = n.word_input("b", 6);
        let s1 = n.add(&a, &b);
        let nb = n.neg(&b);
        let mut s2 = n.sub(&a, &nb);
        if buggy {
            // Flip one output bit.
            let mut bits = s2.bits().to_vec();
            bits[3] = !bits[3];
            s2 = fmaverify_netlist::Word::from_bits(bits);
        }
        let d = n.xor_word(&s1, &s2);
        let miter = n.or_reduce(&d);
        // Care set: a < 32 (top bit clear).
        let care = !a.bit(5);
        (n, miter, care)
    }

    #[test]
    fn equal_adders_hold() {
        let (n, miter, care) = adder_pair(false);
        for minimize in [Minimize::Constrain, Minimize::Restrict, Minimize::None] {
            let out = check_miter_bdd(
                &n,
                miter,
                care,
                &BddEngineOptions {
                    minimize,
                    ..BddEngineOptions::default()
                },
            );
            assert!(out.holds, "minimize {minimize:?}");
            assert!(out.counterexample.is_none());
            assert!(out.peak_nodes > 0);
        }
    }

    #[test]
    fn buggy_adder_yields_counterexample() {
        let (n, miter, care) = adder_pair(true);
        let out = check_miter_bdd(&n, miter, care, &BddEngineOptions::default());
        assert!(!out.holds);
        let cex = out.counterexample.expect("counterexample");
        // Replay the counterexample concretely.
        let mut sim = fmaverify_netlist::BitSim::new(&n);
        for (name, val) in &cex {
            let sig = n.find_input(name).expect("input exists");
            sim.set(sig, *val);
        }
        sim.eval();
        assert!(sim.get(miter), "cex must trigger the miter");
        assert!(sim.get(care), "cex must lie in the care set");
    }

    #[test]
    fn constraint_respected() {
        // A miter that only fails outside the care set must hold.
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let big = {
            let k = n.word_const(4, 12);
            n.ule(&k, &a)
        };
        // "Fails" whenever a >= 12.
        let miter = big;
        let care = {
            let k = n.word_const(4, 12);
            n.ult(&a, &k)
        };
        let out = check_miter_bdd(&n, miter, care, &BddEngineOptions::default());
        assert!(out.holds);
        // Without the constraint it fails.
        let out2 = check_miter_bdd(&n, miter, Signal::TRUE, &BddEngineOptions::default());
        assert!(!out2.holds);
    }

    #[test]
    fn empty_care_set_discharges_trivially() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let miter = a;
        let out = check_miter_bdd(&n, miter, Signal::FALSE, &BddEngineOptions::default());
        assert!(out.holds);
    }

    #[test]
    fn custom_order_is_used() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let b = n.word_input("b", 4);
        let eq = n.eq_word(&a, &b);
        let order: Vec<Signal> = (0..4).flat_map(|i| [a.bit(i), b.bit(i)]).collect();
        let interleaved = check_miter_bdd(
            &n,
            !eq,
            eq,
            &BddEngineOptions {
                order,
                ..BddEngineOptions::default()
            },
        );
        assert!(interleaved.holds);
    }
}
