//! Sequential BDD symbolic simulation.
//!
//! Paper §5: "The BDD-based symbolic simulator operates directly upon the
//! sequential netlist" — no unfolding. Each register holds a BDD over the
//! primary-input variables; every cycle, the combinational logic is
//! evaluated symbolically (with care-set minimization) and the register
//! state is updated from the next-state functions. The operands are held
//! constant (the driver issues one instruction into an empty FPU), so the
//! same input variables serve every cycle, and the miter is examined at the
//! result-valid cycle.

use std::collections::HashMap;
use std::time::Instant;

use fmaverify_bdd::{Bdd, BddManager, BddVar};
use fmaverify_netlist::{Netlist, Node, Signal};

use crate::engine_bdd::{BddEngineOptions, BddOutcome, Minimize};

/// Checks `miter AND care == false` at cycle `check_cycle` of the sequential
/// netlist by stepping BDDs through the registers (inputs held).
///
/// The care parts must be combinational functions of the primary inputs (as
/// the paper's constraints are: operand exponents and the reference FPU's
/// `sha`, whose cone contains no registers).
///
/// # Panics
/// Panics if a care part's cone contains a register.
pub fn check_miter_bdd_sequential(
    netlist: &Netlist,
    miter: Signal,
    care_parts: &[Signal],
    check_cycle: usize,
    opts: &BddEngineOptions,
) -> BddOutcome {
    let start = Instant::now();
    netlist.assert_closed();
    let mut mgr = BddManager::with_cache_size(opts.cache_size);

    // Variables per the static order, remaining inputs appended.
    let mut var_of_node: HashMap<u32, BddVar> = HashMap::new();
    let mut input_name_of_var: Vec<(BddVar, String)> = Vec::new();
    let add_var = |mgr: &mut BddManager,
                   var_of_node: &mut HashMap<u32, BddVar>,
                   names: &mut Vec<(BddVar, String)>,
                   sig: Signal| {
        let id = sig.node().index() as u32;
        if var_of_node.contains_key(&id) {
            return;
        }
        let v = mgr.new_var();
        var_of_node.insert(id, v);
        if let Node::Input { name } = netlist.node(sig.node()) {
            names.push((v, name.clone()));
        } else {
            panic!("order entry {sig:?} is not a primary input");
        }
    };
    for sig in &opts.order {
        add_var(&mut mgr, &mut var_of_node, &mut input_name_of_var, *sig);
    }
    for &id in netlist.inputs() {
        add_var(
            &mut mgr,
            &mut var_of_node,
            &mut input_name_of_var,
            netlist.signal(id),
        );
    }

    // Care set: evaluated once over the combinational view (registers at
    // reset would be wrong if the care depended on them, so forbid that).
    for part in care_parts {
        let cone = netlist.comb_cone(&[*part]);
        for &l in netlist.latches() {
            assert!(
                !cone[l.index()],
                "care part {part:?} depends on register state"
            );
        }
    }

    // Register state as BDDs (reset values).
    let mut state: HashMap<u32, Bdd> = netlist
        .latches()
        .iter()
        .map(|&l| {
            let init = match netlist.node(l) {
                Node::Latch { init, .. } => *init,
                _ => unreachable!(),
            };
            (l.index() as u32, if init { Bdd::TRUE } else { Bdd::FALSE })
        })
        .collect();

    // Evaluate the care set first (cheapest parts first, progressively
    // minimized — mirrors the combinational engine).
    let mut sorted_parts: Vec<Signal> = care_parts.to_vec();
    sorted_parts.sort_by_key(|&p| netlist.cone_size(&[p]));
    let mut care = Bdd::TRUE;
    for part in sorted_parts {
        let values = eval_comb(
            netlist,
            &mut mgr,
            &var_of_node,
            &state,
            &[part],
            care,
            opts.minimize,
        );
        let part_bdd = edge(&values, part);
        care = mgr.and(care, part_bdd);
        if care.is_false() {
            break;
        }
    }
    if care.is_false() {
        return BddOutcome {
            holds: true,
            counterexample: None,
            peak_nodes: mgr.stats().peak_allocated,
            final_nodes: 1,
            care_nodes: 1,
            duration: start.elapsed(),
            aborted: false,
            manager_stats: mgr.stats(),
        };
    }
    let care_nodes = mgr.reachable_count(&[care]);

    // Step cycles: each cycle evaluates all next-state functions and the
    // miter, then commits the new state.
    let next_sigs: Vec<(u32, Signal)> = netlist
        .latches()
        .iter()
        .map(|&l| match netlist.node(l) {
            Node::Latch { next, .. } => (l.index() as u32, *next),
            _ => unreachable!(),
        })
        .collect();
    let mut miter_val = Bdd::FALSE;
    for cycle in 0..=check_cycle {
        let mut roots: Vec<Signal> = next_sigs.iter().map(|&(_, s)| s).collect();
        roots.push(miter);
        let values = eval_comb(
            netlist,
            &mut mgr,
            &var_of_node,
            &state,
            &roots,
            care,
            opts.minimize,
        );
        miter_val = edge(&values, miter);
        if cycle < check_cycle {
            let mut new_state = HashMap::with_capacity(state.len());
            for &(l, next) in &next_sigs {
                new_state.insert(l, edge(&values, next));
            }
            state = new_state;
            // Collect between cycles, keeping state + care.
            let mut gc_roots: Vec<Bdd> = state.values().copied().collect();
            gc_roots.push(care);
            let remapped = mgr.gc(&gc_roots);
            for (slot, new) in state.values_mut().zip(&remapped) {
                *slot = *new;
            }
            care = *remapped.last().expect("care root");
            if let Some(limit) = opts.node_limit {
                if mgr.stats().allocated > limit {
                    return BddOutcome {
                        holds: false,
                        counterexample: None,
                        peak_nodes: mgr.stats().peak_allocated,
                        final_nodes: mgr.stats().allocated,
                        care_nodes,
                        duration: start.elapsed(),
                        aborted: true,
                        manager_stats: mgr.stats(),
                    };
                }
            }
        }
    }

    let bad = mgr.and(miter_val, care);
    let holds = bad.is_false();
    let counterexample = if holds {
        None
    } else {
        let path = mgr.pick_sat(bad).expect("satisfiable");
        let by_var: HashMap<usize, bool> = path.into_iter().map(|(v, b)| (v.index(), b)).collect();
        let mut cex = HashMap::new();
        for (v, name) in &input_name_of_var {
            cex.insert(
                name.clone(),
                by_var.get(&v.index()).copied().unwrap_or(false),
            );
        }
        Some(cex)
    };
    BddOutcome {
        holds,
        counterexample,
        peak_nodes: mgr.stats().peak_allocated,
        final_nodes: mgr.reachable_count(&[bad, care]),
        care_nodes,
        duration: start.elapsed(),
        aborted: false,
        manager_stats: mgr.stats(),
    }
}

/// Evaluates the combinational cones of `roots` with the given register
/// state, applying the minimization strategy against `care`.
fn eval_comb(
    netlist: &Netlist,
    mgr: &mut BddManager,
    var_of_node: &HashMap<u32, BddVar>,
    state: &HashMap<u32, Bdd>,
    roots: &[Signal],
    care: Bdd,
    minimize: Minimize,
) -> Vec<Option<Bdd>> {
    let cone = netlist.comb_cone(roots);
    let mut values: Vec<Option<Bdd>> = vec![None; netlist.num_nodes()];
    let active = !care.is_true() && !care.is_false();
    for id in netlist.node_ids() {
        if !cone[id.index()] {
            continue;
        }
        let v = match netlist.node(id) {
            Node::Const => Bdd::FALSE,
            Node::Input { .. } => {
                let raw = mgr.var_bdd(var_of_node[&(id.index() as u32)]);
                if active {
                    match minimize {
                        Minimize::Constrain => mgr.constrain(raw, care),
                        Minimize::Restrict => mgr.restrict(raw, care),
                        Minimize::None => raw,
                    }
                } else {
                    raw
                }
            }
            Node::Latch { .. } => {
                let raw = state[&(id.index() as u32)];
                if active {
                    match minimize {
                        Minimize::Constrain => mgr.constrain(raw, care),
                        Minimize::Restrict => mgr.restrict(raw, care),
                        Minimize::None => raw,
                    }
                } else {
                    raw
                }
            }
            Node::And(a, b) => {
                let va = edge(&values, *a);
                let vb = edge(&values, *b);
                let g = mgr.and(va, vb);
                if active && minimize == Minimize::Restrict {
                    mgr.restrict(g, care)
                } else {
                    g
                }
            }
        };
        values[id.index()] = Some(v);
    }
    values
}

#[inline]
fn edge(values: &[Option<Bdd>], sig: Signal) -> Bdd {
    let v = values[sig.node().index()].expect("value computed");
    if sig.is_inverted() {
        !v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{enumerate_cases, CaseId};
    use crate::harness::{build_harness, HarnessOptions};
    use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp, PipelineMode};
    use fmaverify_softfloat::FpFormat;

    #[test]
    fn sequential_engine_verifies_pipelined_cases() {
        let cfg = FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        };
        let mut harness = build_harness(
            &cfg,
            HarnessOptions {
                pipeline: PipelineMode::ThreeStage,
                ..HarnessOptions::default()
            },
        );
        let latency = PipelineMode::ThreeStage.latency();
        // A representative subset (the full sweep is covered by the
        // unrolling test).
        let cases: Vec<CaseId> = enumerate_cases(&cfg, FpuOp::Fma)
            .into_iter()
            .step_by(7)
            .collect();
        for case in cases {
            let parts = harness.case_constraint_parts(FpuOp::Fma, case);
            let out = check_miter_bdd_sequential(
                &harness.netlist,
                harness.miter,
                &parts,
                latency,
                &BddEngineOptions::default(),
            );
            assert!(out.holds && !out.aborted, "case {case:?}");
        }
    }

    #[test]
    fn sequential_engine_finds_pipelined_bugs() {
        let cfg = FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        };
        let mut harness = build_harness(
            &cfg,
            HarnessOptions {
                pipeline: PipelineMode::ThreeStage,
                ..HarnessOptions::default()
            },
        );
        // Inject a fault into an AND gate feeding a register next-state
        // function (a sequential-only bug).
        let parts_all =
            harness.case_constraint_parts(FpuOp::Fma, CaseId::OverlapNoCancel { delta: 3 });
        for (i, p) in parts_all.iter().enumerate() {
            harness.netlist.probe(format!("seqbug#{i}"), *p);
        }
        let target = harness
            .netlist
            .latches()
            .iter()
            .find_map(|&l| match harness.netlist.node(l) {
                fmaverify_netlist::Node::Latch { next, .. }
                    if matches!(
                        harness.netlist.node(next.node()),
                        fmaverify_netlist::Node::And(..)
                    ) =>
                {
                    Some(next.node())
                }
                _ => None,
            })
            .expect("a register fed by logic");
        let mutated = crate::mutate::inject_fault(
            &harness.netlist,
            target,
            crate::mutate::MutationKind::InvertOutput,
        );
        let miter = mutated.find_output("miter").expect("miter");
        let parts: Vec<Signal> = (0..parts_all.len())
            .map(|i| mutated.find_probe(&format!("seqbug#{i}")).expect("probe"))
            .collect();
        let out = check_miter_bdd_sequential(
            &mutated,
            miter,
            &parts,
            PipelineMode::ThreeStage.latency(),
            &BddEngineOptions::default(),
        );
        // The fault sits in this case's cone or not; if the case holds, try
        // the unconstrained space, which must expose an inverted gate that
        // feeds state.
        if out.holds {
            let out2 = check_miter_bdd_sequential(
                &mutated,
                miter,
                &[Signal::TRUE],
                PipelineMode::ThreeStage.latency(),
                &BddEngineOptions::default(),
            );
            assert!(
                !out2.holds,
                "an inverted state-feeding gate must be visible"
            );
            let cex = out2.counterexample.expect("cex");
            assert!(!cex.is_empty());
        } else {
            assert!(out.counterexample.is_some());
        }
    }
}
