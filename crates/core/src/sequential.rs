//! Verification of pipelined implementations.
//!
//! The paper's targets are "multi-GHz industrial implementation models"
//! with "aggressive pipelining, clocking, etc."; because a floating-point
//! computation completes in a bounded number of steps, verification "may be
//! cast as a bounded check". This module realizes that: the two-FPU harness
//! (combinational reference, pipelined clock-gated implementation) is
//! unrolled for the pipeline latency with the operands held — the analogue
//! of the paper's driver issuing a single instruction into an empty FPU —
//! and the cycle-`L` miter is checked by the same BDD/SAT engines.

use fmaverify_fpu::{FpuOp, PipelineMode};
use fmaverify_netlist::{unroll, InputMode, Netlist, Signal};

use crate::cases::CaseId;
use crate::harness::Harness;

/// A harness unrolled to its pipeline latency: a purely combinational
/// netlist whose miter compares the reference result against the
/// implementation's output registers at the result-valid cycle.
#[derive(Debug)]
pub struct UnrolledHarness {
    /// The combinational unrolled netlist.
    pub netlist: Netlist,
    /// The miter at the result-valid cycle.
    pub miter: Signal,
    /// The pipeline latency that was unrolled.
    pub latency: usize,
}

/// Unrolls a pipelined harness and returns, for each requested case, the
/// constraint parts re-located in the unrolled netlist (constraints are
/// functions of the held operands, so their cycle-0 copies are used).
///
/// # Panics
/// Panics if the harness was built combinationally (nothing to unroll).
pub fn unroll_harness(
    harness: &mut Harness,
    op: FpuOp,
    cases: &[CaseId],
) -> (UnrolledHarness, Vec<(CaseId, Vec<Signal>)>) {
    let latency = harness.options().pipeline.latency();
    assert!(
        harness.options().pipeline != PipelineMode::Combinational,
        "combinational harnesses need no unrolling"
    );
    // Materialize the constraint parts as named probes so they survive the
    // unroll (which rebuilds the netlist).
    let mut probe_names: Vec<(CaseId, Vec<String>)> = Vec::new();
    for &case in cases {
        let parts = harness.case_constraint_parts(op, case);
        let mut names = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            let name = format!("seq.{op:?}.{}#{i}", case.label());
            harness.netlist.probe(&name, *p);
            names.push(name);
        }
        probe_names.push((case, names));
    }

    let unrolled = unroll(&harness.netlist, latency + 1, InputMode::HoldFirst);
    let netlist = unrolled.netlist;
    let miter = netlist
        .find_output(&format!("miter@{latency}"))
        .expect("unrolled miter output");
    let constraints: Vec<(CaseId, Vec<Signal>)> = probe_names
        .into_iter()
        .map(|(case, names)| {
            let parts = names
                .iter()
                .map(|n| {
                    netlist
                        .find_probe(&format!("{n}@0"))
                        .expect("unrolled constraint probe")
                })
                .collect();
            (case, parts)
        })
        .collect();
    (
        UnrolledHarness {
            netlist,
            miter,
            latency,
        },
        constraints,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::enumerate_cases;
    use crate::engine_bdd::{check_miter_bdd_parts, BddEngineOptions};
    use crate::engine_sat::{check_miter_sat_parts, SatEngineOptions};
    use crate::harness::{build_harness, HarnessOptions};
    use fmaverify_fpu::{DenormalMode, FpuConfig};
    use fmaverify_softfloat::FpFormat;

    #[test]
    fn pipelined_fma_verifies_by_unrolling() {
        let cfg = FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        };
        let mut harness = build_harness(
            &cfg,
            HarnessOptions {
                pipeline: PipelineMode::ThreeStage,
                ..HarnessOptions::default()
            },
        );
        assert!(harness.netlist.num_latches() > 0);
        let cases = enumerate_cases(&cfg, FpuOp::Fma);
        let (u, constraints) = unroll_harness(&mut harness, FpuOp::Fma, &cases);
        assert_eq!(u.latency, 3);
        assert_eq!(
            u.netlist.num_latches(),
            0,
            "the unrolled model is combinational"
        );
        for (case, parts) in &constraints {
            let holds = match case {
                CaseId::FarOut | CaseId::Monolithic => {
                    check_miter_sat_parts(&u.netlist, u.miter, parts, &SatEngineOptions::default())
                        .holds
                }
                _ => {
                    check_miter_bdd_parts(&u.netlist, u.miter, parts, &BddEngineOptions::default())
                        .holds
                }
            };
            assert!(holds, "pipelined case {case:?} failed");
        }
    }

    #[test]
    #[should_panic]
    fn combinational_harness_rejects_unroll() {
        let cfg = FpuConfig {
            format: FpFormat::MICRO,
            denormals: DenormalMode::FlushToZero,
        };
        let mut harness = build_harness(&cfg, HarnessOptions::default());
        let _ = unroll_harness(&mut harness, FpuOp::Fma, &[CaseId::FarOut]);
    }
}
