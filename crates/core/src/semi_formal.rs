//! Semi-formal validation: constraint-satisfying stimulus generation.
//!
//! The paper validates the design "without the multiplier overrides or
//! case-splits using simulation and semi-formal methods". This module is
//! the semi-formal leg: the SAT solver is used as a *stimulus generator* —
//! each query returns a model of the case constraint, decision phases are
//! re-randomized between queries and previous models are blocked, so the
//! samples spread across the constrained space. The miter is then checked
//! by concrete simulation on every sample: not a proof, but a
//! coverage-directed search that reaches corners uniform random stimulus
//! cannot (e.g. a specific δ and normalization shift).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fmaverify_netlist::{BitSim, Netlist, Node, SatEncoder, Signal};
use fmaverify_sat::{Lit, SolveResult, Solver};

use crate::engine::EngineStats;

/// Result of a semi-formal run.
#[derive(Clone, Debug)]
pub struct SemiFormalOutcome {
    /// Number of constraint-satisfying vectors simulated.
    pub vectors: usize,
    /// The first miter-violating vector found, if any.
    pub failure: Option<HashMap<String, bool>>,
    /// True when the constraint space was exhausted before `count` samples
    /// (every satisfying assignment was enumerated and simulated).
    pub exhausted: bool,
    /// Unified resource statistics (total solver conflicts across all
    /// stimulus queries, wall time) in the case-engine shape.
    pub stats: EngineStats,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// Draws up to `count` distinct samples satisfying all `constraint_parts`
/// and simulates `miter` on each.
///
/// Blocking clauses are added over the primary inputs, so every returned
/// vector is distinct; if the constraint space is smaller than `count`, the
/// run is exhaustive over it (and `exhausted` is set — the semi-formal
/// search degenerated into a complete one).
pub fn semi_formal_check(
    netlist: &Netlist,
    miter: Signal,
    constraint_parts: &[Signal],
    count: usize,
    seed: u64,
) -> SemiFormalOutcome {
    let start = Instant::now();
    let mut solver = Solver::new();
    let mut enc = SatEncoder::new();
    let assumptions: Vec<Lit> = constraint_parts
        .iter()
        .map(|&p| enc.lit(netlist, &mut solver, p))
        .collect();
    // Make sure every primary input is encoded so models cover all of them
    // and blocking clauses pin complete vectors.
    let input_lits: Vec<(String, Lit)> = netlist
        .inputs()
        .iter()
        .map(|&id| {
            let name = match netlist.node(id) {
                Node::Input { name } => name.clone(),
                _ => unreachable!(),
            };
            (name, enc.lit(netlist, &mut solver, netlist.signal(id)))
        })
        .collect();

    let mut sim = BitSim::new(netlist);
    let mut vectors = 0;
    let mut failure = None;
    let mut exhausted = false;
    for k in 0..count {
        solver.randomize_polarities(seed.wrapping_add(k as u64).wrapping_mul(0x9e37_79b9));
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Unsat => {
                exhausted = true;
                break;
            }
            SolveResult::Unknown => unreachable!("no budget configured"),
            SolveResult::Sat => {}
        }
        // Extract, simulate, and block this vector.
        let mut vector = HashMap::new();
        let mut blocking = Vec::with_capacity(input_lits.len());
        for (name, lit) in &input_lits {
            let v = solver.model_lit_value(*lit).is_true();
            vector.insert(name.clone(), v);
            blocking.push(if v { !*lit } else { *lit });
            sim.set(netlist.find_input(name).expect("input exists"), v);
        }
        sim.eval();
        vectors += 1;
        debug_assert!(
            constraint_parts.iter().all(|&p| sim.get(p)),
            "SAT model violates the constraint in simulation"
        );
        if sim.get(miter) {
            failure = Some(vector);
            break;
        }
        solver.add_clause(&blocking);
    }
    SemiFormalOutcome {
        vectors,
        failure,
        exhausted,
        stats: EngineStats {
            sat_conflicts: Some(solver.stats().conflicts),
            wall: start.elapsed(),
            ..EngineStats::default()
        },
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::CaseId;
    use crate::harness::{build_harness, HarnessOptions};
    use crate::mutate::{inject_fault, MutationKind};
    use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
    use fmaverify_softfloat::FpFormat;

    fn tiny() -> FpuConfig {
        FpuConfig {
            format: FpFormat::new(3, 2),
            denormals: DenormalMode::FlushToZero,
        }
    }

    #[test]
    fn clean_design_survives_semi_formal() {
        let mut h = build_harness(&tiny(), HarnessOptions::default());
        let parts = h.case_constraint_parts(FpuOp::Fma, CaseId::OverlapNoCancel { delta: 2 });
        let out = semi_formal_check(&h.netlist, h.miter, &parts, 200, 7);
        assert!(out.failure.is_none());
        assert!(
            out.vectors > 50,
            "expected many distinct samples, got {}",
            out.vectors
        );
    }

    #[test]
    fn samples_are_distinct_and_on_constraint() {
        let mut h = build_harness(&tiny(), HarnessOptions::default());
        let parts = h.case_constraint_parts(FpuOp::Fma, CaseId::OverlapNoCancel { delta: 0 });
        // Use the constraint itself as a "miter" that never fires, and count
        // distinct vectors via the blocking mechanism.
        let out = semi_formal_check(&h.netlist, Signal::FALSE, &parts, 64, 3);
        assert_eq!(out.vectors, 64, "blocking must yield distinct samples");
        assert!(!out.exhausted);
    }

    #[test]
    fn small_space_is_exhausted() {
        // A constraint with a tiny solution space: op fixed and a == b == c
        // == 0 except one free bit.
        let mut n = Netlist::new();
        let x = n.word_input("x", 3);
        let c = {
            let k = n.word_const(3, 2);
            n.ult(&x, &k) // x in {0, 1}
        };
        let out = semi_formal_check(&n, Signal::FALSE, &[c], 100, 1);
        assert_eq!(out.vectors, 2);
        assert!(out.exhausted);
    }

    #[test]
    fn finds_planted_bug_within_its_case() {
        let mut h = build_harness(
            &tiny(),
            HarnessOptions {
                isolate_multiplier: false,
                ..HarnessOptions::default()
            },
        );
        let case = CaseId::OverlapNoCancel { delta: 1 };
        let parts = h.case_constraint_parts(FpuOp::Fma, case);
        for (i, p) in parts.iter().enumerate() {
            h.netlist.probe(format!("sf#{i}"), *p);
        }
        // Find a fault observable under this very constraint by trying
        // candidates until the semi-formal search trips one.
        let impl_cone = h.netlist.comb_cone(h.impl_fpu.outputs.result.bits());
        let ref_cone = h.netlist.comb_cone(h.ref_fpu.outputs.result.bits());
        let candidates: Vec<_> = h
            .netlist
            .node_ids()
            .filter(|id| {
                impl_cone[id.index()]
                    && !ref_cone[id.index()]
                    && matches!(h.netlist.node(*id), Node::And(..))
            })
            .collect();
        let mut found = false;
        for (k, &target) in candidates.iter().enumerate().step_by(11) {
            let mutated = inject_fault(&h.netlist, target, MutationKind::InvertOutput);
            let miter = mutated.find_output("miter").expect("miter");
            let parts: Vec<Signal> = (0..parts.len())
                .map(|i| mutated.find_probe(&format!("sf#{i}")).expect("probe"))
                .collect();
            let out = semi_formal_check(&mutated, miter, &parts, 300, k as u64);
            if let Some(vector) = out.failure {
                // Replay.
                let mut sim = BitSim::new(&mutated);
                for (name, v) in &vector {
                    sim.set(mutated.find_input(name).expect("input"), *v);
                }
                sim.eval();
                assert!(sim.get(miter));
                found = true;
                break;
            }
        }
        assert!(
            found,
            "no candidate fault was exposed by semi-formal search"
        );
    }
}
