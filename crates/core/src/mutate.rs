//! Netlist fault injection for verifying the verifier.
//!
//! The paper's methodology exposed "dozens of high-quality bugs"; to show
//! our reproduction has the same bug-finding power, these mutators inject
//! single-gate faults into a netlist (polarity flips, gate-type swaps, stuck
//! nodes), after which the verification flow must produce a counterexample.

use fmaverify_netlist::{Netlist, Node, NodeId, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of single-gate fault to inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// Invert the output of the gate.
    InvertOutput,
    /// Invert the first operand edge.
    InvertInputA,
    /// Turn the AND into an OR of the same operands.
    AndToOr,
    /// Turn the AND into an XOR of the same operands.
    AndToXor,
    /// Replace the gate by its first operand (a missing-logic bug).
    PassThroughA,
}

impl MutationKind {
    /// All mutation kinds.
    pub const ALL: [MutationKind; 5] = [
        MutationKind::InvertOutput,
        MutationKind::InvertInputA,
        MutationKind::AndToOr,
        MutationKind::AndToXor,
        MutationKind::PassThroughA,
    ];

    /// A short stable label, e.g. for kill-matrix rows and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::InvertOutput => "invert_output",
            MutationKind::InvertInputA => "invert_input_a",
            MutationKind::AndToOr => "and_to_or",
            MutationKind::AndToXor => "and_to_xor",
            MutationKind::PassThroughA => "pass_through_a",
        }
    }
}

/// A performed mutation, for reporting.
#[derive(Clone, Copy, Debug)]
pub struct Mutation {
    /// The mutated AND node (in the original netlist's numbering).
    pub node: NodeId,
    /// The fault kind.
    pub kind: MutationKind,
}

/// Rebuilds `netlist` with a single fault injected at `target` (which must
/// be an AND node). Outputs, probes, inputs, and latches are preserved by
/// name and order, so signals can be looked up as before.
///
/// # Panics
/// Panics if `target` is not an AND node.
pub fn inject_fault(netlist: &Netlist, target: NodeId, kind: MutationKind) -> Netlist {
    assert!(
        matches!(netlist.node(target), Node::And(..)),
        "mutation target must be an AND gate"
    );
    let mut out = Netlist::new();
    let mut remap: Vec<Signal> = vec![Signal::FALSE; netlist.num_nodes()];
    for id in netlist.node_ids() {
        let new_sig = match netlist.node(id) {
            Node::Const => Signal::FALSE,
            Node::Input { name } => out.input(name.clone()),
            Node::Latch { init, .. } => out.latch(*init),
            Node::And(a, b) => {
                let la = apply(&remap, *a);
                let lb = apply(&remap, *b);
                if id == target {
                    match kind {
                        MutationKind::InvertOutput => {
                            let g = out.and(la, lb);
                            !g
                        }
                        MutationKind::InvertInputA => out.and(!la, lb),
                        MutationKind::AndToOr => out.or(la, lb),
                        MutationKind::AndToXor => out.xor(la, lb),
                        MutationKind::PassThroughA => la,
                    }
                } else {
                    out.and(la, lb)
                }
            }
        };
        remap[id.index()] = new_sig;
    }
    for &l in netlist.latches() {
        if let Node::Latch {
            next, connected, ..
        } = netlist.node(l)
        {
            if *connected {
                let nn = apply(&remap, *next);
                out.set_latch_next(remap[l.index()], nn);
            }
        }
    }
    for (name, sig) in netlist.outputs() {
        let s = apply(&remap, *sig);
        out.output(name.clone(), s);
    }
    for name in netlist.probe_names() {
        let sig = netlist.find_probe(name).expect("probe exists");
        let s = apply(&remap, sig);
        out.probe(name.to_string(), s);
    }
    out
}

/// Which cone of influence candidate gates are drawn from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateScope {
    /// The combinational cone only: traversal stops at latch boundaries,
    /// so gates feeding a pipeline register are out of reach. Use this when
    /// the fault must stay in the same clock cycle as the observation
    /// points (e.g. the cache fingerprint-sensitivity tests).
    Comb,
    /// The sequential cone: traversal continues through latch next-state
    /// functions, reaching every gate that can influence the observation
    /// points in *any* cycle. This is the right scope for pipelined
    /// implementations.
    Seq,
}

/// The AND gates eligible for fault injection: every AND node in the
/// `scope` cone of `within`.
pub fn fault_candidates(
    netlist: &Netlist,
    within: &[Signal],
    scope: CandidateScope,
) -> Vec<NodeId> {
    let cone = match scope {
        CandidateScope::Comb => netlist.comb_cone(within),
        CandidateScope::Seq => netlist.seq_cone(within),
    };
    netlist
        .node_ids()
        .filter(|id| cone[id.index()] && matches!(netlist.node(*id), Node::And(..)))
        .collect()
}

/// Picks a random AND node inside the *sequential* cone of `within` and
/// injects a random fault. Returns the mutated netlist and a description of
/// the fault.
///
/// Earlier revisions sampled from the combinational cone, which on a
/// pipelined implementation silently excluded every gate behind a latch;
/// use [`random_fault_in`] with [`CandidateScope::Comb`] to get that
/// behavior on purpose.
pub fn random_fault(netlist: &Netlist, within: &[Signal], seed: u64) -> (Netlist, Mutation) {
    random_fault_in(netlist, within, CandidateScope::Seq, seed)
}

/// [`random_fault`] with an explicit candidate [`CandidateScope`].
///
/// # Panics
/// Panics if the chosen cone contains no AND gates.
pub fn random_fault_in(
    netlist: &Netlist,
    within: &[Signal],
    scope: CandidateScope,
    seed: u64,
) -> (Netlist, Mutation) {
    let candidates = fault_candidates(netlist, within, scope);
    assert!(!candidates.is_empty(), "cone contains no AND gates");
    let mut rng = StdRng::seed_from_u64(seed);
    let node = candidates[rng.gen_range(0..candidates.len())];
    let kind = MutationKind::ALL[rng.gen_range(0..MutationKind::ALL.len())];
    (inject_fault(netlist, node, kind), Mutation { node, kind })
}

#[inline]
fn apply(remap: &[Signal], sig: Signal) -> Signal {
    let body = remap[sig.node().index()];
    if sig.is_inverted() {
        !body
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_netlist::BitSim;

    #[test]
    fn mutation_changes_function() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let b = n.word_input("b", 4);
        let s = n.add(&a, &b);
        for (i, &bit) in s.bits().iter().enumerate() {
            n.output(format!("s[{i}]"), bit);
        }
        let (mutated, mutation) = random_fault(&n, s.bits(), 99);
        assert!(matches!(
            n.node(mutation.node),
            fmaverify_netlist::Node::And(..)
        ));
        // Some input pattern must now disagree with the original.
        let mut diff = false;
        'outer: for va in 0..16u128 {
            for vb in 0..16u128 {
                let mut s0 = BitSim::new(&n);
                let mut s1 = BitSim::new(&mutated);
                for i in 0..4 {
                    let na = format!("a[{i}]");
                    let nb = format!("b[{i}]");
                    s0.set(n.find_input(&na).expect("input"), va >> i & 1 == 1);
                    s0.set(n.find_input(&nb).expect("input"), vb >> i & 1 == 1);
                    s1.set(mutated.find_input(&na).expect("input"), va >> i & 1 == 1);
                    s1.set(mutated.find_input(&nb).expect("input"), vb >> i & 1 == 1);
                }
                s0.eval();
                s1.eval();
                for i in 0..4 {
                    let name = format!("s[{i}]");
                    let o0 = n.find_output(&name).expect("output");
                    let o1 = mutated.find_output(&name).expect("output");
                    if s0.get(o0) != s1.get(o1) {
                        diff = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(diff, "the fault must be observable on some input");
    }

    /// A two-cycle toy pipeline: `stage = a AND b` is registered, and the
    /// output reads the register through logic and an inverted edge.
    fn pipelined_toy() -> (Netlist, Signal, Signal) {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let l = n.latch(false);
        let stage = n.and(a, b);
        n.set_latch_next(l, stage);
        let q = n.and(l, a);
        let out = !q;
        n.output("q", out);
        n.probe("stage", stage);
        (n, stage, out)
    }

    #[test]
    fn seq_scope_reaches_gates_behind_latches() {
        let (n, stage, out) = pipelined_toy();
        let comb = fault_candidates(&n, &[out], CandidateScope::Comb);
        let seq = fault_candidates(&n, &[out], CandidateScope::Seq);
        assert!(
            !comb.contains(&stage.node()),
            "comb scope must stop at the latch"
        );
        assert!(
            seq.contains(&stage.node()),
            "seq scope must traverse the latch next-state"
        );
        assert!(seq.len() > comb.len());

        // The default `random_fault` can now land behind the latch: on a
        // netlist whose only AND feeds a register, the old comb-cone
        // sampling had nothing to pick from.
        let mut m = Netlist::new();
        let x = m.input("x");
        let y = m.input("y");
        let r = m.latch(false);
        let g = m.and(x, y);
        m.set_latch_next(r, g);
        m.output("r", r);
        assert!(fault_candidates(&m, &[r], CandidateScope::Comb).is_empty());
        let (_, fault) = random_fault(&m, &[r], 3);
        assert_eq!(fault.node, g.node());
    }

    #[test]
    fn sequential_fault_remaps_latch_next_state() {
        let (n, stage, _) = pipelined_toy();
        let m = inject_fault(&n, stage.node(), MutationKind::InvertOutput);
        assert_eq!(m.num_latches(), n.num_latches(), "latches preserved");
        assert!(
            m.find_probe("stage").is_some(),
            "probes survive the rebuild"
        );
        // Cycle-accurate check with a=b=1 held: clean registers 1 after the
        // first step (q = !(l & a) flips 1 -> 0); the mutant's inverted
        // stage registers 0, so q stays 1.
        let run = |net: &Netlist| -> Vec<bool> {
            let out = net.find_output("q").expect("output");
            let mut sim = BitSim::new(net);
            sim.set(net.find_input("a").expect("a"), true);
            sim.set(net.find_input("b").expect("b"), true);
            let mut vals = Vec::new();
            for _ in 0..2 {
                sim.eval();
                vals.push(sim.get(out));
                sim.step();
            }
            vals
        };
        assert_eq!(run(&n), vec![true, false]);
        assert_eq!(run(&m), vec![true, true], "the fault must cross the latch");
    }

    #[test]
    fn sequential_fault_preserves_inverted_latch_next_edges() {
        // The latch next is connected through an INVERTED edge; the rebuild
        // must re-apply the inversion to the remapped signal.
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let l = n.latch(false);
        let g = n.and(a, b);
        n.set_latch_next(l, !g);
        n.output("r", l);
        n.probe("next", !g);
        let m = inject_fault(&n, g.node(), MutationKind::AndToOr);
        // With a=1, b=0: clean next = !(1&0) = 1; mutant next = !(1|0) = 0.
        let run = |net: &Netlist| -> bool {
            let out = net.find_output("r").expect("output");
            let mut sim = BitSim::new(net);
            sim.set(net.find_input("a").expect("a"), true);
            sim.set(net.find_input("b").expect("b"), false);
            sim.eval();
            sim.step();
            sim.eval();
            sim.get(out)
        };
        assert!(run(&n), "clean latch loads the inverted AND");
        assert!(!run(&m), "mutant latch loads the inverted OR");
        assert!(m.find_probe("next").is_some());
    }

    #[test]
    fn all_kinds_apply() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and(a, b);
        n.output("g", g);
        for kind in MutationKind::ALL {
            let m = inject_fault(&n, g.node(), kind);
            let out = m.find_output("g").expect("output");
            let mut sim = BitSim::new(&m);
            sim.set(m.find_input("a").expect("a"), true);
            sim.set(m.find_input("b").expect("b"), true);
            sim.eval();
            let v = sim.get(out);
            let expect = match kind {
                MutationKind::InvertOutput => false,
                MutationKind::InvertInputA => false,
                MutationKind::AndToOr => true,
                MutationKind::AndToXor => false,
                MutationKind::PassThroughA => true,
            };
            assert_eq!(v, expect, "{kind:?}");
        }
    }
}
