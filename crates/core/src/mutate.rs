//! Netlist fault injection for verifying the verifier.
//!
//! The paper's methodology exposed "dozens of high-quality bugs"; to show
//! our reproduction has the same bug-finding power, these mutators inject
//! single-gate faults into a netlist (polarity flips, gate-type swaps, stuck
//! nodes), after which the verification flow must produce a counterexample.

use fmaverify_netlist::{Netlist, Node, NodeId, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of single-gate fault to inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// Invert the output of the gate.
    InvertOutput,
    /// Invert the first operand edge.
    InvertInputA,
    /// Turn the AND into an OR of the same operands.
    AndToOr,
    /// Turn the AND into an XOR of the same operands.
    AndToXor,
    /// Replace the gate by its first operand (a missing-logic bug).
    PassThroughA,
}

impl MutationKind {
    /// All mutation kinds.
    pub const ALL: [MutationKind; 5] = [
        MutationKind::InvertOutput,
        MutationKind::InvertInputA,
        MutationKind::AndToOr,
        MutationKind::AndToXor,
        MutationKind::PassThroughA,
    ];
}

/// A performed mutation, for reporting.
#[derive(Clone, Copy, Debug)]
pub struct Mutation {
    /// The mutated AND node (in the original netlist's numbering).
    pub node: NodeId,
    /// The fault kind.
    pub kind: MutationKind,
}

/// Rebuilds `netlist` with a single fault injected at `target` (which must
/// be an AND node). Outputs, probes, inputs, and latches are preserved by
/// name and order, so signals can be looked up as before.
///
/// # Panics
/// Panics if `target` is not an AND node.
pub fn inject_fault(netlist: &Netlist, target: NodeId, kind: MutationKind) -> Netlist {
    assert!(
        matches!(netlist.node(target), Node::And(..)),
        "mutation target must be an AND gate"
    );
    let mut out = Netlist::new();
    let mut remap: Vec<Signal> = vec![Signal::FALSE; netlist.num_nodes()];
    for id in netlist.node_ids() {
        let new_sig = match netlist.node(id) {
            Node::Const => Signal::FALSE,
            Node::Input { name } => out.input(name.clone()),
            Node::Latch { init, .. } => out.latch(*init),
            Node::And(a, b) => {
                let la = apply(&remap, *a);
                let lb = apply(&remap, *b);
                if id == target {
                    match kind {
                        MutationKind::InvertOutput => {
                            let g = out.and(la, lb);
                            !g
                        }
                        MutationKind::InvertInputA => out.and(!la, lb),
                        MutationKind::AndToOr => out.or(la, lb),
                        MutationKind::AndToXor => out.xor(la, lb),
                        MutationKind::PassThroughA => la,
                    }
                } else {
                    out.and(la, lb)
                }
            }
        };
        remap[id.index()] = new_sig;
    }
    for &l in netlist.latches() {
        if let Node::Latch {
            next, connected, ..
        } = netlist.node(l)
        {
            if *connected {
                let nn = apply(&remap, *next);
                out.set_latch_next(remap[l.index()], nn);
            }
        }
    }
    for (name, sig) in netlist.outputs() {
        let s = apply(&remap, *sig);
        out.output(name.clone(), s);
    }
    for name in netlist.probe_names() {
        let sig = netlist.find_probe(name).expect("probe exists");
        let s = apply(&remap, sig);
        out.probe(name.to_string(), s);
    }
    out
}

/// Picks a random AND node inside the cone of `within` and injects a random
/// fault. Returns the mutated netlist and a description of the fault.
pub fn random_fault(netlist: &Netlist, within: &[Signal], seed: u64) -> (Netlist, Mutation) {
    let cone = netlist.comb_cone(within);
    let candidates: Vec<NodeId> = netlist
        .node_ids()
        .filter(|id| cone[id.index()] && matches!(netlist.node(*id), Node::And(..)))
        .collect();
    assert!(!candidates.is_empty(), "cone contains no AND gates");
    let mut rng = StdRng::seed_from_u64(seed);
    let node = candidates[rng.gen_range(0..candidates.len())];
    let kind = MutationKind::ALL[rng.gen_range(0..MutationKind::ALL.len())];
    (inject_fault(netlist, node, kind), Mutation { node, kind })
}

#[inline]
fn apply(remap: &[Signal], sig: Signal) -> Signal {
    let body = remap[sig.node().index()];
    if sig.is_inverted() {
        !body
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_netlist::BitSim;

    #[test]
    fn mutation_changes_function() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let b = n.word_input("b", 4);
        let s = n.add(&a, &b);
        for (i, &bit) in s.bits().iter().enumerate() {
            n.output(format!("s[{i}]"), bit);
        }
        let (mutated, mutation) = random_fault(&n, s.bits(), 99);
        assert!(matches!(
            n.node(mutation.node),
            fmaverify_netlist::Node::And(..)
        ));
        // Some input pattern must now disagree with the original.
        let mut diff = false;
        'outer: for va in 0..16u128 {
            for vb in 0..16u128 {
                let mut s0 = BitSim::new(&n);
                let mut s1 = BitSim::new(&mutated);
                for i in 0..4 {
                    let na = format!("a[{i}]");
                    let nb = format!("b[{i}]");
                    s0.set(n.find_input(&na).expect("input"), va >> i & 1 == 1);
                    s0.set(n.find_input(&nb).expect("input"), vb >> i & 1 == 1);
                    s1.set(mutated.find_input(&na).expect("input"), va >> i & 1 == 1);
                    s1.set(mutated.find_input(&nb).expect("input"), vb >> i & 1 == 1);
                }
                s0.eval();
                s1.eval();
                for i in 0..4 {
                    let name = format!("s[{i}]");
                    let o0 = n.find_output(&name).expect("output");
                    let o1 = mutated.find_output(&name).expect("output");
                    if s0.get(o0) != s1.get(o1) {
                        diff = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(diff, "the fault must be observable on some input");
    }

    #[test]
    fn all_kinds_apply() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and(a, b);
        n.output("g", g);
        for kind in MutationKind::ALL {
            let m = inject_fault(&n, g.node(), kind);
            let out = m.find_output("g").expect("output");
            let mut sim = BitSim::new(&m);
            sim.set(m.find_input("a").expect("a"), true);
            sim.set(m.find_input("b").expect("b"), true);
            sim.eval();
            let v = sim.get(out);
            let expect = match kind {
                MutationKind::InvertOutput => false,
                MutationKind::InvertInputA => false,
                MutationKind::AndToOr => true,
                MutationKind::AndToXor => false,
                MutationKind::PassThroughA => true,
            };
            assert_eq!(v, expect, "{kind:?}");
        }
    }
}
