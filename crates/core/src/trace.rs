//! Verification telemetry: spans, counters, and JSONL traces.
//!
//! The paper's Table 1 is a story of measured engine effort — per-case BDD
//! node counts, SAT conflicts, and runtimes across 585 cases. This module is
//! the measurement substrate: a [`Tracer`] hands out hierarchical spans
//! (run → case → engine-stage → operation) and per-thread counter slots, and
//! streams everything as JSONL events through a pluggable [`TraceSink`].
//! [`summary`] folds a JSONL stream back into per-case and per-engine tables.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled collection is near-zero cost.** [`Tracer::disabled`] is an
//!    `Option::None` wrapper: creating a span is a null check, counter adds
//!    are a branch on a `None` slot, and span names are built lazily
//!    (closures) so the `format!` never runs. The engines themselves stay
//!    tracer-free — they count locally into their existing stats structs
//!    (`BddStats`, `SolverStats`, `SweepResult`) and the scheduler folds
//!    those into the registry after each attempt.
//! 2. **No cross-thread contention on the hot path.** The
//!    [`MetricsRegistry`] gives each scheduler worker its own slot of
//!    atomic counters (registered once per thread, written with relaxed
//!    ordering by that thread only); totals are a cold-path sum.
//! 3. **No external dependencies.** Events render through the hand-rolled
//!    [`crate::json`] module; crates.io is unreachable in the build
//!    environment.
//!
//! Spans parent explicitly by ID rather than through thread-local ambient
//! context: the scheduler hands a case to whichever worker steals it, so the
//! parent (the run span) lives on a different thread than the child.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::Error;
use crate::json::{JsonValue, ToJson};

/// Every counter the instrumented subsystems report.
///
/// The discriminant doubles as the index into a [`MetricsRegistry`] thread
/// slot, so adding a variant is all that is needed to plumb a new counter
/// end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// BDD manager: recursive apply/`ite` (and minimization/quantification)
    /// calls.
    BddIteCalls,
    /// BDD manager: computed-table hits.
    BddCacheHits,
    /// BDD manager: computed-table misses.
    BddCacheMisses,
    /// BDD manager: nodes created (survives GC, unlike the live count).
    BddNodesAllocated,
    /// BDD manager: peak live nodes observed across attempts (reported as a
    /// high-water mark, merged with `max` rather than `+` in summaries).
    BddPeakLiveNodes,
    /// BDD manager: garbage collections.
    BddGcRuns,
    /// BDD manager: computed-cache entries overwritten by a colliding store
    /// (the direct-mapped cache is lossy; this counts its replacement
    /// pressure).
    BddCacheEvictions,
    /// BDD manager: unique-table probe steps beyond the home slot (linear
    /// probing; 0 extra probes means every lookup hit its hash bucket).
    BddUniqueProbes,
    /// BDD manager: arena nodes freed by garbage collections.
    BddGcFreed,
    /// BDD manager: computed-cache slots occupied at snapshot time (reported
    /// as a high-water mark, merged with `max` rather than `+`).
    BddCacheOccupancy,
    /// SAT solver: decisions.
    SatDecisions,
    /// SAT solver: unit propagations.
    SatPropagations,
    /// SAT solver: conflicts.
    SatConflicts,
    /// SAT solver: restarts.
    SatRestarts,
    /// Netlist sweeping: nodes merged as proven equivalent.
    SweepMerges,
    /// Netlist sweeping: SAT equivalence queries issued.
    SweepSatCalls,
    /// Netlist sweeping: simulation rounds (seed + refinement).
    SweepSimRounds,
    /// Scheduler: cases a worker stole from a neighbour's queue.
    SchedSteals,
    /// Scheduler: escalations to the next engine rung in the policy ladder.
    SchedEscalations,
    /// Scheduler: cases completed.
    SchedCasesCompleted,
    /// Scheduler: total time cases spent queued before pickup, in
    /// microseconds.
    SchedQueueLatencyMicros,
    /// Proof cache: cases replayed from a cached verdict instead of running
    /// an engine.
    CacheHits,
    /// Proof cache: cases whose fingerprint was not in the cache (engines
    /// ran).
    CacheMisses,
    /// Proof cache: fresh verdicts written back to the cache.
    CacheStores,
    /// Mutation campaign: mutants verified (killed + survived + budget).
    CampaignMutants,
    /// Mutation campaign: mutants killed by a replay-confirmed
    /// counterexample.
    CampaignKilled,
    /// Mutation campaign: mutants every case of which held — a coverage
    /// hole or checker bug.
    CampaignSurvived,
    /// Mutation campaign: mutants left undecided by engine budgets.
    CampaignBudgetExceeded,
    /// Mutation campaign: sampled candidate faults skipped because random
    /// simulation found no witness (likely functionally equivalent).
    CampaignSkippedUnobserved,
}

impl Counter {
    /// All counters, in slot order.
    pub const ALL: [Counter; 29] = [
        Counter::BddIteCalls,
        Counter::BddCacheHits,
        Counter::BddCacheMisses,
        Counter::BddNodesAllocated,
        Counter::BddPeakLiveNodes,
        Counter::BddGcRuns,
        Counter::BddCacheEvictions,
        Counter::BddUniqueProbes,
        Counter::BddGcFreed,
        Counter::BddCacheOccupancy,
        Counter::SatDecisions,
        Counter::SatPropagations,
        Counter::SatConflicts,
        Counter::SatRestarts,
        Counter::SweepMerges,
        Counter::SweepSatCalls,
        Counter::SweepSimRounds,
        Counter::SchedSteals,
        Counter::SchedEscalations,
        Counter::SchedCasesCompleted,
        Counter::SchedQueueLatencyMicros,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheStores,
        Counter::CampaignMutants,
        Counter::CampaignKilled,
        Counter::CampaignSurvived,
        Counter::CampaignBudgetExceeded,
        Counter::CampaignSkippedUnobserved,
    ];

    /// Stable dotted name used in JSON output (e.g. `"bdd.ite_calls"`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::BddIteCalls => "bdd.ite_calls",
            Counter::BddCacheHits => "bdd.cache_hits",
            Counter::BddCacheMisses => "bdd.cache_misses",
            Counter::BddNodesAllocated => "bdd.nodes_allocated",
            Counter::BddPeakLiveNodes => "bdd.peak_live_nodes",
            Counter::BddGcRuns => "bdd.gc_runs",
            Counter::BddCacheEvictions => "bdd.cache_evictions",
            Counter::BddUniqueProbes => "bdd.unique_probes",
            Counter::BddGcFreed => "bdd.gc_freed",
            Counter::BddCacheOccupancy => "bdd.cache_occupancy",
            Counter::SatDecisions => "sat.decisions",
            Counter::SatPropagations => "sat.propagations",
            Counter::SatConflicts => "sat.conflicts",
            Counter::SatRestarts => "sat.restarts",
            Counter::SweepMerges => "sweep.merges",
            Counter::SweepSatCalls => "sweep.sat_calls",
            Counter::SweepSimRounds => "sweep.sim_rounds",
            Counter::SchedSteals => "sched.steals",
            Counter::SchedEscalations => "sched.escalations",
            Counter::SchedCasesCompleted => "sched.cases_completed",
            Counter::SchedQueueLatencyMicros => "sched.queue_latency_us",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::CacheStores => "cache.stores",
            Counter::CampaignMutants => "campaign.mutants",
            Counter::CampaignKilled => "campaign.killed",
            Counter::CampaignSurvived => "campaign.survived",
            Counter::CampaignBudgetExceeded => "campaign.budget_exceeded",
            Counter::CampaignSkippedUnobserved => "campaign.skipped_unobserved",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// The registry slot index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this counter is a high-water mark (merged with `max`) rather
    /// than a monotonic sum.
    pub fn is_gauge(self) -> bool {
        matches!(self, Counter::BddPeakLiveNodes | Counter::BddCacheOccupancy)
    }
}

const COUNTER_COUNT: usize = Counter::ALL.len();

/// A small named bag of counter values, used to carry per-attempt metrics
/// on [`crate::EngineStats`] and per-span metrics on trace events.
///
/// Backed by a sorted `Vec` rather than a map: a typical attempt touches a
/// handful of counters and results are cloned into attempt logs, so small
/// and cheap beats asymptotics here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    entries: Vec<(Counter, u64)>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Adds `value` to `counter` (gauges take the max instead).
    pub fn add(&mut self, counter: Counter, value: u64) {
        if value == 0 {
            return;
        }
        match self.entries.binary_search_by_key(&counter, |e| e.0) {
            Ok(i) => {
                if counter.is_gauge() {
                    self.entries[i].1 = self.entries[i].1.max(value);
                } else {
                    self.entries[i].1 += value;
                }
            }
            Err(i) => self.entries.insert(i, (counter, value)),
        }
    }

    /// The current value of `counter` (0 if never touched).
    pub fn get(&self, counter: Counter) -> u64 {
        self.entries
            .binary_search_by_key(&counter, |e| e.0)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Folds another set into this one (respecting gauge semantics).
    pub fn merge(&mut self, other: &MetricSet) {
        for &(c, v) in &other.entries {
            self.add(c, v);
        }
    }

    /// Iterates over the non-zero entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// True if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the object form emitted by [`MetricSet::to_json`], ignoring
    /// unknown counter names (forward compatibility).
    pub fn from_json(value: &JsonValue) -> MetricSet {
        let mut out = MetricSet::new();
        if let Some(fields) = value.as_object() {
            for (k, v) in fields {
                if let (Some(c), Some(n)) = (Counter::from_name(k), v.as_u64()) {
                    out.add(c, n);
                }
            }
        }
        out
    }
}

impl ToJson for MetricSet {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries
                .iter()
                .map(|&(c, v)| (c.name().to_string(), JsonValue::int(v)))
                .collect(),
        )
    }
}

impl FromIterator<(Counter, u64)> for MetricSet {
    fn from_iter<I: IntoIterator<Item = (Counter, u64)>>(iter: I) -> MetricSet {
        let mut out = MetricSet::new();
        for (c, v) in iter {
            out.add(c, v);
        }
        out
    }
}

#[derive(Debug)]
struct ThreadSlot {
    counts: [AtomicU64; COUNTER_COUNT],
}

impl ThreadSlot {
    fn new() -> ThreadSlot {
        ThreadSlot {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Per-thread counter storage.
///
/// Each scheduler worker calls [`MetricsRegistry::register`] once and then
/// increments its private slot with relaxed atomics — no locks and no
/// cache-line ping-pong between workers on the hot path ("lock-free-ish":
/// the slot list itself is behind a mutex, taken only at registration and
/// when summing totals).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<Vec<Arc<ThreadSlot>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Allocates a fresh thread slot. Call once per worker thread.
    pub fn register(&self) -> MetricsHandle {
        let slot = Arc::new(ThreadSlot::new());
        self.slots.lock().unwrap().push(Arc::clone(&slot));
        MetricsHandle { slot: Some(slot) }
    }

    /// Number of thread slots registered so far.
    pub fn threads(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Sums all thread slots into one [`MetricSet`] (gauges take the max
    /// across threads).
    pub fn totals(&self) -> MetricSet {
        let slots = self.slots.lock().unwrap();
        let mut out = MetricSet::new();
        for slot in slots.iter() {
            for c in Counter::ALL {
                let v = slot.counts[c.index()].load(Ordering::Relaxed);
                out.add(c, v);
            }
        }
        out
    }
}

/// A writer handle into a [`MetricsRegistry`] thread slot.
///
/// The no-op form (from [`Tracer::handle`] on a disabled tracer, or
/// [`MetricsHandle::noop`]) makes every operation a single branch.
#[derive(Clone, Debug)]
pub struct MetricsHandle {
    slot: Option<Arc<ThreadSlot>>,
}

impl MetricsHandle {
    /// A handle that discards everything.
    pub fn noop() -> MetricsHandle {
        MetricsHandle { slot: None }
    }

    /// True if increments actually land somewhere.
    pub fn is_recording(&self) -> bool {
        self.slot.is_some()
    }

    /// Adds `value` to `counter` (gauges take the max).
    #[inline]
    pub fn add(&self, counter: Counter, value: u64) {
        if let Some(slot) = &self.slot {
            let cell = &slot.counts[counter.index()];
            if counter.is_gauge() {
                cell.fetch_max(value, Ordering::Relaxed);
            } else {
                cell.fetch_add(value, Ordering::Relaxed);
            }
        }
    }

    /// Folds a whole [`MetricSet`] into the slot.
    pub fn add_set(&self, metrics: &MetricSet) {
        if self.slot.is_some() {
            for (c, v) in metrics.iter() {
                self.add(c, v);
            }
        }
    }
}

/// The kind of work a [`Span`] brackets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole verification run (one instruction, all cases).
    Run,
    /// One case of the paper's case split.
    Case,
    /// One engine attempt within a case's escalation ladder.
    Stage,
    /// A sub-operation (harness build, constraint generation, replay, …).
    Op,
}

impl SpanKind {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Case => "case",
            SpanKind::Stage => "stage",
            SpanKind::Op => "op",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<SpanKind> {
        match name {
            "run" => Some(SpanKind::Run),
            "case" => Some(SpanKind::Case),
            "stage" => Some(SpanKind::Stage),
            "op" => Some(SpanKind::Op),
            _ => None,
        }
    }
}

/// One telemetry event in the JSONL stream.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A span opened.
    SpanStart {
        /// Span ID (unique within the tracer, starting at 1).
        id: u64,
        /// Parent span ID, if any.
        parent: Option<u64>,
        /// What kind of work this brackets.
        kind: SpanKind,
        /// Human-readable name (e.g. the case ID).
        name: String,
        /// Time since the tracer's epoch.
        t: Duration,
    },
    /// A span closed (carries the payload: duration, metrics, fields).
    SpanEnd {
        /// Span ID matching the corresponding start event.
        id: u64,
        /// Parent span ID, if any (repeated so consumers need not join).
        parent: Option<u64>,
        /// What kind of work this brackets.
        kind: SpanKind,
        /// Human-readable name.
        name: String,
        /// Time since the tracer's epoch at close.
        t: Duration,
        /// Wall time between open and close.
        dur: Duration,
        /// Counters recorded on this span.
        metrics: MetricSet,
        /// Free-form annotations (verdict, engine, …).
        fields: Vec<(String, JsonValue)>,
    },
    /// Registry totals, emitted at the end of a run.
    Totals {
        /// Time since the tracer's epoch.
        t: Duration,
        /// Summed counters across all thread slots.
        metrics: MetricSet,
        /// Number of thread slots that contributed.
        threads: usize,
    },
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> JsonValue {
        fn secs(d: &Duration) -> JsonValue {
            JsonValue::Number(d.as_secs_f64())
        }
        match self {
            TraceEvent::SpanStart {
                id,
                parent,
                kind,
                name,
                t,
            } => JsonValue::object(vec![
                ("type", JsonValue::string("span_start")),
                ("id", JsonValue::int(*id)),
                ("parent", JsonValue::opt(*parent, JsonValue::int)),
                ("kind", JsonValue::string(kind.name())),
                ("name", JsonValue::string(name.clone())),
                ("t", secs(t)),
            ]),
            TraceEvent::SpanEnd {
                id,
                parent,
                kind,
                name,
                t,
                dur,
                metrics,
                fields,
            } => {
                let mut obj = vec![
                    ("type".to_string(), JsonValue::string("span_end")),
                    ("id".to_string(), JsonValue::int(*id)),
                    (
                        "parent".to_string(),
                        JsonValue::opt(*parent, JsonValue::int),
                    ),
                    ("kind".to_string(), JsonValue::string(kind.name())),
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("t".to_string(), secs(t)),
                    ("dur".to_string(), secs(dur)),
                    ("metrics".to_string(), metrics.to_json()),
                ];
                for (k, v) in fields {
                    obj.push((k.clone(), v.clone()));
                }
                JsonValue::Object(obj)
            }
            TraceEvent::Totals {
                t,
                metrics,
                threads,
            } => JsonValue::object(vec![
                ("type", JsonValue::string("totals")),
                ("t", secs(t)),
                ("threads", JsonValue::int(*threads as u64)),
                ("metrics", metrics.to_json()),
            ]),
        }
    }
}

impl TraceEvent {
    /// Parses one JSONL line back into an event.
    pub fn from_json(value: &JsonValue) -> Result<TraceEvent, Error> {
        let schema = |message: &str| Error::TraceSchema {
            message: message.to_string(),
        };
        let ty = value
            .get("type")
            .and_then(|v| v.as_str())
            .ok_or_else(|| schema("missing \"type\""))?;
        let dur_field = |key: &str| -> Result<Duration, Error> {
            value
                .get(key)
                .and_then(|v| v.as_f64())
                .filter(|s| *s >= 0.0 && s.is_finite())
                .map(Duration::from_secs_f64)
                .ok_or_else(|| schema(&format!("missing or invalid \"{key}\"")))
        };
        match ty {
            "span_start" | "span_end" => {
                let id = value
                    .get("id")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| schema("missing \"id\""))?;
                let parent = value.get("parent").and_then(|v| v.as_u64());
                let kind = value
                    .get("kind")
                    .and_then(|v| v.as_str())
                    .and_then(SpanKind::from_name)
                    .ok_or_else(|| schema("missing or unknown \"kind\""))?;
                let name = value
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| schema("missing \"name\""))?
                    .to_string();
                let t = dur_field("t")?;
                if ty == "span_start" {
                    return Ok(TraceEvent::SpanStart {
                        id,
                        parent,
                        kind,
                        name,
                        t,
                    });
                }
                let dur = dur_field("dur")?;
                let metrics = value
                    .get("metrics")
                    .map(MetricSet::from_json)
                    .unwrap_or_default();
                const KNOWN: [&str; 8] = [
                    "type", "id", "parent", "kind", "name", "t", "dur", "metrics",
                ];
                let fields = value
                    .as_object()
                    .unwrap_or(&[])
                    .iter()
                    .filter(|(k, _)| !KNOWN.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                Ok(TraceEvent::SpanEnd {
                    id,
                    parent,
                    kind,
                    name,
                    t,
                    dur,
                    metrics,
                    fields,
                })
            }
            "totals" => Ok(TraceEvent::Totals {
                t: dur_field("t")?,
                metrics: value
                    .get("metrics")
                    .map(MetricSet::from_json)
                    .unwrap_or_default(),
                threads: value.get("threads").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
            }),
            other => Err(schema(&format!("unknown event type {other:?}"))),
        }
    }
}

/// Where trace events go.
///
/// Sinks must tolerate concurrent `record` calls: scheduler workers close
/// case spans from their own threads.
pub trait TraceSink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &TraceEvent);
    /// Flushes buffered output (called at the end of a run).
    fn flush(&self) {}
}

/// Streams events as one compact JSON object per line.
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: std::io::Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut line = event.to_json().render();
        line.push('\n');
        // Telemetry must never take down a verification run: I/O errors on
        // the sink are dropped.
        let _ = self.writer.lock().unwrap().write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// Buffers events in memory; useful in tests and for post-run summaries
/// without touching the filesystem.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Renders the buffered events as a JSONL document.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events.lock().unwrap().iter() {
            out.push_str(&ev.to_json().render());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

struct TracerInner {
    sink: Box<dyn TraceSink>,
    epoch: Instant,
    next_id: AtomicU64,
    registry: MetricsRegistry,
}

/// Handle to the telemetry pipeline; cheap to clone, `None` inside when
/// disabled so every operation short-circuits on one branch.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer (this is also `Default`).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer feeding the given sink.
    pub fn new(sink: impl TraceSink + 'static) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink: Box::new(sink),
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                registry: MetricsRegistry::new(),
            })),
        }
    }

    /// A tracer writing JSONL to an arbitrary writer.
    pub fn to_jsonl_writer(writer: impl std::io::Write + Send + 'static) -> Tracer {
        Tracer::new(JsonlSink::new(writer))
    }

    /// A tracer writing JSONL to a file (created/truncated), buffered.
    pub fn to_jsonl_file(path: impl AsRef<std::path::Path>) -> Result<Tracer, Error> {
        let path = path.as_ref();
        let file =
            std::fs::File::create(path).map_err(|e| Error::io(path.display().to_string(), &e))?;
        Ok(Tracer::to_jsonl_writer(std::io::BufWriter::new(file)))
    }

    /// A tracer buffering into memory, returning the sink for inspection.
    pub fn in_memory() -> (Tracer, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer {
            inner: Some(Arc::new(TracerInner {
                sink: Box::new(SharedSink(Arc::clone(&sink))),
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                registry: MetricsRegistry::new(),
            })),
        };
        (tracer, sink)
    }

    /// True if events are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a per-thread counter slot ([`MetricsHandle::noop`] when
    /// disabled).
    pub fn handle(&self) -> MetricsHandle {
        match &self.inner {
            Some(inner) => inner.registry.register(),
            None => MetricsHandle::noop(),
        }
    }

    /// Current counter totals across all registered threads.
    pub fn totals(&self) -> MetricSet {
        match &self.inner {
            Some(inner) => inner.registry.totals(),
            None => MetricSet::new(),
        }
    }

    /// Opens a root span. The name closure only runs when enabled.
    pub fn span(&self, kind: SpanKind, name: impl FnOnce() -> String) -> Span {
        self.span_child(None, kind, name)
    }

    /// Opens a span under an explicit parent ID (use [`Span::id`] from
    /// another thread; `None` makes a root span).
    pub fn span_child(
        &self,
        parent: Option<u64>,
        kind: SpanKind,
        name: impl FnOnce() -> String,
    ) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
                id: 0,
                parent: None,
                kind,
                name: String::new(),
                start: None,
                metrics: MetricSet::new(),
                fields: Vec::new(),
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let name = name();
        let start = Instant::now();
        inner.sink.record(&TraceEvent::SpanStart {
            id,
            parent,
            kind,
            name: name.clone(),
            t: start.duration_since(inner.epoch),
        });
        Span {
            tracer: self.clone(),
            id,
            parent,
            kind,
            name,
            start: Some(start),
            metrics: MetricSet::new(),
            fields: Vec::new(),
        }
    }

    /// Emits a [`TraceEvent::Totals`] snapshot of the registry.
    pub fn emit_totals(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&TraceEvent::Totals {
                t: inner.epoch.elapsed(),
                metrics: inner.registry.totals(),
                threads: inner.registry.threads(),
            });
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// Adapter so an `Arc`-shared sink can back a tracer.
struct SharedSink(Arc<MemorySink>);

impl TraceSink for SharedSink {
    fn record(&self, event: &TraceEvent) {
        self.0.record(event);
    }
    fn flush(&self) {
        TraceSink::flush(&*self.0);
    }
}

/// An open span; emits a [`TraceEvent::SpanEnd`] with its duration, metrics
/// and fields when dropped. All methods are no-ops on a disabled tracer.
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    kind: SpanKind,
    name: String,
    start: Option<Instant>,
    metrics: MetricSet,
    fields: Vec<(String, JsonValue)>,
}

impl Span {
    /// The span ID (0 when disabled); pass to [`Tracer::span_child`] to
    /// parent work on another thread.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The span ID if recording, for plumbing as an optional parent.
    pub fn parent_id(&self) -> Option<u64> {
        self.start.map(|_| self.id)
    }

    /// True if this span will emit an end event.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// Opens a child span on the same thread.
    pub fn child(&self, kind: SpanKind, name: impl FnOnce() -> String) -> Span {
        self.tracer.span_child(self.parent_id(), kind, name)
    }

    /// Records a counter value on this span (gauges take the max).
    pub fn record(&mut self, counter: Counter, value: u64) {
        if self.start.is_some() {
            self.metrics.add(counter, value);
        }
    }

    /// Folds a [`MetricSet`] into this span's metrics.
    pub fn record_set(&mut self, metrics: &MetricSet) {
        if self.start.is_some() {
            self.metrics.merge(metrics);
        }
    }

    /// Attaches a free-form annotation emitted on the end event.
    pub fn field(&mut self, key: &str, value: JsonValue) {
        if self.start.is_some() {
            self.fields.push((key.to_string(), value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(start), Some(inner)) = (self.start, &self.tracer.inner) else {
            return;
        };
        let now = Instant::now();
        inner.sink.record(&TraceEvent::SpanEnd {
            id: self.id,
            parent: self.parent,
            kind: self.kind,
            name: std::mem::take(&mut self.name),
            t: now.duration_since(inner.epoch),
            dur: now.duration_since(start),
            metrics: std::mem::take(&mut self.metrics),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

pub mod summary {
    //! Folds a JSONL trace stream into per-case and per-engine tables —
    //! the telemetry-side reproduction of the paper's Table 1 columns
    //! (case, BDD nodes, conflicts, CPU time).

    use super::*;

    /// One row per closed `case` span.
    #[derive(Clone, Debug)]
    pub struct CaseRow {
        /// Case name (the `CaseId` debug form, e.g. `"FarOut"`).
        pub name: String,
        /// Name of the engine that produced the final verdict.
        pub engine: String,
        /// Final verdict string (`"holds"`, `"fails"`, …).
        pub verdict: String,
        /// Peak live BDD nodes across the case's attempts.
        pub peak_bdd_nodes: Option<u64>,
        /// SAT conflicts accumulated across the case's attempts.
        pub sat_conflicts: Option<u64>,
        /// Engine attempts (1 = no escalation).
        pub attempts: u64,
        /// Wall time spent on the case.
        pub wall: Duration,
        /// Time the case sat queued before a worker picked it up.
        pub queue_latency: Duration,
        /// Whether a worker stole the case from a neighbour's queue.
        pub stolen: bool,
    }

    /// Aggregate effort per engine, folded from `stage` spans.
    #[derive(Clone, Debug)]
    pub struct EngineRow {
        /// Engine name (e.g. `"bdd"`, `"sat"`).
        pub name: String,
        /// Number of attempts this engine ran.
        pub attempts: usize,
        /// Total wall time across attempts.
        pub wall: Duration,
        /// Summed counters across attempts.
        pub metrics: MetricSet,
    }

    /// The folded view of one JSONL trace stream.
    #[derive(Clone, Debug, Default)]
    pub struct TraceSummary {
        /// Name of the run span, if one closed in the stream.
        pub run_name: Option<String>,
        /// Wall time of the run span.
        pub run_wall: Option<Duration>,
        /// Per-case rows in stream (completion) order.
        pub cases: Vec<CaseRow>,
        /// Per-engine aggregates, sorted by name.
        pub engines: Vec<EngineRow>,
        /// Registry totals from the final `totals` event.
        pub totals: MetricSet,
        /// Thread slots that contributed to `totals`.
        pub threads: usize,
    }

    /// Parses a JSONL stream (one event per line, blank lines ignored) and
    /// folds it into a [`TraceSummary`].
    pub fn summarize_jsonl(text: &str) -> Result<TraceSummary, Error> {
        let mut events = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            events.push(TraceEvent::from_json(&JsonValue::parse(line)?)?);
        }
        Ok(summarize(&events))
    }

    /// Folds already-parsed events (e.g. from a [`MemorySink`]).
    pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
        let mut out = TraceSummary::default();
        for ev in events {
            match ev {
                TraceEvent::SpanEnd {
                    kind: SpanKind::Run,
                    name,
                    dur,
                    ..
                } => {
                    out.run_name = Some(name.clone());
                    out.run_wall = Some(*dur);
                }
                TraceEvent::SpanEnd {
                    kind: SpanKind::Case,
                    name,
                    dur,
                    metrics,
                    fields,
                    ..
                } => {
                    let field = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                    let peak = metrics.get(Counter::BddPeakLiveNodes);
                    let conflicts = metrics.get(Counter::SatConflicts);
                    out.cases.push(CaseRow {
                        name: name.clone(),
                        engine: field("engine")
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_string(),
                        verdict: field("verdict")
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_string(),
                        peak_bdd_nodes: (peak > 0).then_some(peak),
                        sat_conflicts: (conflicts > 0).then_some(conflicts),
                        attempts: field("attempts").and_then(|v| v.as_u64()).unwrap_or(1),
                        wall: *dur,
                        queue_latency: Duration::from_micros(
                            metrics.get(Counter::SchedQueueLatencyMicros),
                        ),
                        stolen: metrics.get(Counter::SchedSteals) > 0,
                    });
                }
                TraceEvent::SpanEnd {
                    kind: SpanKind::Stage,
                    name,
                    dur,
                    metrics,
                    ..
                } => {
                    let idx = out
                        .engines
                        .iter()
                        .position(|r| r.name == *name)
                        .unwrap_or_else(|| {
                            out.engines.push(EngineRow {
                                name: name.clone(),
                                attempts: 0,
                                wall: Duration::ZERO,
                                metrics: MetricSet::new(),
                            });
                            out.engines.len() - 1
                        });
                    let row = &mut out.engines[idx];
                    row.attempts += 1;
                    row.wall += *dur;
                    row.metrics.merge(metrics);
                }
                TraceEvent::Totals {
                    metrics, threads, ..
                } => {
                    out.totals = metrics.clone();
                    out.threads = *threads;
                }
                _ => {}
            }
        }
        out.engines.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    impl TraceSummary {
        /// Renders the summary as aligned text tables (per-case, then
        /// per-engine) in the spirit of the paper's Table 1.
        pub fn render(&self) -> String {
            let mut out = String::new();
            if let Some(name) = &self.run_name {
                out.push_str(&format!(
                    "run {name}  wall {:.3}s  threads {}\n\n",
                    self.run_wall.unwrap_or_default().as_secs_f64(),
                    self.threads
                ));
            }
            out.push_str(&format!(
                "{:<22} {:>8} {:>10} {:>10} {:>9} {:>9} {:>7}  {}\n",
                "case", "verdict", "bdd-nodes", "conflicts", "time", "queued", "stolen", "engine"
            ));
            for c in &self.cases {
                out.push_str(&format!(
                    "{:<22} {:>8} {:>10} {:>10} {:>8.3}s {:>8.3}s {:>7}  {}\n",
                    c.name,
                    c.verdict,
                    c.peak_bdd_nodes
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "-".into()),
                    c.sat_conflicts
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "-".into()),
                    c.wall.as_secs_f64(),
                    c.queue_latency.as_secs_f64(),
                    if c.stolen { "yes" } else { "no" },
                    c.engine,
                ));
            }
            if !self.engines.is_empty() {
                out.push('\n');
                out.push_str(&format!(
                    "{:<12} {:>8} {:>10}  {}\n",
                    "engine", "attempts", "time", "counters"
                ));
                for e in &self.engines {
                    let counters = e
                        .metrics
                        .iter()
                        .map(|(c, v)| format!("{}={v}", c.name()))
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.push_str(&format!(
                        "{:<12} {:>8} {:>9.3}s  {}\n",
                        e.name,
                        e.attempts,
                        e.wall.as_secs_f64(),
                        counters
                    ));
                }
            }
            out
        }

        /// Machine-readable form of the summary.
        pub fn to_json(&self) -> JsonValue {
            JsonValue::object(vec![
                (
                    "schema_version",
                    JsonValue::int(crate::json::SCHEMA_VERSION),
                ),
                (
                    "run",
                    JsonValue::opt(self.run_name.as_deref(), JsonValue::string),
                ),
                (
                    "run_wall_seconds",
                    JsonValue::opt(self.run_wall, |d| JsonValue::Number(d.as_secs_f64())),
                ),
                ("threads", JsonValue::int(self.threads as u64)),
                (
                    "cases",
                    JsonValue::Array(
                        self.cases
                            .iter()
                            .map(|c| {
                                JsonValue::object(vec![
                                    ("case", JsonValue::string(c.name.clone())),
                                    ("engine", JsonValue::string(c.engine.clone())),
                                    ("verdict", JsonValue::string(c.verdict.clone())),
                                    (
                                        "peak_bdd_nodes",
                                        JsonValue::opt(c.peak_bdd_nodes, JsonValue::int),
                                    ),
                                    (
                                        "sat_conflicts",
                                        JsonValue::opt(c.sat_conflicts, JsonValue::int),
                                    ),
                                    ("attempts", JsonValue::int(c.attempts)),
                                    ("wall_seconds", JsonValue::Number(c.wall.as_secs_f64())),
                                    (
                                        "queue_latency_seconds",
                                        JsonValue::Number(c.queue_latency.as_secs_f64()),
                                    ),
                                    ("stolen", JsonValue::Bool(c.stolen)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "engines",
                    JsonValue::Array(
                        self.engines
                            .iter()
                            .map(|e| {
                                JsonValue::object(vec![
                                    ("engine", JsonValue::string(e.name.clone())),
                                    ("attempts", JsonValue::int(e.attempts as u64)),
                                    ("wall_seconds", JsonValue::Number(e.wall.as_secs_f64())),
                                    ("counters", e.metrics.to_json()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("totals", self.totals.to_json()),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_set_add_get_merge() {
        let mut m = MetricSet::new();
        m.add(Counter::SatConflicts, 5);
        m.add(Counter::SatConflicts, 7);
        m.add(Counter::BddPeakLiveNodes, 100);
        m.add(Counter::BddPeakLiveNodes, 40);
        assert_eq!(m.get(Counter::SatConflicts), 12);
        assert_eq!(m.get(Counter::BddPeakLiveNodes), 100, "gauge takes max");
        assert_eq!(m.get(Counter::SatDecisions), 0);

        let mut other = MetricSet::new();
        other.add(Counter::SatConflicts, 1);
        other.add(Counter::BddPeakLiveNodes, 250);
        m.merge(&other);
        assert_eq!(m.get(Counter::SatConflicts), 13);
        assert_eq!(m.get(Counter::BddPeakLiveNodes), 250);
    }

    #[test]
    fn counter_names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut ran = false;
        let mut span = tracer.span(SpanKind::Run, || {
            ran = true;
            "never".into()
        });
        assert!(!ran, "name closure must not run when disabled");
        assert_eq!(span.id(), 0);
        span.record(Counter::SatConflicts, 99);
        drop(span);
        assert!(tracer.totals().is_empty());
        let handle = tracer.handle();
        assert!(!handle.is_recording());
        handle.add(Counter::SatConflicts, 3);
        assert!(tracer.totals().is_empty());
    }

    #[test]
    fn span_events_nest_by_parent_id() {
        let (tracer, sink) = Tracer::in_memory();
        {
            let run = tracer.span(SpanKind::Run, || "run".into());
            let case = run.child(SpanKind::Case, || "case-a".into());
            let mut stage = case.child(SpanKind::Stage, || "bdd".into());
            stage.record(Counter::BddIteCalls, 10);
            stage.field("verdict", JsonValue::string("holds"));
        }
        let events = sink.events();
        let ids: Vec<(u64, Option<u64>)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SpanStart { id, parent, .. } => Some((*id, *parent)),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![(1, None), (2, Some(1)), (3, Some(2))]);
        // Drops happen innermost-first.
        let end_names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SpanEnd { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(end_names, vec!["bdd", "case-a", "run"]);
    }

    #[test]
    fn registry_sums_across_threads() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let handle = registry.register();
                scope.spawn(move || {
                    handle.add(Counter::SatConflicts, i + 1);
                    handle.add(Counter::BddPeakLiveNodes, 10 * (i + 1));
                });
            }
        });
        let totals = registry.totals();
        assert_eq!(totals.get(Counter::SatConflicts), 1 + 2 + 3 + 4);
        assert_eq!(totals.get(Counter::BddPeakLiveNodes), 40, "gauge max");
        assert_eq!(registry.threads(), 4);
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let (tracer, sink) = Tracer::in_memory();
        {
            let mut run = tracer.span(SpanKind::Run, || "verify:Fma".into());
            run.field("op", JsonValue::string("Fma"));
            let handle = tracer.handle();
            handle.add(Counter::SatConflicts, 17);
            let mut case = run.child(SpanKind::Case, || "FarOut".into());
            case.record(Counter::SatConflicts, 17);
            case.field("verdict", JsonValue::string("holds"));
            case.field("engine", JsonValue::string("sat"));
            drop(case);
            tracer.emit_totals();
        }
        let text = sink.to_jsonl();
        let reparsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_json(&JsonValue::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(reparsed, sink.events());
        let s = summary::summarize_jsonl(&text).unwrap();
        assert_eq!(s.cases.len(), 1);
        assert_eq!(s.cases[0].name, "FarOut");
        assert_eq!(s.cases[0].sat_conflicts, Some(17));
        assert_eq!(s.totals.get(Counter::SatConflicts), 17);
        assert!(s.render().contains("FarOut"));
    }
}
