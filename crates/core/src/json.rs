//! JSON serialization of verification results.
//!
//! Machine-readable output for the bench binaries' `--json` flag: per-case
//! results, instruction reports and Table-1 rows are rendered as JSON so
//! downstream tooling (regression dashboards, plotting) can consume runs
//! without scraping text tables.
//!
//! This is a small hand-rolled emitter rather than a `serde` derive: the
//! workspace must build in offline environments where crates.io is not
//! reachable, and `serde`'s proc-macro stack cannot be vendored as a shim
//! the way plain-library dependencies can. The [`ToJson`] trait plays the
//! role of `Serialize` for the handful of report types that need it.
//!
//! PR 2 adds the other direction: [`JsonValue::parse`] is a recursive-descent
//! reader used by `trace::summary` to fold JSONL telemetry streams back into
//! tables, plus accessors (`get`/`as_str`/`as_u64`/…) for walking parsed
//! documents. All machine-readable output carries [`SCHEMA_VERSION`]; the
//! schema is documented in `DESIGN.md`.

use std::fmt::Write as _;
use std::time::Duration;

use crate::engine::{EngineKind, EngineStats};
use crate::error::Error;
use crate::report::TableRow;
use crate::runner::{CaseAttempt, CaseResult, CounterExample, InstructionReport, Verdict};

/// Version stamp emitted in every machine-readable document.
///
/// Version 2 added per-case telemetry: engine counters under `"counters"`,
/// scheduler fields (`queue_latency_seconds`, `stolen`), typed error
/// strings, and the JSONL trace event stream. Version 3 added the per-case
/// `"cached"` flag and the proof-cache counters (`cache.hits` /
/// `cache.misses` / `cache.stores`). Version 4 (this release) emits
/// integers exactly (a dedicated [`JsonValue::Int`] path instead of lossy
/// `f64`), renders non-finite numbers as `null`, adds the `campaign.*`
/// counters, and introduces the mutation-campaign document
/// (`results/mutation_campaign.json`).
pub const SCHEMA_VERSION: u32 = 4;

/// A JSON document fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted exactly (no `f64` round-trip). Parsed numbers
    /// without a fraction or exponent land here.
    Int(i128),
    /// Any other number. Non-finite values (NaN, ±∞) have no JSON
    /// representation and render as `null`.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// An integer value, exact for every primitive integer type. (The only
    /// fallible conversion is `u128` above `i128::MAX`, which saturates.)
    pub fn int(v: impl TryInto<i128>) -> JsonValue {
        JsonValue::Int(v.try_into().unwrap_or(i128::MAX))
    }

    /// `value.map(f)` or `null`.
    pub fn opt<T>(value: Option<T>, f: impl FnOnce(T) -> JsonValue) -> JsonValue {
        value.map(f).unwrap_or(JsonValue::Null)
    }

    /// Parses a JSON document (the inverse of [`JsonValue::render`]).
    ///
    /// Accepts exactly one value with optional surrounding whitespace.
    /// Number parsing goes through `f64`, matching what the emitter writes;
    /// string escapes cover the emitter's repertoire plus `\uXXXX` (basic
    /// multilingual plane; unpaired surrogates become U+FFFD).
    pub fn parse(text: &str) -> Result<JsonValue, Error> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (integers convert, losing
    /// precision above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::JsonParse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer literals (no fraction, no exponent) round-trip exactly
        // through the dedicated integer path.
        if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

impl JsonValue {
    /// Renders the value as a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    // NaN/±∞ have no JSON representation; `null` keeps the
                    // document valid (documented on `SCHEMA_VERSION`).
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, depth, pretty, '[', ']', items.len(), |out, i| {
                    items[i].write(out, depth + 1, pretty);
                });
            }
            JsonValue::Object(fields) => {
                write_seq(out, depth, pretty, '{', '}', fields.len(), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    fields[i].1.write(out, depth + 1, pretty);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(depth + 1));
        }
        item(out, i);
    }
    if pretty && len > 0 {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types renderable as JSON (the offline stand-in for `serde::Serialize`).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> JsonValue;
}

fn duration_json(d: Duration) -> JsonValue {
    JsonValue::Number(d.as_secs_f64())
}

impl ToJson for EngineKind {
    fn to_json(&self) -> JsonValue {
        JsonValue::string(match self {
            EngineKind::Bdd => "bdd",
            EngineKind::BddSequential => "bdd-seq",
            EngineKind::Sat => "sat",
        })
    }
}

impl ToJson for Verdict {
    fn to_json(&self) -> JsonValue {
        JsonValue::string(match self {
            Verdict::Holds => "holds",
            Verdict::Fails => "fails",
            Verdict::BudgetExceeded => "budget-exceeded",
            Verdict::Error => "error",
            Verdict::Canceled => "canceled",
        })
    }
}

impl ToJson for EngineStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "peak_bdd_nodes",
                JsonValue::opt(self.peak_bdd_nodes, JsonValue::int),
            ),
            (
                "care_nodes",
                JsonValue::opt(self.care_nodes, JsonValue::int),
            ),
            (
                "sat_conflicts",
                JsonValue::opt(self.sat_conflicts, JsonValue::int),
            ),
            ("coi_ands", JsonValue::opt(self.coi_ands, JsonValue::int)),
            ("wall_seconds", duration_json(self.wall)),
            ("counters", self.metrics.to_json()),
        ])
    }
}

impl ToJson for CounterExample {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("a", JsonValue::string(format!("{:#x}", self.a))),
            ("b", JsonValue::string(format!("{:#x}", self.b))),
            ("c", JsonValue::string(format!("{:#x}", self.c))),
            ("op", JsonValue::int(self.op)),
            ("rm", JsonValue::int(self.rm)),
            ("replay_confirmed", JsonValue::Bool(self.replay_confirmed)),
        ])
    }
}

impl ToJson for CaseAttempt {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("engine", self.engine.to_json()),
            ("engine_name", JsonValue::string(self.engine_name)),
            (
                "node_limit",
                JsonValue::opt(self.budget.node_limit, JsonValue::int),
            ),
            (
                "conflict_limit",
                JsonValue::opt(self.budget.conflict_limit, JsonValue::int),
            ),
            ("verdict", self.verdict.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl ToJson for CaseResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("case", JsonValue::string(format!("{:?}", self.case))),
            (
                "class",
                JsonValue::string(format!("{:?}", self.case.class())),
            ),
            ("op", JsonValue::string(format!("{:?}", self.op))),
            ("engine", self.engine.to_json()),
            ("verdict", self.verdict.to_json()),
            (
                "counterexample",
                JsonValue::opt(self.counterexample.as_ref(), |c| c.to_json()),
            ),
            (
                "error",
                JsonValue::opt(self.error.as_ref(), |e| JsonValue::string(e.to_string())),
            ),
            ("stats", self.stats.to_json()),
            (
                "attempts",
                JsonValue::Array(self.attempts.iter().map(|a| a.to_json()).collect()),
            ),
            ("escalations", JsonValue::int(self.escalations() as u64)),
            ("queue_latency_seconds", duration_json(self.queue_latency)),
            ("stolen", JsonValue::Bool(self.stolen)),
            ("cached", JsonValue::Bool(self.cached)),
            ("duration_seconds", duration_json(self.duration)),
        ])
    }
}

impl ToJson for InstructionReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema_version", JsonValue::int(SCHEMA_VERSION)),
            ("op", JsonValue::string(format!("{:?}", self.op))),
            ("all_hold", JsonValue::Bool(self.all_hold())),
            ("cases", JsonValue::int(self.results.len() as u64)),
            (
                "escalated_cases",
                JsonValue::int(self.escalated_cases() as u64),
            ),
            ("wall_seconds", duration_json(self.wall)),
            ("accumulated_seconds", duration_json(self.accumulated)),
            (
                "results",
                JsonValue::Array(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

impl ToJson for TableRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("op", JsonValue::string(format!("{:?}", self.op))),
            ("class", JsonValue::string(format!("{:?}", self.class))),
            ("cases", JsonValue::int(self.cases as u64)),
            (
                "nodes_avg",
                JsonValue::opt(self.nodes_avg, JsonValue::Number),
            ),
            ("nodes_max", JsonValue::opt(self.nodes_max, JsonValue::int)),
            ("time_avg_seconds", duration_json(self.time_avg)),
            ("time_max_seconds", duration_json(self.time_max)),
            ("time_total_seconds", duration_json(self.time_total)),
        ])
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(|t| t.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escapes_and_shapes() {
        let v = JsonValue::object(vec![
            ("s", JsonValue::string("a\"b\\c\nd")),
            ("n", JsonValue::Number(1.5)),
            ("i", JsonValue::int(42u64)),
            ("t", JsonValue::Bool(true)),
            ("z", JsonValue::Null),
            (
                "arr",
                JsonValue::Array(vec![JsonValue::int(1u8), JsonValue::int(2u8)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"s":"a\"b\\c\nd","n":1.5,"i":42,"t":true,"z":null,"arr":[1,2]}"#
        );
        // Pretty rendering parses back to the same structure shape-wise.
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"s\": "));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::Number(3.0).render(), "3");
        assert_eq!(JsonValue::Number(3.25).render(), "3.25");
    }

    #[test]
    fn integers_emit_exactly_and_round_trip() {
        // Values above 2^53 used to lose precision through the f64 path,
        // and failed i64 conversions silently became f64::MAX.
        for v in [0u64, 1 << 53, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let rendered = JsonValue::int(v).render();
            assert_eq!(rendered, v.to_string(), "exact emission of {v}");
            let parsed = JsonValue::parse(&rendered).unwrap();
            assert_eq!(parsed, JsonValue::Int(v as i128));
            assert_eq!(parsed.as_u64(), Some(v), "round-trip of {v}");
        }
        for v in [i64::MIN, -1, i64::MAX] {
            let rendered = JsonValue::int(v).render();
            assert_eq!(rendered, v.to_string());
            assert_eq!(
                JsonValue::parse(&rendered).unwrap(),
                JsonValue::Int(v as i128)
            );
        }
        // The one fallible conversion saturates instead of turning into a
        // nonsense float.
        assert_eq!(JsonValue::int(u128::MAX), JsonValue::Int(i128::MAX));
        // Integer parses stay integral; float syntax stays a Number.
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(
            JsonValue::parse("4.5").unwrap(),
            JsonValue::Number(4.5),
            "fractional literals keep the float path"
        );
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Number(1000.0));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        // NaN/±∞ would otherwise produce invalid JSON; the documented
        // behavior is `null`.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = JsonValue::object(vec![("x", JsonValue::Number(v))]);
            let text = doc.render();
            assert_eq!(text, r#"{"x":null}"#);
            let parsed = JsonValue::parse(&text).unwrap();
            assert_eq!(parsed.get("x"), Some(&JsonValue::Null));
        }
        // Finite values are untouched by the guard.
        assert_eq!(JsonValue::Number(2.5).render(), "2.5");
    }

    #[test]
    fn case_result_round_trips_key_fields() {
        use crate::engine::EngineStats;
        use crate::runner::Verdict;
        use fmaverify_fpu::FpuOp;

        let r = CaseResult {
            case: crate::cases::CaseId::FarOut,
            op: FpuOp::Fma,
            engine: EngineKind::Sat,
            verdict: Verdict::Holds,
            counterexample: None,
            error: None,
            stats: EngineStats {
                sat_conflicts: Some(12),
                coi_ands: Some(900),
                ..EngineStats::default()
            },
            attempts: Vec::new(),
            queue_latency: Duration::ZERO,
            stolen: false,
            cached: false,
            duration: Duration::from_millis(5),
        };
        let text = r.to_json().render();
        assert!(text.contains(r#""verdict":"holds""#));
        assert!(text.contains(r#""engine":"sat""#));
        assert!(text.contains(r#""sat_conflicts":12"#));

        // Schema v2: the compact rendering parses back, and the telemetry
        // fields are reachable through the accessors.
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed.get("verdict").and_then(|v| v.as_str()),
            Some("holds")
        );
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("sat_conflicts"))
                .and_then(|v| v.as_u64()),
            Some(12)
        );
        assert_eq!(parsed.get("stolen").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn parser_round_trips_emitter_output() {
        let v = JsonValue::object(vec![
            ("s", JsonValue::string("a\"b\\c\nd\t\u{1}")),
            ("n", JsonValue::Number(1.5)),
            ("neg", JsonValue::int(-2)),
            ("e", JsonValue::Number(1e-3)),
            ("t", JsonValue::Bool(true)),
            ("z", JsonValue::Null),
            ("empty_arr", JsonValue::Array(vec![])),
            ("empty_obj", JsonValue::object(vec![])),
            (
                "nested",
                JsonValue::Array(vec![
                    JsonValue::int(1u8),
                    JsonValue::object(vec![("k", JsonValue::string("v"))]),
                ]),
            ),
        ]);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} {}",
        ] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(
                matches!(err, crate::error::Error::JsonParse { .. }),
                "{bad:?} should fail with JsonParse, got {err:?}"
            );
        }
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let v = JsonValue::parse(r#""Aé\ud800""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\u{fffd}"));
    }
}
