//! The verification harness: the paper's driver.
//!
//! One netlist contains the shared operand/opcode/rounding-mode inputs, the
//! reference FPU, the implementation FPU, and a miter comparing their
//! results and flags. With multiplier isolation enabled, both FPUs consume
//! the pseudo-inputs `S'`,`T'` instead of a real multiplier (Figure 1), and
//! the harness provides both the assumable constraint over `S'`,`T'` and the
//! corresponding proof obligation for the real multiplier.

use fmaverify_fpu::{
    build_impl_fpu, build_ref_fpu, DenormalMode, FpuConfig, FpuInputs, FpuOp, ImplFpu,
    MultiplierMode, PipelineMode, ProductSource, RefFpu,
};
use fmaverify_netlist::{Netlist, Signal, Word};

use crate::cases::{CaseId, ShaCase};

/// A constant bit of `S'` or `T'` (a "hot-one" rule), derived per
/// implementation; see [`crate::isolation::derive_st_constants`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StConstant {
    /// `false` = a bit of `S`, `true` = a bit of `T`.
    pub in_t: bool,
    /// Bit index.
    pub bit: usize,
    /// The constant value.
    pub value: bool,
}

/// Options for building a harness.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Replace the multiplier by constrained pseudo-inputs (Figure 1).
    pub isolate_multiplier: bool,
    /// Include the IEEE flags in the miter (the paper compares "the
    /// results"; flags are part of the architected result).
    pub compare_flags: bool,
    /// Pipelining of the implementation FPU. Pipelined harnesses must be
    /// unrolled before formal checks (see [`crate::sequential::unroll_harness`]).
    pub pipeline: PipelineMode,
    /// Implementation-specific `S'`,`T'` rules (hot-one constants) to fold
    /// into the multiplier constraint.
    pub st_constants: Vec<StConstant>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            isolate_multiplier: true,
            compare_flags: true,
            pipeline: PipelineMode::Combinational,
            st_constants: Vec::new(),
        }
    }
}

/// The built harness.
#[derive(Debug)]
pub struct Harness {
    /// The netlist holding both FPUs, the miter, and all probe points.
    pub netlist: Netlist,
    /// The shared primary inputs.
    pub inputs: FpuInputs,
    /// The configuration.
    pub cfg: FpuConfig,
    /// Reference FPU handles.
    pub ref_fpu: RefFpu,
    /// Implementation FPU handles.
    pub impl_fpu: ImplFpu,
    /// Miter output: true iff the FPUs disagree.
    pub miter: Signal,
    /// The `S'`,`T'` pseudo-inputs when isolated.
    pub st: Option<(Word, Word)>,
    /// The multiplier constraint over `S'`,`T'` (constant true when not
    /// isolated).
    pub mult_constraint: Signal,
    options: HarnessOptions,
}

/// Builds the two-FPU harness.
pub fn build_harness(cfg: &FpuConfig, options: HarnessOptions) -> Harness {
    let mut n = Netlist::new();
    let inputs = FpuInputs::new(&mut n, cfg.format);
    let wwin = cfg.window_bits();

    let (st, ref_product, impl_mult) = if options.isolate_multiplier {
        let s = n.word_input("st_s", wwin);
        let t = n.word_input("st_t", wwin);
        (
            Some((s.clone(), t.clone())),
            ProductSource::Override {
                s: s.clone(),
                t: t.clone(),
            },
            MultiplierMode::Override { s, t },
        )
    } else {
        (None, ProductSource::Exact, MultiplierMode::Real)
    };

    let ref_fpu = build_ref_fpu(&mut n, cfg, &inputs, ref_product);
    let impl_fpu = build_impl_fpu(&mut n, cfg, &inputs, impl_mult, options.pipeline);

    let miter = {
        let res_diff = {
            let d = n.xor_word(&ref_fpu.outputs.result, &impl_fpu.outputs.result);
            n.or_reduce(&d)
        };
        if options.compare_flags {
            let fd = n.xor_word(&ref_fpu.outputs.flags, &impl_fpu.outputs.flags);
            let fdr = n.or_reduce(&fd);
            n.or(res_diff, fdr)
        } else {
            res_diff
        }
    };
    n.output("miter", miter);

    let mult_constraint = match &st {
        None => Signal::TRUE,
        Some((s, t)) => {
            let c = multiplier_property(&mut n, cfg, &inputs, s, t);
            let mut c = c;
            for k in &options.st_constants {
                let word = if k.in_t { t } else { s };
                let bit = word.bit(k.bit);
                let lit = if k.value { bit } else { !bit };
                c = n.and(c, lit);
            }
            c
        }
    };
    n.probe("mult_constraint", mult_constraint);

    Harness {
        netlist: n,
        inputs,
        cfg: *cfg,
        ref_fpu,
        impl_fpu,
        miter,
        st,
        mult_constraint,
        options,
    }
}

impl Harness {
    /// The harness options used at build time.
    pub fn options(&self) -> &HarnessOptions {
        &self.options
    }

    /// Re-points this harness at a rebuilt `netlist` and `miter` — after
    /// fault injection ([`crate::inject_fault`]) or unrolling
    /// ([`fmaverify_netlist::unroll`]), both of which preserve names but
    /// renumber nodes. The operand/opcode/rounding-mode inputs, the `S'`/`T'`
    /// pseudo-inputs, and the multiplier constraint are re-located by name
    /// (falling back to the cycle-0 copy `name@0` of an unrolled netlist) so
    /// the static BDD variable orders and counterexample decoding stay valid.
    ///
    /// The FPU-internal handles (`ref_fpu`, `impl_fpu`) are *not*
    /// re-located: a rebound harness drives the proof engines
    /// ([`crate::Session::run_prepared`]), not constraint construction —
    /// build constraints on the original harness and carry them across as
    /// named probes.
    ///
    /// # Panics
    /// Panics if an input of the original harness cannot be found in
    /// `netlist` under either name.
    pub fn rebind(&self, netlist: Netlist, miter: Signal) -> Harness {
        let input = |name: String| -> Signal {
            netlist
                .find_input(&name)
                .or_else(|| netlist.find_input(&format!("{name}@0")))
                .unwrap_or_else(|| panic!("rebind: input {name} missing from rebuilt netlist"))
        };
        let word = |prefix: &str, width: usize| -> Word {
            Word::from_bits(
                (0..width)
                    .map(|i| input(format!("{prefix}[{i}]")))
                    .collect(),
            )
        };
        let w = self.cfg.format.width() as usize;
        let inputs = FpuInputs {
            a: word("a", w),
            b: word("b", w),
            c: word("c", w),
            op: word("op", 3),
            rm: word("rm", 2),
        };
        let st = self
            .st
            .as_ref()
            .map(|(s, t)| (word("st_s", s.width()), word("st_t", t.width())));
        let mult_constraint = if self.mult_constraint == Signal::TRUE {
            Signal::TRUE
        } else {
            netlist
                .find_probe("mult_constraint")
                .or_else(|| netlist.find_probe("mult_constraint@0"))
                .expect("rebind: mult_constraint probe missing")
        };
        Harness {
            netlist,
            inputs,
            cfg: self.cfg,
            ref_fpu: self.ref_fpu.clone(),
            impl_fpu: self.impl_fpu.clone(),
            miter,
            st,
            mult_constraint,
            options: self.options.clone(),
        }
    }

    /// Builds the constraint signal for a verification case of instruction
    /// `op`: the opcode constraint, the δ (or far-out) constraint over the
    /// operand exponents, the `C_sha` constraint on the reference FPU's
    /// normalization-shift signal, and the multiplier-isolation constraint.
    pub fn case_constraint(&mut self, op: FpuOp, case: CaseId) -> Signal {
        let parts = self.case_constraint_parts(op, case);
        let n = &mut self.netlist;
        let mut acc = Signal::TRUE;
        for p in parts {
            acc = n.and(acc, p);
        }
        acc
    }

    /// The conjuncts of [`Harness::case_constraint`], kept separate so the
    /// BDD engine can conjoin them progressively (cheap cones first): the
    /// opcode constraint, the δ/far-out constraint, the `C_sha` constraint
    /// (cancellation cases), and the multiplier-isolation constraint.
    pub fn case_constraint_parts(&mut self, op: FpuOp, case: CaseId) -> Vec<Signal> {
        let n = &mut self.netlist;
        let cfg = &self.cfg;
        let op_c = n.eq_const(&self.inputs.op, op.encode() as u128);
        let delta = architected_delta(n, cfg, &self.inputs);
        let wexp = cfg.exp_arith_bits();
        let dmin = cfg.delta_min_overlap();
        let dmax = cfg.delta_max_overlap();
        let signed_const = |n: &mut Netlist, v: i64| {
            n.word_const(wexp, (v as i128 & ((1i128 << wexp) - 1)) as u128)
        };

        let mut parts = vec![op_c];
        match case {
            CaseId::Monolithic => {}
            CaseId::FarOut => {
                let lo = signed_const(n, dmin);
                let hi = signed_const(n, dmax);
                let below = n.slt(&delta, &lo);
                let above = n.slt(&hi, &delta);
                parts.push(n.or(below, above));
            }
            CaseId::OverlapNoCancel { delta: d } => {
                let k = signed_const(n, d);
                parts.push(n.eq_word(&delta, &k));
            }
            CaseId::OverlapCancel { delta: d, sha } => {
                let k = signed_const(n, d);
                let d_eq = n.eq_word(&delta, &k);
                parts.push(d_eq);
                let sha_word = self.ref_fpu.sha.clone();
                let sha_c = match sha {
                    ShaCase::Exact(s) => n.eq_const(&sha_word, s as u128),
                    ShaCase::Rest => {
                        // sha >= prod_bits (all remaining values).
                        let lim = n.word_const(sha_word.width(), cfg.prod_bits() as u128);
                        n.ule(&lim, &sha_word)
                    }
                };
                parts.push(sha_c);
            }
        }
        if self.mult_constraint != Signal::TRUE {
            parts.push(self.mult_constraint);
        }
        parts
    }

    /// The disjunction of the constraints of all `cases` (with the opcode
    /// fixed): proving this a tautology establishes completeness of the
    /// split ("the disjunction of all the cases is easily provable as a
    /// tautology").
    pub fn cases_disjunction(&mut self, _op: FpuOp, cases: &[CaseId]) -> Signal {
        // The sha/mult parts don't matter for coverage of the input space;
        // completeness is about the δ partition. Still, we build the full
        // constraints and existentially weaken by dropping sha/mult terms:
        // the δ-only disjunction must already be a tautology.
        let n = &mut self.netlist;
        let cfg = &self.cfg;
        let delta = architected_delta(n, cfg, &self.inputs);
        let wexp = cfg.exp_arith_bits();
        let signed_const = |n: &mut Netlist, v: i64| {
            n.word_const(wexp, (v as i128 & ((1i128 << wexp) - 1)) as u128)
        };
        let mut acc = Signal::FALSE;
        let mut seen_deltas = std::collections::HashSet::new();
        for case in cases {
            let c = match case {
                CaseId::Monolithic => Signal::TRUE,
                CaseId::FarOut => {
                    let lo = signed_const(n, cfg.delta_min_overlap());
                    let hi = signed_const(n, cfg.delta_max_overlap());
                    let below = n.slt(&delta, &lo);
                    let above = n.slt(&hi, &delta);
                    n.or(below, above)
                }
                CaseId::OverlapNoCancel { delta: d } => {
                    let k = signed_const(n, *d);
                    n.eq_word(&delta, &k)
                }
                CaseId::OverlapCancel { delta: d, sha } => {
                    if !seen_deltas.insert(*d) {
                        continue;
                    }
                    // All sha sub-cases of one δ union to the δ constraint
                    // only if the sha split is itself complete; that part is
                    // covered by including every sha value plus the rest
                    // case, which by construction partitions the sha word's
                    // value space. Here we take the δ-level disjunct once,
                    // relying on the per-δ completeness established by
                    // `sha_cases_complete`.
                    let _ = sha;
                    let k = signed_const(n, *d);
                    n.eq_word(&delta, &k)
                }
            };
            acc = n.or(acc, c);
        }
        acc
    }

    /// The disjunction of all `C_sha` sub-constraints for one cancellation δ;
    /// proving it a tautology (it does not even depend on δ) establishes the
    /// per-δ completeness of the sha split.
    pub fn sha_cases_complete(&mut self) -> Signal {
        let n = &mut self.netlist;
        let sha = self.ref_fpu.sha.clone();
        let mut acc = Signal::FALSE;
        for s in 0..self.cfg.prod_bits() {
            let e = n.eq_const(&sha, s as u128);
            acc = n.or(acc, e);
        }
        let lim = n.word_const(sha.width(), self.cfg.prod_bits() as u128);
        let rest = n.ule(&lim, &sha);
        n.or(acc, rest)
    }
}

/// Rebuilds the architected exponent difference δ = e_p − e_c from the raw
/// operand fields (with the ADD/MUL operand substitutions), independent of
/// either FPU's internals. This realizes the paper's
/// `C_δ := (e_a + e_b = e_c + δ)` constraint family.
pub fn architected_delta(n: &mut Netlist, cfg: &FpuConfig, inputs: &FpuInputs) -> Word {
    let f = cfg.format.frac_bits() as usize;
    let eb = cfg.format.exp_bits() as usize;
    let wexp = cfg.exp_arith_bits();
    let bias = cfg.format.bias() as i64;
    let is_add = n.eq_const(&inputs.op, 2);
    let is_mul = n.eq_const(&inputs.op, 3);
    let eff = |n: &mut Netlist, w: &Word| -> Word {
        let e = w.slice(f, f + eb);
        let z = n.is_zero(&e);
        let one = n.word_const(eb, 1);
        let m = n.mux_word(z, &one, &e);
        n.zext(&m, wexp)
    };
    let ea = eff(n, &inputs.a);
    let eb_raw = eff(n, &inputs.b);
    let ec_raw = eff(n, &inputs.c);
    let bias_c = n.word_const(wexp, bias as u128);
    let one_c = n.word_const(wexp, 1);
    let eb_eff = n.mux_word(is_add, &bias_c, &eb_raw);
    let ec_eff = n.mux_word(is_mul, &one_c, &ec_raw);
    let s = n.add(&ea, &eb_eff);
    let s = n.sub(&s, &bias_c);
    n.sub(&s, &ec_eff)
}

/// The multiplier-isolation property over `S'`,`T'` (and, for the soundness
/// obligation, over the real `S`,`T`): the modular sum is a feasible
/// significand product for the given operand classes.
///
/// * always: the sum fits in `prod_bits` bits;
/// * any zero-acting operand ⇒ the sum is zero;
/// * both operands normal ⇒ the sum is at least `2^(2f)` ("the sum of S'
///   and T' lies in the range [1,4)");
/// * §6 generalization: one denormal-acting operand ⇒ sum < `2^(2f+1)`
///   ("[0,2)"), both ⇒ sum < `2^(2f)` ("[0,1)").
pub fn multiplier_property(
    n: &mut Netlist,
    cfg: &FpuConfig,
    inputs: &FpuInputs,
    s: &Word,
    t: &Word,
) -> Signal {
    let f = cfg.format.frac_bits() as usize;
    let eb = cfg.format.exp_bits() as usize;
    let pb = cfg.prod_bits();
    let wwin = cfg.window_bits();
    assert_eq!(s.width(), wwin);
    assert_eq!(t.width(), wwin);
    let u = n.add(s, t);

    let is_add = n.eq_const(&inputs.op, 2);

    struct Cls {
        normal: Signal,
        zeroish: Signal,
        denish: Signal,
    }
    let classify = |n: &mut Netlist, w: &Word| -> Cls {
        let frac = w.slice(0, f);
        let e = w.slice(f, f + eb);
        let e_zero = n.is_zero(&e);
        let e_ones = n.eq_const(&e, (1u128 << eb) - 1);
        let f_zero = n.is_zero(&frac);
        let normal = n.and(!e_zero, !e_ones);
        match cfg.denormals {
            DenormalMode::FlushToZero => {
                // Zeros, denormals (flushed), NaN and Inf all present a zero
                // significand to the multiplier.
                Cls {
                    normal,
                    zeroish: !normal,
                    denish: Signal::FALSE,
                }
            }
            DenormalMode::FullIeee => {
                let zero = n.and(e_zero, f_zero);
                let den = n.and(e_zero, !f_zero);
                // NaN/Inf significands have no implicit bit: bound like
                // denormals.
                let denish = n.or(den, e_ones);
                Cls {
                    normal,
                    zeroish: zero,
                    denish,
                }
            }
        }
    };
    let ca = classify(n, &inputs.a);
    let cb_raw = classify(n, &inputs.b);
    // ADD forces b := 1.0 (normal, never zero).
    let cb = Cls {
        normal: n.or(is_add, cb_raw.normal),
        zeroish: n.and(!is_add, cb_raw.zeroish),
        denish: n.and(!is_add, cb_raw.denish),
    };

    // Always: sum fits in prod_bits.
    let hi = u.slice(pb, wwin);
    let mut prop = n.is_zero(&hi);
    // Zero-acting operand => zero product.
    let u_zero = n.is_zero(&u);
    let any_zero = n.or(ca.zeroish, cb.zeroish);
    let imp_zero = n.implies(any_zero, u_zero);
    prop = n.and(prop, imp_zero);
    // Both normal => sum in [1,4) scaled: u >= 2^(2f).
    let both_norm = n.and(ca.normal, cb.normal);
    let low_bound = n.word_const(wwin, 1u128 << (2 * f));
    let ge = n.ule(&low_bound, &u);
    let imp_norm = n.implies(both_norm, ge);
    prop = n.and(prop, imp_norm);
    if cfg.denormals == DenormalMode::FullIeee {
        // One denormal-ish, one normal => u < 2^(2f+1).
        let mixed = {
            let x = n.and(ca.denish, cb.normal);
            let y = n.and(cb.denish, ca.normal);
            n.or(x, y)
        };
        let lim1 = n.word_const(wwin, 1u128 << (2 * f + 1));
        let lt1 = n.ult(&u, &lim1);
        let imp1 = n.implies(mixed, lt1);
        prop = n.and(prop, imp1);
        // Both denormal-ish => u < 2^(2f).
        let both_den = n.and(ca.denish, cb.denish);
        let lt0 = n.ult(&u, &low_bound);
        let imp0 = n.implies(both_den, lt0);
        prop = n.and(prop, imp0);
    }
    prop
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_netlist::BitSim;
    use fmaverify_softfloat::FpFormat;

    fn micro_cfg() -> FpuConfig {
        FpuConfig {
            format: FpFormat::MICRO,
            denormals: DenormalMode::FlushToZero,
        }
    }

    #[test]
    fn harness_builds_both_modes() {
        for isolate in [false, true] {
            let h = build_harness(
                &micro_cfg(),
                HarnessOptions {
                    isolate_multiplier: isolate,
                    ..HarnessOptions::default()
                },
            );
            assert_eq!(h.st.is_some(), isolate);
            assert!(h.netlist.num_ands() > 100);
            assert_eq!(h.netlist.find_output("miter"), Some(h.miter));
        }
    }

    #[test]
    fn isolation_removes_multiplier_from_cone() {
        // Figure 1: overriding S,T makes the multiplier sinkless — the
        // miter's cone shrinks substantially.
        let full = build_harness(
            &micro_cfg(),
            HarnessOptions {
                isolate_multiplier: false,
                ..HarnessOptions::default()
            },
        );
        let isolated = build_harness(&micro_cfg(), HarnessOptions::default());
        let full_cone = full.netlist.cone_size(&[full.miter]);
        let iso_cone = isolated.netlist.cone_size(&[isolated.miter]);
        assert!(
            iso_cone < full_cone,
            "isolated cone {iso_cone} should be smaller than full {full_cone}"
        );
    }

    #[test]
    fn miter_is_false_on_random_vectors_without_isolation() {
        let h = build_harness(
            &micro_cfg(),
            HarnessOptions {
                isolate_multiplier: false,
                ..HarnessOptions::default()
            },
        );
        let mut sim = BitSim::new(&h.netlist);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..500 {
            sim.set_word(&h.inputs.a, rng.gen::<u128>() & h.cfg.format.mask());
            sim.set_word(&h.inputs.b, rng.gen::<u128>() & h.cfg.format.mask());
            sim.set_word(&h.inputs.c, rng.gen::<u128>() & h.cfg.format.mask());
            sim.set_word(&h.inputs.op, rng.gen_range(0..4));
            sim.set_word(&h.inputs.rm, rng.gen_range(0..4));
            sim.eval();
            assert!(!sim.get(h.miter), "the two FPUs disagreed");
        }
    }

    #[test]
    fn architected_delta_matches_ref_probe() {
        let mut h = build_harness(
            &micro_cfg(),
            HarnessOptions {
                isolate_multiplier: false,
                ..HarnessOptions::default()
            },
        );
        let cfg = h.cfg;
        let inputs = h.inputs.clone();
        let d = architected_delta(&mut h.netlist, &cfg, &inputs);
        let ref_delta = h.ref_fpu.delta.clone();
        let mut sim = BitSim::new(&h.netlist);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..500 {
            sim.set_word(&h.inputs.a, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&h.inputs.b, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&h.inputs.c, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&h.inputs.op, rng.gen_range(0..4));
            sim.set_word(&h.inputs.rm, 0);
            sim.eval();
            assert_eq!(sim.get_word(&d), sim.get_word(&ref_delta));
        }
    }

    #[test]
    fn multiplier_property_holds_for_real_products() {
        // Concrete spot-check of the property on the real multiplier before
        // the SAT obligation proves it exhaustively.
        let cfg = micro_cfg();
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        let fpu = build_impl_fpu(
            &mut n,
            &cfg,
            &inputs,
            MultiplierMode::Real,
            PipelineMode::Combinational,
        );
        let s = fpu.s.clone();
        let t = fpu.t.clone();
        let prop = multiplier_property(&mut n, &cfg, &inputs, &s, &t);
        let mut sim = BitSim::new(&n);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..2000 {
            sim.set_word(&inputs.a, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.b, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.c, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.op, rng.gen_range(0..4));
            sim.set_word(&inputs.rm, rng.gen_range(0..4));
            sim.eval();
            assert!(sim.get(prop), "property violated by the real multiplier");
        }
    }
}
