//! A std-only, dependency-free drop-in for the subset of the `criterion`
//! crate API used by this workspace's `harness = false` benchmarks.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the real `criterion` cannot be fetched. This shim keeps
//! the benchmark sources compiling and produces simple wall-clock medians:
//! each benchmark is warmed up once, then timed for up to `sample_size`
//! iterations or `measurement_time`, whichever is hit first. Statistical
//! rigor (outlier analysis, regression detection) is out of scope.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver (shim of `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the target number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (only a substring filter, like the
    /// libtest harness).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.run_one(name, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = *samples.last().expect("non-empty");
        println!(
            "{name:<44} time: [{} {} {}] ({} samples)",
            fmt_dur(lo),
            fmt_dur(median),
            fmt_dur(hi),
            samples.len()
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
    }

    /// Closes the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Times closures (shim of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one sample per call, until the sample
    /// target or the time budget is reached.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // One warm-up call, untimed.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Declares a group of benchmark functions (shim of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (shim of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(200));
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // Warm-up + up to 5 samples.
        assert!((2..=6).contains(&runs), "runs = {runs}");
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
