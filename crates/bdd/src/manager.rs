//! The ROBDD manager: unique table, complement edges, ITE with a computed
//! cache, quantification, and the `constrain`/`restrict` minimization
//! operators that carry the paper's case-split constraints from the reference
//! FPU into the implementation FPU.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast non-cryptographic hasher (multiply-xor-shift) for the unique and
/// computed tables, where keys are small tuples of integers.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut x = self.0 ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 31;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 29;
        self.0 = x;
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A BDD variable. The index is fixed at creation; its *level* (position in
/// the order) may change through reordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BddVar(pub(crate) u32);

impl BddVar {
    /// Returns the dense index of this variable (creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable handle from a dense index.
    ///
    /// The variable must already exist in the manager this handle is used
    /// with; operations panic otherwise.
    pub fn from_index(index: usize) -> BddVar {
        BddVar(index as u32)
    }
}

/// An edge to a BDD node, possibly complemented. This is the public handle
/// for a boolean function; it is `Copy` and only meaningful together with the
/// [`BddManager`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant true function.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant false function.
    pub const FALSE: Bdd = Bdd(1);

    #[inline]
    fn new(id: u32, complement: bool) -> Bdd {
        Bdd(id << 1 | u32::from(complement))
    }

    #[inline]
    fn id(self) -> u32 {
        self.0 >> 1
    }

    #[inline]
    fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the complement (logical negation) of this function. This is a
    /// constant-time operation thanks to complement edges.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// Returns `true` if this is the constant true function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Returns `true` if this is the constant false function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns `true` if this is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        self.id() == 0
    }
}

impl std::ops::Not for Bdd {
    type Output = Bdd;
    #[inline]
    fn not(self) -> Bdd {
        Bdd::not(self)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.id())
        } else {
            write!(f, "n{}", self.id())
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Variable index (not level).
    var: u32,
    /// High (then) child; never complemented by the canonical form.
    high: Bdd,
    /// Low (else) child; may be complemented.
    low: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum CacheOp {
    Ite,
    Constrain,
    Restrict,
    Exists,
    AndExists,
}

/// Statistics the verification engine reports per case (the raw material of
/// the paper's Table 1).
///
/// The operation counters (`ite_calls`, `cache_hits`, `cache_misses`,
/// `nodes_created`) are plain `u64` increments on paths that already hash
/// into the unique/computed tables, so keeping them always-on costs nothing
/// measurable; the telemetry layer in `fmaverify::trace` surfaces them per
/// case.
#[derive(Clone, Copy, Debug, Default)]
pub struct BddStats {
    /// Number of nodes currently allocated (including dead nodes not yet
    /// collected).
    pub allocated: usize,
    /// High-water mark of allocated nodes since creation or the last
    /// [`BddManager::reset_peak`].
    pub peak_allocated: usize,
    /// Number of garbage collections performed.
    pub gc_runs: u64,
    /// Recursive apply (`ite`/`constrain`/`restrict`/quantification) calls.
    pub ite_calls: u64,
    /// Computed-table lookups that hit.
    pub cache_hits: u64,
    /// Computed-table lookups that missed (and were recomputed).
    pub cache_misses: u64,
    /// Total nodes ever created (survives garbage collection, unlike
    /// `allocated`).
    pub nodes_created: u64,
}

/// A reduced ordered BDD manager with complement edges.
///
/// # Examples
///
/// ```
/// use fmaverify_bdd::BddManager;
///
/// let mut mgr = BddManager::new();
/// let x = mgr.new_var();
/// let y = mgr.new_var();
/// let fx = mgr.var_bdd(x);
/// let fy = mgr.var_bdd(y);
/// let xy = mgr.and(fx, fy);
/// let yx = mgr.and(fy, fx);
/// assert_eq!(xy, yx); // canonical
/// ```
pub struct BddManager {
    nodes: Vec<Node>,
    unique: FastMap<(u32, Bdd, Bdd), u32>,
    cache: FastMap<(CacheOp, Bdd, Bdd, Bdd), Bdd>,
    /// `var2level[v]` is the current level of variable `v` (0 = top).
    var2level: Vec<u32>,
    /// `level2var[l]` is the variable at level `l`.
    level2var: Vec<u32>,
    stats: BddStats,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("vars", &self.var2level.len())
            .field("allocated", &self.nodes.len())
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables.
    pub fn new() -> BddManager {
        BddManager {
            // Slot 0 is the terminal node.
            nodes: vec![Node {
                var: TERMINAL_VAR,
                high: Bdd::TRUE,
                low: Bdd::TRUE,
            }],
            unique: FastMap::default(),
            cache: FastMap::default(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            stats: BddStats {
                allocated: 1,
                peak_allocated: 1,
                ..BddStats::default()
            },
        }
    }

    /// Creates a fresh variable at the bottom of the current order.
    pub fn new_var(&mut self) -> BddVar {
        let v = self.var2level.len() as u32;
        self.var2level.push(v);
        self.level2var.push(v);
        BddVar(v)
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<BddVar> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables in the manager.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Returns the current level of a variable (0 = top of the order).
    pub fn level_of(&self, v: BddVar) -> usize {
        self.var2level[v.index()] as usize
    }

    /// Returns the current variable order, top level first.
    pub fn current_order(&self) -> Vec<BddVar> {
        self.level2var.iter().map(|&v| BddVar(v)).collect()
    }

    /// Returns manager statistics.
    pub fn stats(&self) -> BddStats {
        let mut s = self.stats;
        s.allocated = self.nodes.len();
        s
    }

    /// Resets the peak-allocated-node high-water mark to the current size.
    pub fn reset_peak(&mut self) {
        self.stats.peak_allocated = self.nodes.len();
    }

    #[inline]
    fn level_of_ref(&self, f: Bdd) -> u32 {
        let var = self.nodes[f.id() as usize].var;
        if var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[var as usize]
        }
    }

    /// The BDD for a single variable.
    pub fn var_bdd(&mut self, v: BddVar) -> Bdd {
        assert!(v.index() < self.num_vars(), "unknown variable {v:?}");
        self.mk_node(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// The BDD for the negation of a single variable.
    pub fn nvar_bdd(&mut self, v: BddVar) -> Bdd {
        !self.var_bdd(v)
    }

    /// Creates (or finds) the node `if var then high else low`, applying the
    /// reduction and complement-edge canonicalization rules.
    fn mk_node(&mut self, var: u32, high: Bdd, low: Bdd) -> Bdd {
        if high == low {
            return high;
        }
        // Canonical form: the high edge is never complemented.
        let (high, low, out_complement) = if high.is_complement() {
            (!high, !low, true)
        } else {
            (high, low, false)
        };
        let key = (var, high, low);
        let id = match self.unique.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(Node { var, high, low });
                self.unique.insert(key, id);
                self.stats.nodes_created += 1;
                if self.nodes.len() > self.stats.peak_allocated {
                    self.stats.peak_allocated = self.nodes.len();
                }
                id
            }
        };
        Bdd::new(id, out_complement)
    }

    /// Cofactors of `f` with respect to the variable at `level`, pushing
    /// complement marks down.
    #[inline]
    fn cofactors(&self, f: Bdd, level: u32) -> (Bdd, Bdd) {
        if self.level_of_ref(f) != level {
            return (f, f);
        }
        let n = self.nodes[f.id() as usize];
        if f.is_complement() {
            (!n.high, !n.low)
        } else {
            (n.high, n.low)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f AND g) OR (NOT f AND h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal and simplification rules.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        let (f, g, h) = {
            let mut g = g;
            let mut h = h;
            if g == f {
                g = Bdd::TRUE;
            } else if g == !f {
                g = Bdd::FALSE;
            }
            if h == f {
                h = Bdd::FALSE;
            } else if h == !f {
                h = Bdd::TRUE;
            }
            (f, g, h)
        };
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return !f;
        }
        // Normalize: first argument positive, and use !ite(f,!g,!h) to make g
        // positive, improving cache hit rates.
        let (f, g, h, out_neg) = if f.is_complement() {
            (!f, h, g, false)
        } else {
            (f, g, h, false)
        };
        let (f, g, h, out_neg) = if g.is_complement() {
            (f, !g, !h, !out_neg)
        } else {
            (f, g, h, out_neg)
        };
        let key = (CacheOp::Ite, f, g, h);
        self.stats.ite_calls += 1;
        if let Some(&r) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return if out_neg { !r } else { r };
        }
        self.stats.cache_misses += 1;
        let level = self
            .level_of_ref(f)
            .min(self.level_of_ref(g))
            .min(self.level_of_ref(h));
        let (f1, f0) = self.cofactors(f, level);
        let (g1, g0) = self.cofactors(g, level);
        let (h1, h0) = self.cofactors(h, level);
        let t = self.ite(f1, g1, h1);
        let e = self.ite(f0, g0, h0);
        let var = self.level2var[level as usize];
        let r = self.mk_node(var, t, e);
        self.cache.insert(key, r);
        if out_neg {
            !r
        } else {
            r
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, !g, g)
    }

    /// Equivalence (xnor).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, !g)
    }

    /// Implication `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Coudert–Madre generalized cofactor ("constrain").
    ///
    /// `constrain(f, c)` agrees with `f` on every assignment satisfying `c`
    /// and is free to take any value elsewhere; the particular choice maps
    /// each off-care-set point to its "nearest" care-set point, which makes
    /// the operator distribute over gates: `g(a,b)|c = g(a|c, b|c)`. This is
    /// the property the paper exploits to case-split the *implementation* FPU
    /// using constraints defined only on the *reference* FPU.
    ///
    /// # Panics
    /// Panics if `c` is the constant false (the care set must be non-empty).
    pub fn constrain(&mut self, f: Bdd, c: Bdd) -> Bdd {
        assert!(!c.is_false(), "constrain care-set must be non-empty");
        self.constrain_rec(f, c)
    }

    fn constrain_rec(&mut self, f: Bdd, c: Bdd) -> Bdd {
        if c.is_true() || f.is_const() {
            return f;
        }
        if c == f {
            return Bdd::TRUE;
        }
        if c == !f {
            return Bdd::FALSE;
        }
        let key = (CacheOp::Constrain, f, c, Bdd::FALSE);
        self.stats.ite_calls += 1;
        if let Some(&r) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        self.stats.cache_misses += 1;
        let level = self.level_of_ref(f).min(self.level_of_ref(c));
        let (c1, c0) = self.cofactors(c, level);
        let (f1, f0) = self.cofactors(f, level);
        let r = if c1.is_false() {
            self.constrain_rec(f0, c0)
        } else if c0.is_false() {
            self.constrain_rec(f1, c1)
        } else {
            let t = self.constrain_rec(f1, c1);
            let e = self.constrain_rec(f0, c0);
            let var = self.level2var[level as usize];
            self.mk_node(var, t, e)
        };
        self.cache.insert(key, r);
        r
    }

    /// The "restrict" minimization operator (sibling substitution).
    ///
    /// Like [`BddManager::constrain`] it agrees with `f` on the care set `c`,
    /// but it additionally drops variables of `c` that do not appear in `f`,
    /// which often yields smaller results. Unlike `constrain` it does **not**
    /// distribute over gates; the paper evaluates such "more aggressive
    /// minimization algorithms" and finds them slower overall (our
    /// `minimize_ablation` bench reproduces that comparison).
    ///
    /// # Panics
    /// Panics if `c` is the constant false.
    pub fn restrict(&mut self, f: Bdd, c: Bdd) -> Bdd {
        assert!(!c.is_false(), "restrict care-set must be non-empty");
        self.restrict_rec(f, c)
    }

    fn restrict_rec(&mut self, f: Bdd, c: Bdd) -> Bdd {
        if c.is_true() || f.is_const() {
            return f;
        }
        if c == f {
            return Bdd::TRUE;
        }
        if c == !f {
            return Bdd::FALSE;
        }
        let key = (CacheOp::Restrict, f, c, Bdd::FALSE);
        self.stats.ite_calls += 1;
        if let Some(&r) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        self.stats.cache_misses += 1;
        let f_level = self.level_of_ref(f);
        let c_level = self.level_of_ref(c);
        let r = if c_level < f_level {
            // Top variable of `c` does not constrain `f` at this level:
            // quantify it out of the care set.
            let (c1, c0) = self.cofactors(c, c_level);
            let c_up = self.or(c1, c0);
            self.restrict_rec(f, c_up)
        } else {
            let level = f_level.min(c_level);
            let (c1, c0) = self.cofactors(c, level);
            let (f1, f0) = self.cofactors(f, level);
            if c1.is_false() {
                self.restrict_rec(f0, c0)
            } else if c0.is_false() {
                self.restrict_rec(f1, c1)
            } else {
                let t = self.restrict_rec(f1, c1);
                let e = self.restrict_rec(f0, c0);
                let var = self.level2var[level as usize];
                self.mk_node(var, t, e)
            }
        };
        self.cache.insert(key, r);
        r
    }

    /// Existential quantification of `f` over the variables in `vars`.
    pub fn exists(&mut self, f: Bdd, vars: &[BddVar]) -> Bdd {
        let cube = self.cube(vars);
        self.exists_cube(f, cube)
    }

    /// Universal quantification of `f` over the variables in `vars`.
    pub fn forall(&mut self, f: Bdd, vars: &[BddVar]) -> Bdd {
        let cube = self.cube(vars);
        !self.exists_cube(!f, cube)
    }

    /// Builds the positive cube (conjunction) of the given variables.
    pub fn cube(&mut self, vars: &[BddVar]) -> Bdd {
        let mut sorted: Vec<BddVar> = vars.to_vec();
        sorted.sort_by_key(|v| std::cmp::Reverse(self.level_of(*v)));
        let mut acc = Bdd::TRUE;
        for v in sorted {
            acc = self.mk_node(v.0, acc, Bdd::FALSE);
        }
        acc
    }

    fn exists_cube(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        if f.is_const() || cube.is_true() {
            return f;
        }
        let key = (CacheOp::Exists, f, cube, Bdd::FALSE);
        self.stats.ite_calls += 1;
        if let Some(&r) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        self.stats.cache_misses += 1;
        let f_level = self.level_of_ref(f);
        // Skip cube variables above f's top variable.
        let mut cube = cube;
        while !cube.is_true() && self.level_of_ref(cube) < f_level {
            cube = self.nodes[cube.id() as usize].high;
        }
        if cube.is_true() {
            return f;
        }
        let level = f_level;
        let (f1, f0) = self.cofactors(f, level);
        let r = if self.level_of_ref(cube) == level {
            let next_cube = self.nodes[cube.id() as usize].high;
            let t = self.exists_cube(f1, next_cube);
            let e = self.exists_cube(f0, next_cube);
            self.or(t, e)
        } else {
            let t = self.exists_cube(f1, cube);
            let e = self.exists_cube(f0, cube);
            let var = self.level2var[level as usize];
            self.mk_node(var, t, e)
        };
        self.cache.insert(key, r);
        r
    }

    /// Relational product `exists vars. f AND g`, computed without building
    /// the full conjunction.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[BddVar]) -> Bdd {
        let cube = self.cube(vars);
        self.and_exists_cube(f, g, cube)
    }

    fn and_exists_cube(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Bdd {
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        let key = (CacheOp::AndExists, f, g, cube);
        self.stats.ite_calls += 1;
        if let Some(&r) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        self.stats.cache_misses += 1;
        let level = self.level_of_ref(f).min(self.level_of_ref(g));
        let mut cube = cube;
        while !cube.is_true() && self.level_of_ref(cube) < level {
            cube = self.nodes[cube.id() as usize].high;
        }
        let (f1, f0) = self.cofactors(f, level);
        let (g1, g0) = self.cofactors(g, level);
        let r = if !cube.is_true() && self.level_of_ref(cube) == level {
            let next_cube = self.nodes[cube.id() as usize].high;
            let t = self.and_exists_cube(f1, g1, next_cube);
            if t.is_true() {
                Bdd::TRUE
            } else {
                let e = self.and_exists_cube(f0, g0, next_cube);
                self.or(t, e)
            }
        } else {
            let t = self.and_exists_cube(f1, g1, cube);
            let e = self.and_exists_cube(f0, g0, cube);
            let var = self.level2var[level as usize];
            self.mk_node(var, t, e)
        };
        self.cache.insert(key, r);
        r
    }

    /// Evaluates `f` under a complete assignment (indexed by variable index).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        let mut parity = false;
        loop {
            parity ^= cur.is_complement();
            let n = self.nodes[cur.id() as usize];
            if n.var == TERMINAL_VAR {
                return !parity; // terminal is TRUE
            }
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
    }

    /// Returns some satisfying assignment of `f` as `(var, value)` pairs for
    /// the variables on the chosen path, or `None` if `f` is unsatisfiable.
    ///
    /// Variables not mentioned may take either value.
    pub fn pick_sat(&self, f: Bdd) -> Option<Vec<(BddVar, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        let mut parity = false;
        loop {
            parity ^= cur.is_complement();
            let n = self.nodes[cur.id() as usize];
            if n.var == TERMINAL_VAR {
                debug_assert!(!parity, "walk reached FALSE");
                return Some(path);
            }
            // Prefer the branch that is not constant-false (under parity).
            let high_false = n.high == if parity { Bdd::TRUE } else { Bdd::FALSE };
            if !high_false {
                path.push((BddVar(n.var), true));
                cur = n.high;
            } else {
                path.push((BddVar(n.var), false));
                cur = n.low;
            }
        }
    }

    /// Counts the satisfying assignments of `f` over all `num_vars`
    /// variables, as an `f64` (exact for counts below 2^53).
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let mut memo: FastMap<Bdd, f64> = FastMap::default();
        let total_levels = self.num_vars() as u32;
        self.sat_count_rec(f, 0, total_levels, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        level: u32,
        total_levels: u32,
        memo: &mut FastMap<Bdd, f64>,
    ) -> f64 {
        let f_level = self.level_of_ref(f).min(total_levels);
        let skipped = f_level - level;
        let base = if f.is_true() {
            1.0
        } else if f.is_false() {
            0.0
        } else {
            if let Some(&c) = memo.get(&f) {
                return c * 2f64.powi(skipped as i32);
            }
            let (f1, f0) = self.cofactors(f, f_level);
            let c1 = self.sat_count_rec(f1, f_level + 1, total_levels, memo);
            let c0 = self.sat_count_rec(f0, f_level + 1, total_levels, memo);
            let c = c1 + c0;
            memo.insert(f, c);
            c
        };
        base * 2f64.powi(skipped as i32)
    }

    /// Returns the set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Vec<BddVar> {
        let mut seen = vec![false; self.nodes.len()];
        let mut vars = vec![false; self.num_vars()];
        let mut stack = vec![f.id()];
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            let n = self.nodes[id as usize];
            if n.var == TERMINAL_VAR {
                continue;
            }
            vars[n.var as usize] = true;
            stack.push(n.high.id());
            stack.push(n.low.id());
        }
        vars.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| BddVar(i as u32))
            .collect()
    }

    /// Counts the nodes reachable from the given roots (shared nodes counted
    /// once). The terminal is included.
    pub fn reachable_count(&self, roots: &[Bdd]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|r| r.id()).collect();
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            count += 1;
            let n = self.nodes[id as usize];
            if n.var != TERMINAL_VAR {
                stack.push(n.high.id());
                stack.push(n.low.id());
            }
        }
        count
    }

    /// Garbage-collects nodes unreachable from `roots`, compacting the node
    /// arena and clearing operation caches. Returns the remapped roots, in
    /// order; all other previously-held [`Bdd`] handles become invalid.
    pub fn gc(&mut self, roots: &[Bdd]) -> Vec<Bdd> {
        self.stats.gc_runs += 1;
        let mut remap: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        remap[0] = 0; // terminal survives in place
        let mut new_nodes: Vec<Node> = vec![self.nodes[0]];

        // Depth-first copy preserving child-before-parent order.
        fn copy(id: u32, nodes: &[Node], remap: &mut [u32], new_nodes: &mut Vec<Node>) -> u32 {
            if remap[id as usize] != u32::MAX {
                return remap[id as usize];
            }
            let n = nodes[id as usize];
            let h = copy(n.high.id(), nodes, remap, new_nodes);
            let l = copy(n.low.id(), nodes, remap, new_nodes);
            let new_id = new_nodes.len() as u32;
            new_nodes.push(Node {
                var: n.var,
                high: Bdd::new(h, n.high.is_complement()),
                low: Bdd::new(l, n.low.is_complement()),
            });
            remap[id as usize] = new_id;
            new_id
        }

        let new_roots: Vec<Bdd> = roots
            .iter()
            .map(|r| {
                let id = copy(r.id(), &self.nodes, &mut remap, &mut new_nodes);
                Bdd::new(id, r.is_complement())
            })
            .collect();

        self.nodes = new_nodes;
        self.unique.clear();
        for (id, n) in self.nodes.iter().enumerate().skip(1) {
            self.unique.insert((n.var, n.high, n.low), id as u32);
        }
        self.cache.clear();
        new_roots
    }

    /// Clears the operation caches (useful to bound memory between cases).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Renders the BDDs rooted at `roots` in Graphviz dot format: solid
    /// edges for the high branch, dashed for low, dotted marks on
    /// complemented edges. Useful for debugging small functions.
    pub fn to_dot(&self, roots: &[(&str, Bdd)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for (name, r) in roots {
            let style = if r.is_complement() {
                " style=dotted"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(out, "  \"{name}\" -> n{}[{}];", r.id(), style);
            stack.push(r.id());
        }
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            let n = self.nodes[id as usize];
            if n.var == TERMINAL_VAR {
                let _ = writeln!(out, "  n{id} [label=\"1\" shape=box];");
                continue;
            }
            let _ = writeln!(out, "  n{id} [label=\"x{}\"];", n.var);
            let hstyle = if n.high.is_complement() {
                ", style=dotted"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{id} -> n{} [label=\"1\"{}];", n.high.id(), hstyle);
            let lstyle = if n.low.is_complement() {
                " style=dotted"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{id} -> n{} [label=\"0\" style=dashed{}];",
                n.low.id(),
                lstyle
            );
            stack.push(n.high.id());
            stack.push(n.low.id());
        }
        out.push_str("}\n");
        out
    }

    /// Rebuilds the given roots under a new variable order and garbage
    /// collects everything else. `order` must be a permutation of all
    /// variables (top level first). Returns the remapped roots; all other
    /// handles become invalid.
    ///
    /// This is an apply-based reordering: sound by construction, but more
    /// expensive than in-place sifting. The verification methodology follows
    /// the paper in preferring good *static* orders, so reordering is only
    /// exercised by the ordering-ablation experiment.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the manager's variables.
    pub fn set_order(&mut self, order: &[BddVar], roots: &[Bdd]) -> Vec<Bdd> {
        assert_eq!(
            order.len(),
            self.num_vars(),
            "order must cover all variables"
        );
        let mut seen = vec![false; self.num_vars()];
        for v in order {
            assert!(
                !std::mem::replace(&mut seen[v.index()], true),
                "duplicate variable in order"
            );
        }
        // Copy old structure out, then rebuild bottom-up under the new order.
        let old_nodes = self.nodes.clone();
        for (level, v) in order.iter().enumerate() {
            self.var2level[v.index()] = level as u32;
            self.level2var[level] = v.0;
        }
        self.unique.clear();
        self.cache.clear();
        self.nodes.truncate(1);
        self.unique.shrink_to_fit();

        let mut memo: FastMap<u32, Bdd> = FastMap::default();
        let mut new_roots = Vec::with_capacity(roots.len());
        for r in roots {
            let body = self.rebuild_rec(r.id(), &old_nodes, &mut memo);
            new_roots.push(if r.is_complement() { !body } else { body });
        }
        new_roots
    }

    fn rebuild_rec(&mut self, id: u32, old_nodes: &[Node], memo: &mut FastMap<u32, Bdd>) -> Bdd {
        if let Some(&r) = memo.get(&id) {
            return r;
        }
        let n = old_nodes[id as usize];
        let r = if n.var == TERMINAL_VAR {
            Bdd::TRUE
        } else {
            let h_body = self.rebuild_rec(n.high.id(), old_nodes, memo);
            let h = if n.high.is_complement() {
                !h_body
            } else {
                h_body
            };
            let l_body = self.rebuild_rec(n.low.id(), old_nodes, memo);
            let l = if n.low.is_complement() {
                !l_body
            } else {
                l_body
            };
            let v = self.var_bdd(BddVar(n.var));
            self.ite(v, h, l)
        };
        memo.insert(id, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (BddManager, Vec<Bdd>) {
        let mut mgr = BddManager::new();
        let vars = mgr.new_vars(n);
        let bdds = vars.iter().map(|&v| mgr.var_bdd(v)).collect();
        (mgr, bdds)
    }

    #[test]
    fn constants() {
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        assert_eq!(!Bdd::TRUE, Bdd::FALSE);
        assert!(Bdd::TRUE.is_const() && Bdd::FALSE.is_const());
    }

    #[test]
    fn basic_algebra() {
        let (mut m, v) = setup(3);
        let (a, b, c) = (v[0], v[1], v[2]);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, !a), Bdd::TRUE);
        assert_eq!(m.and(a, !a), Bdd::FALSE);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let lhs = {
            let bc = m.or(b, c);
            m.and(a, bc)
        };
        let rhs = {
            let ab = m.and(a, b);
            let ac = m.and(a, c);
            m.or(ab, ac)
        };
        assert_eq!(lhs, rhs); // distributivity, canonical
        let x1 = m.xor(a, b);
        let x2 = m.xor(b, a);
        assert_eq!(x1, x2);
        let xn = m.xnor(a, b);
        assert_eq!(xn, !x1);
    }

    #[test]
    fn de_morgan() {
        let (mut m, v) = setup(2);
        let and = m.and(v[0], v[1]);
        let or_neg = m.or(!v[0], !v[1]);
        assert_eq!(!and, or_neg);
    }

    #[test]
    fn eval_and_pick_sat() {
        let (mut m, v) = setup(3);
        let ab = m.and(v[0], v[1]);
        let f = m.or(ab, v[2]);
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(f, &[true, false, false]));
        assert!(m.eval(f, &[false, false, true]));
        let sat = m.pick_sat(f).expect("satisfiable");
        let mut assignment = [false; 3];
        for (var, val) in sat {
            assignment[var.index()] = val;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.pick_sat(Bdd::FALSE).is_none());
    }

    #[test]
    fn sat_count() {
        let (mut m, v) = setup(3);
        let f = m.and(v[0], v[1]);
        assert_eq!(m.sat_count(f), 2.0); // v2 free
        assert_eq!(m.sat_count(Bdd::TRUE), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE), 0.0);
        let x = m.xor(v[0], v[2]);
        assert_eq!(m.sat_count(x), 4.0);
    }

    #[test]
    fn quantification() {
        let (mut m, v) = setup(3);
        let vars = [BddVar::from_index(1)];
        let f = m.and(v[0], v[1]);
        let ex = m.exists(f, &vars);
        assert_eq!(ex, v[0]);
        let fa = m.forall(f, &vars);
        assert_eq!(fa, Bdd::FALSE);
        let g = m.or(v[0], v[1]);
        let fa2 = m.forall(g, &vars);
        assert_eq!(fa2, v[0]);
        // and_exists equals exists of and.
        let h = m.or(v[1], v[2]);
        let ae = m.and_exists(f, h, &vars);
        let plain = {
            let fh = m.and(f, h);
            m.exists(fh, &vars)
        };
        assert_eq!(ae, plain);
    }

    #[test]
    fn support_set() {
        let (mut m, v) = setup(4);
        let f = {
            let ab = m.and(v[0], v[2]);
            m.or(ab, v[3])
        };
        let s = m.support(f);
        let idx: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(idx, vec![0, 2, 3]);
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.xor(v[0], v[1]);
            m.or(t, v[2])
        };
        let c = m.and(v[1], v[3]);
        let fc = m.constrain(f, c);
        // For every assignment in c, f and fc agree.
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            if m.eval(c, &a) {
                assert_eq!(m.eval(f, &a), m.eval(fc, &a));
            }
        }
        // constrain(f, c) AND c == f AND c
        let lhs = m.and(fc, c);
        let rhs = m.and(f, c);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn constrain_distributes_over_gates() {
        // g(a, b)|c == g(a|c, b|c) — the key soundness property for
        // constraint-based case splitting during symbolic simulation.
        let (mut m, v) = setup(4);
        let a = m.xor(v[0], v[1]);
        let b = m.or(v[1], v[2]);
        let c = {
            let t = m.xnor(v[0], v[3]);
            m.or(t, v[2])
        };
        let g = m.and(a, b);
        let lhs = m.constrain(g, c);
        let ac = m.constrain(a, c);
        let bc = m.constrain(b, c);
        let rhs = m.and(ac, bc);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn restrict_agrees_on_care_set() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.and(v[0], v[1]);
            m.or(t, v[2])
        };
        let c = m.xnor(v[1], v[3]);
        let fr = m.restrict(f, c);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            if m.eval(c, &a) {
                assert_eq!(m.eval(f, &a), m.eval(fr, &a));
            }
        }
    }

    #[test]
    fn gc_preserves_roots() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.and(v[0], v[1]);
            m.or(t, v[2])
        };
        let g = m.xor(v[2], v[3]);
        // Create garbage.
        for i in 0..3 {
            let t = m.and(v[i], v[i + 1]);
            let _ = m.xor(t, v[0]);
        }
        let before = m.stats().allocated;
        let roots = m.gc(&[f, g]);
        let after = m.stats().allocated;
        assert!(after <= before);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let old_f = bits & 1 == 1 && bits >> 1 & 1 == 1 || bits >> 2 & 1 == 1;
            let old_g = (bits >> 2 & 1 == 1) != (bits >> 3 & 1 == 1);
            assert_eq!(m.eval(roots[0], &a), old_f);
            assert_eq!(m.eval(roots[1], &a), old_g);
        }
    }

    #[test]
    fn dot_rendering() {
        let (mut m, v) = setup(2);
        let f = m.and(v[0], v[1]);
        let dot = m.to_dot(&[("and", f), ("nand", !f)]);
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dotted"), "complement edges are marked");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn reorder_preserves_function() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.xor(v[0], v[2]);
            let u = m.and(v[1], v[3]);
            m.or(t, u)
        };
        let new_order: Vec<BddVar> = [3usize, 1, 2, 0]
            .iter()
            .map(|&i| BddVar::from_index(i))
            .collect();
        let roots = m.set_order(&new_order, &[f]);
        assert_eq!(m.level_of(BddVar::from_index(3)), 0);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let expect = ((bits & 1 == 1) != (bits >> 2 & 1 == 1))
                || (bits >> 1 & 1 == 1 && bits >> 3 & 1 == 1);
            assert_eq!(m.eval(roots[0], &a), expect);
        }
    }

    #[test]
    fn interleaved_order_keeps_equality_small() {
        // The classic motivation for the paper's static orders: comparing two
        // n-bit vectors is linear with interleaved variables, exponential with
        // blocked variables.
        let n = 8;
        let mut m = BddManager::new();
        let vars = m.new_vars(2 * n);
        // Interleaved: a0 b0 a1 b1 ...
        let mut eq = Bdd::TRUE;
        for i in 0..n {
            let a = m.var_bdd(vars[2 * i]);
            let b = m.var_bdd(vars[2 * i + 1]);
            let bit_eq = m.xnor(a, b);
            eq = m.and(eq, bit_eq);
        }
        let interleaved = m.reachable_count(&[eq]);

        let mut m2 = BddManager::new();
        let vars2 = m2.new_vars(2 * n);
        // Blocked: a0..a7 b0..b7
        let mut eq2 = Bdd::TRUE;
        for i in 0..n {
            let a = m2.var_bdd(vars2[i]);
            let b = m2.var_bdd(vars2[n + i]);
            let bit_eq = m2.xnor(a, b);
            eq2 = m2.and(eq2, bit_eq);
        }
        let blocked = m2.reachable_count(&[eq2]);
        assert!(
            interleaved * 4 < blocked,
            "interleaved {interleaved} should be much smaller than blocked {blocked}"
        );
    }
}
