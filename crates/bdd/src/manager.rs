//! The ROBDD manager: arena node store with per-variable open-addressed
//! unique subtables, complement edges, ITE with a direct-mapped computed
//! cache, quantification, and the `constrain`/`restrict` minimization
//! operators that carry the paper's case-split constraints from the reference
//! FPU into the implementation FPU.
//!
//! # Kernel layout
//!
//! Nodes live in one flat arena (`Vec<Node>`); a [`Bdd`] is a 32-bit edge
//! (`node id << 1 | complement`). Node ids are **stable for the lifetime of
//! the node**: garbage collection is in-place mark-and-sweep, so live ids
//! never move and [`BddManager::gc`] returns its roots unchanged. Dead slots
//! go on a free list and are reused by the next `mk_node`.
//!
//! The unique table is split into per-variable subtables, each an
//! open-addressed power-of-two array of node ids with linear probing and
//! tombstone-free insert-or-get (deletions happen only during GC, which
//! rebuilds each subtable from the live nodes). The computed cache is a
//! fixed-size direct-mapped array of `(op, f, g, h) -> result` slots with
//! single-probe replace: collisions evict (counted in
//! [`BddStats::cache_evictions`]), and GC preserves every entry whose
//! operands and result survive instead of discarding the cache wholesale.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast non-cryptographic hasher (multiply-xor-shift) for the remaining
/// map uses (`sat_count` memo, reorder rebuild memo), where keys are small
/// tuples of integers.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8-byte words, then fold the partial tail (tagged with its
        // length so `"ab"` and `"ab\0"` hash differently) in one final mix.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_u64(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.write_u64(u64::from_le_bytes(word) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut x = self.0 ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 31;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 29;
        self.0 = x;
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A BDD variable. The index is fixed at creation; its *level* (position in
/// the order) may change through reordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BddVar(pub(crate) u32);

impl BddVar {
    /// Returns the dense index of this variable (creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable handle from a dense index.
    ///
    /// The variable must already exist in the manager this handle is used
    /// with; operations panic otherwise.
    pub fn from_index(index: usize) -> BddVar {
        BddVar(index as u32)
    }
}

/// An edge to a BDD node, possibly complemented. This is the public handle
/// for a boolean function; it is `Copy` and only meaningful together with the
/// [`BddManager`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant true function.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant false function.
    pub const FALSE: Bdd = Bdd(1);

    #[inline]
    fn new(id: u32, complement: bool) -> Bdd {
        Bdd(id << 1 | u32::from(complement))
    }

    #[inline]
    fn id(self) -> u32 {
        self.0 >> 1
    }

    #[inline]
    fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the complement (logical negation) of this function. This is a
    /// constant-time operation thanks to complement edges.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// Returns `true` if this is the constant true function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Returns `true` if this is the constant false function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns `true` if this is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        self.id() == 0
    }
}

impl std::ops::Not for Bdd {
    type Output = Bdd;
    #[inline]
    fn not(self) -> Bdd {
        Bdd::not(self)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.id())
        } else {
            write!(f, "n{}", self.id())
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Variable index (not level).
    var: u32,
    /// High (then) child; never complemented by the canonical form.
    high: Bdd,
    /// Low (else) child; may be complemented.
    low: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;
/// Arena slots on the free list carry this variable tag.
const FREE_VAR: u32 = u32::MAX - 1;
/// Empty slot marker in the open-addressed unique subtables.
const EMPTY_SLOT: u32 = u32::MAX;

/// Default computed-cache size *cap* in entries (a power of two; each entry
/// is 20 bytes). The cache starts at [`INITIAL_CACHE_SIZE`] and doubles on
/// occupancy up to this cap, so small cases keep a hot, compact cache while
/// big sweeps still get capacity. Override per manager with
/// [`BddManager::with_cache_size`] or per run with
/// `RunConfig::bdd_cache_size` / `FMAVERIFY_BDD_CACHE_SIZE`.
pub const DEFAULT_CACHE_SIZE: usize = 1 << 20;

/// Smallest accepted computed-cache size cap; requests below are rounded up.
pub const MIN_CACHE_SIZE: usize = 1 << 10;

/// Number of entries the computed cache starts with (before on-demand
/// doubling); 4096 × 20 bytes sits comfortably in L2.
pub const INITIAL_CACHE_SIZE: usize = 1 << 12;

/// Arenas smaller than this are always collected in place: compaction's
/// locality payoff cannot matter at sizes that already fit in cache, and
/// keeping small collections id-stable keeps the common case simple.
const COMPACT_MIN_ARENA: usize = 1 << 16;

/// Operation tags for the computed cache. Discriminants start at 1 because
/// 0 marks an empty cache slot.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum CacheOp {
    Ite = 1,
    Constrain = 2,
    Restrict = 3,
    Exists = 4,
    AndExists = 5,
}

/// One direct-mapped computed-cache slot: `(op, f, g, h) -> r`, raw edge
/// bits. `tag` packs the manager's cache generation (high 24 bits) with the
/// op (low 8 bits); `op == 0` or a stale generation means empty, which makes
/// [`BddManager::clear_cache`] an O(1) generation bump instead of a
/// multi-megabyte memset.
#[derive(Clone, Copy)]
struct CacheEntry {
    tag: u32,
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

const EMPTY_CACHE_ENTRY: CacheEntry = CacheEntry {
    tag: 0,
    f: 0,
    g: 0,
    h: 0,
    r: 0,
};

/// Largest generation representable in a [`CacheEntry`] tag; the next
/// `clear_cache` past this wraps to 0 with a real memset.
const MAX_CACHE_GEN: u32 = 0x00FF_FFFF;

/// One slot of a unique subtable. The `(high, low)` key is stored inline so
/// a probe never has to chase the node id into the arena (that dependent
/// load is the expensive part of open addressing); `id == EMPTY_SLOT` marks
/// an empty slot.
#[derive(Clone, Copy)]
struct USlot {
    high: u32,
    low: u32,
    id: u32,
}

const EMPTY_USLOT: USlot = USlot {
    high: 0,
    low: 0,
    id: EMPTY_SLOT,
};

/// One per-variable unique subtable: open-addressed, power-of-two, linear
/// probing, inline `(high, low)` keys; `var` is implied by which subtable
/// the entry sits in.
#[derive(Default)]
struct Subtable {
    slots: Vec<USlot>,
    len: u32,
}

impl Subtable {
    /// Doubles capacity (or allocates the initial table) and rehashes.
    fn grow(&mut self) {
        let new_cap = if self.slots.is_empty() {
            8
        } else {
            self.slots.len() * 2
        };
        let mask = new_cap - 1;
        let mut new_slots = vec![EMPTY_USLOT; new_cap];
        for s in self.slots.iter().filter(|s| s.id != EMPTY_SLOT) {
            let mut i = unique_hash(s.high, s.low) as usize & mask;
            while new_slots[i].id != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            new_slots[i] = *s;
        }
        self.slots = new_slots;
    }

    /// Empties the table and right-sizes it for `expected` entries (GC's
    /// rebuild path). Re-allocating to fit the survivors matters: after a
    /// garbage-heavy wave the table can be orders of magnitude larger than
    /// the live set, and both the memset and the sparse re-fill of a
    /// burst-sized table were dominating collection time.
    fn reset_for(&mut self, expected: u32) {
        let cap = (2 * expected as usize + 2).next_power_of_two().max(8);
        if cap * 4 <= self.slots.len() {
            // Grossly oversized for the survivors: re-allocate snug. Keeping
            // moderate headroom (the `else` arm) avoids re-growing a table
            // that will be refilled to a similar size next wave.
            self.slots = vec![EMPTY_USLOT; cap];
        } else {
            self.slots.fill(EMPTY_USLOT);
        }
        self.len = 0;
    }

    /// Inserts an entry known not to be present (GC rebuild path).
    fn insert_unchecked(&mut self, id: u32, high: Bdd, low: Bdd) {
        if (self.len as usize + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = unique_hash(high.0, low.0) as usize & mask;
        while self.slots[i].id != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = USlot {
            high: high.0,
            low: low.0,
            id,
        };
        self.len += 1;
    }
}

/// Splits an already-fetched node into its cofactors (pushing the complement
/// mark down) when `at_level` holds, else duplicates the edge.
#[inline]
fn split_at(f: Bdd, n: Node, at_level: bool) -> (Bdd, Bdd) {
    if !at_level {
        (f, f)
    } else if f.is_complement() {
        (!n.high, !n.low)
    } else {
        (n.high, n.low)
    }
}

#[inline]
fn unique_hash(high: u32, low: u32) -> u64 {
    let mut x = (u64::from(high) << 32 | u64::from(low)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 31;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 29)
}

#[inline]
fn cache_hash(op: CacheOp, f: Bdd, g: Bdd, h: Bdd) -> u64 {
    cache_hash_raw(op as u32, f.0, g.0, h.0)
}

#[inline]
fn cache_hash_raw(op: u32, f: u32, g: u32, h: u32) -> u64 {
    let lo = u64::from(f) << 32 | u64::from(g);
    let hi = u64::from(h) << 8 | u64::from(op);
    let mut x = lo.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ hi.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 31;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 29)
}

/// Statistics the verification engine reports per case (the raw material of
/// the paper's Table 1).
///
/// The operation counters (`ite_calls`, `cache_hits`, `cache_misses`,
/// `nodes_created`, `unique_probes`, `cache_evictions`) are plain `u64`
/// increments on paths that already hash into the unique/computed tables, so
/// keeping them always-on costs nothing measurable; the telemetry layer in
/// `fmaverify::trace` surfaces them per case.
#[derive(Clone, Copy, Debug, Default)]
pub struct BddStats {
    /// Number of nodes currently allocated (live arena slots, including dead
    /// nodes not yet collected but excluding free-list slots).
    pub allocated: usize,
    /// High-water mark of allocated nodes since creation or the last
    /// [`BddManager::reset_peak`].
    pub peak_allocated: usize,
    /// Number of garbage collections performed.
    pub gc_runs: u64,
    /// Recursive apply (`ite`/`constrain`/`restrict`/quantification) calls.
    pub ite_calls: u64,
    /// Computed-table lookups that hit.
    pub cache_hits: u64,
    /// Computed-table lookups that missed (and were recomputed).
    pub cache_misses: u64,
    /// Total nodes ever created (survives garbage collection, unlike
    /// `allocated`).
    pub nodes_created: u64,
    /// Computed-cache stores that overwrote a live entry with a different
    /// key (the cost of the direct-mapped single-probe policy).
    pub cache_evictions: u64,
    /// Unique-table slot inspections (≥ one per `mk_node`; the excess over
    /// `nodes_created` measures probe-chain length, i.e. table health).
    pub unique_probes: u64,
    /// Nodes returned to the free list by garbage collection.
    pub gc_freed: u64,
    /// Occupied computed-cache slots right now (gauge, not a counter).
    pub cache_occupancy: usize,
}

/// A reduced ordered BDD manager with complement edges.
///
/// # Examples
///
/// ```
/// use fmaverify_bdd::BddManager;
///
/// let mut mgr = BddManager::new();
/// let x = mgr.new_var();
/// let y = mgr.new_var();
/// let fx = mgr.var_bdd(x);
/// let fy = mgr.var_bdd(y);
/// let xy = mgr.and(fx, fy);
/// let yx = mgr.and(fy, fx);
/// assert_eq!(xy, yx); // canonical
/// ```
pub struct BddManager {
    /// Flat arena; slot 0 is the terminal, free slots carry [`FREE_VAR`].
    nodes: Vec<Node>,
    /// Free arena slots, reused before the arena grows.
    free: Vec<u32>,
    /// Per-variable unique subtables, indexed by variable index.
    subtables: Vec<Subtable>,
    /// Direct-mapped computed cache (power-of-two length, grows on occupancy
    /// up to `cache_limit`).
    cache: Vec<CacheEntry>,
    cache_mask: usize,
    cache_filled: usize,
    cache_limit: usize,
    /// Current cache generation; entries tagged with an older generation are
    /// logically empty (see [`BddManager::clear_cache`]).
    cache_gen: u32,
    /// `var2level[v]` is the current level of variable `v` (0 = top).
    var2level: Vec<u32>,
    /// `level2var[l]` is the variable at level `l`.
    level2var: Vec<u32>,
    stats: BddStats,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("vars", &self.var2level.len())
            .field("allocated", &(self.nodes.len() - self.free.len()))
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables and the default computed
    /// cache ([`DEFAULT_CACHE_SIZE`] entries).
    pub fn new() -> BddManager {
        Self::with_cache_size(DEFAULT_CACHE_SIZE)
    }

    /// Creates an empty manager whose computed cache may grow to `entries`
    /// slots (rounded up to a power of two, at least [`MIN_CACHE_SIZE`]).
    ///
    /// The cache is direct-mapped and lossy: a smaller cap trades recompute
    /// work for memory, it never affects results. It starts at
    /// [`INITIAL_CACHE_SIZE`] (or the cap, if smaller) and doubles whenever
    /// three quarters of it fill, so the hot probe range tracks the working
    /// set instead of thrashing TLBs on a huge cold array.
    pub fn with_cache_size(entries: usize) -> BddManager {
        let limit = entries.next_power_of_two().max(MIN_CACHE_SIZE);
        let cap = limit.min(INITIAL_CACHE_SIZE);
        BddManager {
            // Slot 0 is the terminal node.
            nodes: vec![Node {
                var: TERMINAL_VAR,
                high: Bdd::TRUE,
                low: Bdd::TRUE,
            }],
            free: Vec::new(),
            subtables: Vec::new(),
            cache: vec![EMPTY_CACHE_ENTRY; cap],
            cache_mask: cap - 1,
            cache_filled: 0,
            cache_limit: limit,
            cache_gen: 0,
            var2level: Vec::new(),
            level2var: Vec::new(),
            stats: BddStats {
                allocated: 1,
                peak_allocated: 1,
                ..BddStats::default()
            },
        }
    }

    /// Number of slots in the computed cache.
    pub fn cache_capacity(&self) -> usize {
        self.cache.len()
    }

    /// Creates a fresh variable at the bottom of the current order.
    pub fn new_var(&mut self) -> BddVar {
        let v = self.var2level.len() as u32;
        assert!(v < FREE_VAR, "variable index space exhausted");
        self.var2level.push(v);
        self.level2var.push(v);
        self.subtables.push(Subtable::default());
        BddVar(v)
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<BddVar> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables in the manager.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Returns the current level of a variable (0 = top of the order).
    pub fn level_of(&self, v: BddVar) -> usize {
        self.var2level[v.index()] as usize
    }

    /// Returns the current variable order, top level first.
    pub fn current_order(&self) -> Vec<BddVar> {
        self.level2var.iter().map(|&v| BddVar(v)).collect()
    }

    /// Returns the variable currently at `level` (0 = top of the order).
    pub fn var_at_level(&self, level: usize) -> BddVar {
        BddVar(self.level2var[level])
    }

    /// Returns manager statistics.
    pub fn stats(&self) -> BddStats {
        let mut s = self.stats;
        s.allocated = self.nodes.len() - self.free.len();
        // The allocated count only shrinks at a collection (which refreshes
        // the high-water mark first), so folding the current size in here
        // keeps `peak_allocated` exact without bookkeeping in `mk_node`.
        s.peak_allocated = s.peak_allocated.max(s.allocated);
        s.cache_occupancy = self.cache_filled;
        s
    }

    /// Resets the peak-allocated-node high-water mark to the current size.
    pub fn reset_peak(&mut self) {
        self.stats.peak_allocated = self.nodes.len() - self.free.len();
    }

    #[inline]
    fn level_of_ref(&self, f: Bdd) -> u32 {
        let var = self.nodes[f.id() as usize].var;
        if var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[var as usize]
        }
    }

    /// The BDD for a single variable.
    pub fn var_bdd(&mut self, v: BddVar) -> Bdd {
        assert!(v.index() < self.num_vars(), "unknown variable {v:?}");
        self.mk_node(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// The BDD for the negation of a single variable.
    pub fn nvar_bdd(&mut self, v: BddVar) -> Bdd {
        !self.var_bdd(v)
    }

    /// Creates (or finds) the node `if var then high else low`, applying the
    /// reduction and complement-edge canonicalization rules.
    ///
    /// Insert-or-get on the open-addressed subtable: one linear-probe scan
    /// either finds the node or lands on the empty slot where it belongs.
    fn mk_node(&mut self, var: u32, high: Bdd, low: Bdd) -> Bdd {
        if high == low {
            return high;
        }
        // Canonical form: the high edge is never complemented.
        let (high, low, out_complement) = if high.is_complement() {
            (!high, !low, true)
        } else {
            (high, low, false)
        };
        // Keep the load factor at or below 1/2: linear probing degrades
        // sharply past that, and the inline-keyed slots are only 12 bytes.
        let table = &mut self.subtables[var as usize];
        if (table.len as usize + 1) * 2 > table.slots.len() {
            table.grow();
        }
        let mask = table.slots.len() - 1;
        let mut i = unique_hash(high.0, low.0) as usize & mask;
        let mut probes = 1u64;
        loop {
            let s = table.slots[i];
            if s.id == EMPTY_SLOT {
                break;
            }
            if s.high == high.0 && s.low == low.0 {
                self.stats.unique_probes += probes;
                return Bdd::new(s.id, out_complement);
            }
            probes += 1;
            i = (i + 1) & mask;
        }
        self.stats.unique_probes += probes;
        // Not present: allocate (reusing a free slot if any) and fill the
        // probe's final empty slot.
        let node = Node { var, high, low };
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                let id = self.nodes.len() as u32;
                assert!(id < FREE_VAR, "arena exhausted");
                self.nodes.push(node);
                id
            }
        };
        let table = &mut self.subtables[var as usize];
        table.slots[i] = USlot {
            high: high.0,
            low: low.0,
            id,
        };
        table.len += 1;
        self.stats.nodes_created += 1;
        Bdd::new(id, out_complement)
    }

    /// Single-probe computed-cache lookup.
    #[inline]
    fn cache_get(&mut self, op: CacheOp, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        let tag = self.cache_gen << 8 | op as u32;
        let e = &self.cache[cache_hash(op, f, g, h) as usize & self.cache_mask];
        if e.tag == tag && e.f == f.0 && e.g == g.0 && e.h == h.0 {
            self.stats.cache_hits += 1;
            Some(Bdd(e.r))
        } else {
            self.stats.cache_misses += 1;
            None
        }
    }

    /// Single-probe computed-cache store (replace on collision).
    #[inline]
    fn cache_put(&mut self, op: CacheOp, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        let tag = self.cache_gen << 8 | op as u32;
        let e = &mut self.cache[cache_hash(op, f, g, h) as usize & self.cache_mask];
        let was_live = e.tag & 0xFF != 0 && e.tag >> 8 == self.cache_gen;
        if !was_live {
            self.cache_filled += 1;
        } else if e.tag != tag || e.f != f.0 || e.g != g.0 || e.h != h.0 {
            self.stats.cache_evictions += 1;
        }
        *e = CacheEntry {
            tag,
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
        };
        // Grow at half full: a direct-mapped table's conflict-eviction rate
        // climbs steeply past that point. (Conflict-eviction *pressure* is
        // deliberately not a growth trigger: churn-heavy workloads evict
        // constantly on entries that are never re-queried, and growing for
        // them only inflates the per-collection cache scan.)
        if self.cache_filled * 2 >= self.cache.len() && self.cache.len() < self.cache_limit {
            self.grow_cache();
        }
    }

    /// Doubles the computed cache (up to its cap), re-placing live entries.
    fn grow_cache(&mut self) {
        let new_cap = (self.cache.len() * 2).min(self.cache_limit);
        let mask = new_cap - 1;
        let mut new_cache = vec![EMPTY_CACHE_ENTRY; new_cap];
        let gen = self.cache_gen;
        let mut filled = 0usize;
        for e in &self.cache {
            if e.tag & 0xFF == 0 || e.tag >> 8 != gen {
                continue;
            }
            let i = cache_hash_raw(e.tag & 0xFF, e.f, e.g, e.h) as usize & mask;
            if new_cache[i].tag & 0xFF == 0 {
                filled += 1;
            }
            new_cache[i] = *e;
        }
        self.cache = new_cache;
        self.cache_mask = mask;
        self.cache_filled = filled;
    }

    /// If-then-else: `ite(f, g, h) = (f AND g) OR (NOT f AND h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal and simplification rules.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        let (f, g, h) = {
            let mut g = g;
            let mut h = h;
            if g == f {
                g = Bdd::TRUE;
            } else if g == !f {
                g = Bdd::FALSE;
            }
            if h == f {
                h = Bdd::FALSE;
            } else if h == !f {
                h = Bdd::TRUE;
            }
            (f, g, h)
        };
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return !f;
        }
        // Commutation canonicalization (the standard CUDD rules): for the
        // commutative forms, put a canonical operand in the test position so
        // `and(a, b)` and `and(b, a)` probe the same cache slot. Comparing
        // node ids (not levels) is enough for canonicity — both ways of
        // writing the commuted call compare the same id pair — and avoids
        // two dependent arena loads per call on the and/or fast path. In
        // each arm both compared operands are non-constant, with distinct
        // ids (the constant and `±f` combinations were all resolved above).
        let (f, g, h) = {
            let (mut f, mut g, mut h) = (f, g, h);
            if g.is_true() {
                // OR: ite(f, 1, h) == ite(h, 1, f).
                if h.id() < f.id() {
                    std::mem::swap(&mut f, &mut h);
                }
            } else if h.is_false() {
                // AND: ite(f, g, 0) == ite(g, f, 0).
                if g.id() < f.id() {
                    std::mem::swap(&mut f, &mut g);
                }
            } else if g.is_false() {
                // NOR-ish: ite(f, 0, h) == ite(!h, 0, !f).
                if h.id() < f.id() {
                    let (nf, nh) = (!f, !h);
                    f = nh;
                    h = nf;
                }
            } else if h.is_true() {
                // Implication: ite(f, g, 1) == ite(!g, !f, 1).
                if g.id() < f.id() {
                    let (nf, ng) = (!f, !g);
                    f = ng;
                    g = nf;
                }
            } else if h == !g {
                // XNOR: ite(f, g, !g) == ite(g, f, !f).
                if g.id() < f.id() {
                    std::mem::swap(&mut f, &mut g);
                    h = !g;
                }
            }
            (f, g, h)
        };
        // Normalize: first argument positive, and use !ite(f,!g,!h) to make g
        // positive, improving cache hit rates.
        let (f, g, h, out_neg) = if f.is_complement() {
            (!f, h, g, false)
        } else {
            (f, g, h, false)
        };
        let (f, g, h, out_neg) = if g.is_complement() {
            (f, !g, !h, !out_neg)
        } else {
            (f, g, h, out_neg)
        };
        self.stats.ite_calls += 1;
        if let Some(r) = self.cache_get(CacheOp::Ite, f, g, h) {
            return if out_neg { !r } else { r };
        }
        let (lf, nf) = self.level_node(f);
        let (lg, ng) = self.level_node(g);
        let (lh, nh) = self.level_node(h);
        let level = lf.min(lg).min(lh);
        let (f1, f0) = split_at(f, nf, lf == level);
        let (g1, g0) = split_at(g, ng, lg == level);
        let (h1, h0) = split_at(h, nh, lh == level);
        let t = self.ite(f1, g1, h1);
        let e = self.ite(f0, g0, h0);
        let var = self.level2var[level as usize];
        let r = self.mk_node(var, t, e);
        self.cache_put(CacheOp::Ite, f, g, h, r);
        if out_neg {
            !r
        } else {
            r
        }
    }

    /// Cofactors of `f` with respect to the variable at `level`, pushing
    /// complement marks down.
    #[inline]
    fn cofactors(&self, f: Bdd, level: u32) -> (Bdd, Bdd) {
        let (lf, n) = self.level_node(f);
        split_at(f, n, lf == level)
    }

    /// Fetches `f`'s node and level in one arena access: the recursive
    /// operators need both, and loading the node twice (once for the level
    /// comparison, once for the cofactors) doubled the random-access
    /// traffic that dominates large traversals.
    #[inline]
    fn level_node(&self, f: Bdd) -> (u32, Node) {
        let n = self.nodes[f.id() as usize];
        let level = if n.var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[n.var as usize]
        };
        (level, n)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, !g, g)
    }

    /// Equivalence (xnor).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, !g)
    }

    /// Implication `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Coudert–Madre generalized cofactor ("constrain").
    ///
    /// `constrain(f, c)` agrees with `f` on every assignment satisfying `c`
    /// and is free to take any value elsewhere; the particular choice maps
    /// each off-care-set point to its "nearest" care-set point, which makes
    /// the operator distribute over gates: `g(a,b)|c = g(a|c, b|c)`. This is
    /// the property the paper exploits to case-split the *implementation* FPU
    /// using constraints defined only on the *reference* FPU.
    ///
    /// # Panics
    /// Panics if `c` is the constant false (the care set must be non-empty).
    pub fn constrain(&mut self, f: Bdd, c: Bdd) -> Bdd {
        assert!(!c.is_false(), "constrain care-set must be non-empty");
        self.constrain_rec(f, c)
    }

    fn constrain_rec(&mut self, f: Bdd, c: Bdd) -> Bdd {
        if c.is_true() || f.is_const() {
            return f;
        }
        if c == f {
            return Bdd::TRUE;
        }
        if c == !f {
            return Bdd::FALSE;
        }
        self.stats.ite_calls += 1;
        if let Some(r) = self.cache_get(CacheOp::Constrain, f, c, Bdd::FALSE) {
            return r;
        }
        let (lf, nf) = self.level_node(f);
        let (lc, nc) = self.level_node(c);
        let level = lf.min(lc);
        let (c1, c0) = split_at(c, nc, lc == level);
        let (f1, f0) = split_at(f, nf, lf == level);
        let r = if c1.is_false() {
            self.constrain_rec(f0, c0)
        } else if c0.is_false() {
            self.constrain_rec(f1, c1)
        } else {
            let t = self.constrain_rec(f1, c1);
            let e = self.constrain_rec(f0, c0);
            let var = self.level2var[level as usize];
            self.mk_node(var, t, e)
        };
        self.cache_put(CacheOp::Constrain, f, c, Bdd::FALSE, r);
        r
    }

    /// The "restrict" minimization operator (sibling substitution).
    ///
    /// Like [`BddManager::constrain`] it agrees with `f` on the care set `c`,
    /// but it additionally drops variables of `c` that do not appear in `f`,
    /// which often yields smaller results. Unlike `constrain` it does **not**
    /// distribute over gates; the paper evaluates such "more aggressive
    /// minimization algorithms" and finds them slower overall (our
    /// `minimize_ablation` bench reproduces that comparison).
    ///
    /// # Panics
    /// Panics if `c` is the constant false.
    pub fn restrict(&mut self, f: Bdd, c: Bdd) -> Bdd {
        assert!(!c.is_false(), "restrict care-set must be non-empty");
        self.restrict_rec(f, c)
    }

    fn restrict_rec(&mut self, f: Bdd, c: Bdd) -> Bdd {
        if c.is_true() || f.is_const() {
            return f;
        }
        if c == f {
            return Bdd::TRUE;
        }
        if c == !f {
            return Bdd::FALSE;
        }
        self.stats.ite_calls += 1;
        if let Some(r) = self.cache_get(CacheOp::Restrict, f, c, Bdd::FALSE) {
            return r;
        }
        let f_level = self.level_of_ref(f);
        let c_level = self.level_of_ref(c);
        let r = if c_level < f_level {
            // Top variable of `c` does not constrain `f` at this level:
            // quantify it out of the care set.
            let (c1, c0) = self.cofactors(c, c_level);
            let c_up = self.or(c1, c0);
            self.restrict_rec(f, c_up)
        } else {
            let level = f_level.min(c_level);
            let (c1, c0) = self.cofactors(c, level);
            let (f1, f0) = self.cofactors(f, level);
            if c1.is_false() {
                self.restrict_rec(f0, c0)
            } else if c0.is_false() {
                self.restrict_rec(f1, c1)
            } else {
                let t = self.restrict_rec(f1, c1);
                let e = self.restrict_rec(f0, c0);
                let var = self.level2var[level as usize];
                self.mk_node(var, t, e)
            }
        };
        self.cache_put(CacheOp::Restrict, f, c, Bdd::FALSE, r);
        r
    }

    /// Existential quantification of `f` over the variables in `vars`.
    pub fn exists(&mut self, f: Bdd, vars: &[BddVar]) -> Bdd {
        let cube = self.cube(vars);
        self.exists_cube(f, cube)
    }

    /// Universal quantification of `f` over the variables in `vars`.
    pub fn forall(&mut self, f: Bdd, vars: &[BddVar]) -> Bdd {
        let cube = self.cube(vars);
        !self.exists_cube(!f, cube)
    }

    /// Builds the positive cube (conjunction) of the given variables.
    pub fn cube(&mut self, vars: &[BddVar]) -> Bdd {
        let mut sorted: Vec<BddVar> = vars.to_vec();
        sorted.sort_by_key(|v| std::cmp::Reverse(self.level_of(*v)));
        let mut acc = Bdd::TRUE;
        for v in sorted {
            acc = self.mk_node(v.0, acc, Bdd::FALSE);
        }
        acc
    }

    fn exists_cube(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        if f.is_const() || cube.is_true() {
            return f;
        }
        self.stats.ite_calls += 1;
        if let Some(r) = self.cache_get(CacheOp::Exists, f, cube, Bdd::FALSE) {
            return r;
        }
        let f_level = self.level_of_ref(f);
        // Skip cube variables above f's top variable.
        let mut cube = cube;
        while !cube.is_true() && self.level_of_ref(cube) < f_level {
            cube = self.nodes[cube.id() as usize].high;
        }
        if cube.is_true() {
            return f;
        }
        let level = f_level;
        let (f1, f0) = self.cofactors(f, level);
        let r = if self.level_of_ref(cube) == level {
            let next_cube = self.nodes[cube.id() as usize].high;
            let t = self.exists_cube(f1, next_cube);
            let e = self.exists_cube(f0, next_cube);
            self.or(t, e)
        } else {
            let t = self.exists_cube(f1, cube);
            let e = self.exists_cube(f0, cube);
            let var = self.level2var[level as usize];
            self.mk_node(var, t, e)
        };
        self.cache_put(CacheOp::Exists, f, cube, Bdd::FALSE, r);
        r
    }

    /// Relational product `exists vars. f AND g`, computed without building
    /// the full conjunction.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[BddVar]) -> Bdd {
        let cube = self.cube(vars);
        self.and_exists_cube(f, g, cube)
    }

    fn and_exists_cube(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Bdd {
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        self.stats.ite_calls += 1;
        if let Some(r) = self.cache_get(CacheOp::AndExists, f, g, cube) {
            return r;
        }
        let level = self.level_of_ref(f).min(self.level_of_ref(g));
        let mut cube = cube;
        while !cube.is_true() && self.level_of_ref(cube) < level {
            cube = self.nodes[cube.id() as usize].high;
        }
        let (f1, f0) = self.cofactors(f, level);
        let (g1, g0) = self.cofactors(g, level);
        let r = if !cube.is_true() && self.level_of_ref(cube) == level {
            let next_cube = self.nodes[cube.id() as usize].high;
            let t = self.and_exists_cube(f1, g1, next_cube);
            if t.is_true() {
                Bdd::TRUE
            } else {
                let e = self.and_exists_cube(f0, g0, next_cube);
                self.or(t, e)
            }
        } else {
            let t = self.and_exists_cube(f1, g1, cube);
            let e = self.and_exists_cube(f0, g0, cube);
            let var = self.level2var[level as usize];
            self.mk_node(var, t, e)
        };
        self.cache_put(CacheOp::AndExists, f, g, cube, r);
        r
    }

    /// Evaluates `f` under a complete assignment (indexed by variable index).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        let mut parity = false;
        loop {
            parity ^= cur.is_complement();
            let n = self.nodes[cur.id() as usize];
            if n.var == TERMINAL_VAR {
                return !parity; // terminal is TRUE
            }
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
    }

    /// Returns some satisfying assignment of `f` as `(var, value)` pairs for
    /// the variables on the chosen path, or `None` if `f` is unsatisfiable.
    ///
    /// Variables not mentioned may take either value.
    pub fn pick_sat(&self, f: Bdd) -> Option<Vec<(BddVar, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        let mut parity = false;
        loop {
            parity ^= cur.is_complement();
            let n = self.nodes[cur.id() as usize];
            if n.var == TERMINAL_VAR {
                debug_assert!(!parity, "walk reached FALSE");
                return Some(path);
            }
            // Prefer the branch that is not constant-false (under parity).
            let high_false = n.high == if parity { Bdd::TRUE } else { Bdd::FALSE };
            if !high_false {
                path.push((BddVar(n.var), true));
                cur = n.high;
            } else {
                path.push((BddVar(n.var), false));
                cur = n.low;
            }
        }
    }

    /// Counts the satisfying assignments of `f` over all `num_vars`
    /// variables, as an `f64` (exact for counts below 2^53).
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let mut memo: FastMap<Bdd, f64> = FastMap::default();
        let total_levels = self.num_vars() as u32;
        self.sat_count_rec(f, 0, total_levels, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        level: u32,
        total_levels: u32,
        memo: &mut FastMap<Bdd, f64>,
    ) -> f64 {
        let f_level = self.level_of_ref(f).min(total_levels);
        let skipped = f_level - level;
        let base = if f.is_true() {
            1.0
        } else if f.is_false() {
            0.0
        } else {
            if let Some(&c) = memo.get(&f) {
                return c * 2f64.powi(skipped as i32);
            }
            let (f1, f0) = self.cofactors(f, f_level);
            let c1 = self.sat_count_rec(f1, f_level + 1, total_levels, memo);
            let c0 = self.sat_count_rec(f0, f_level + 1, total_levels, memo);
            let c = c1 + c0;
            memo.insert(f, c);
            c
        };
        base * 2f64.powi(skipped as i32)
    }

    /// Returns the set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Vec<BddVar> {
        let mut seen = vec![false; self.nodes.len()];
        let mut vars = vec![false; self.num_vars()];
        let mut stack = vec![f.id()];
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            let n = self.nodes[id as usize];
            if n.var == TERMINAL_VAR {
                continue;
            }
            vars[n.var as usize] = true;
            stack.push(n.high.id());
            stack.push(n.low.id());
        }
        vars.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| BddVar(i as u32))
            .collect()
    }

    /// Counts the nodes reachable from the given roots (shared nodes counted
    /// once). The terminal is included.
    pub fn reachable_count(&self, roots: &[Bdd]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|r| r.id()).collect();
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            count += 1;
            let n = self.nodes[id as usize];
            if n.var != TERMINAL_VAR {
                stack.push(n.high.id());
                stack.push(n.low.id());
            }
        }
        count
    }

    /// Garbage-collects nodes unreachable from `roots`.
    ///
    /// Normally collection is **in place**: dead arena slots go on the free
    /// list (ids are stable, so the returned roots equal the input roots),
    /// subtables are rebuilt from the live nodes, and computed-cache entries
    /// whose operands and result all survive are **kept** — only entries
    /// touching dead nodes are dropped. That is the right trade for the
    /// engine's dominant pattern (a long-lived working set re-derived across
    /// collections).
    ///
    /// When a large arena is almost entirely dead (under 1/8 of its slots
    /// live), the collector instead **compacts** into a dense fresh arena:
    /// ids are remapped (use the returned roots) and the computed cache is
    /// dropped — nearly all of it referenced dead nodes anyway — in exchange
    /// for the cache locality of a working set packed into a small
    /// contiguous region. Handles other than the returned roots become
    /// invalid on either path.
    pub fn gc(&mut self, roots: &[Bdd]) -> Vec<Bdd> {
        self.stats.gc_runs += 1;
        // The arena is about to shrink: capture the high-water mark now
        // (`mk_node` does not track it per-allocation).
        let allocated = self.nodes.len() - self.free.len();
        self.stats.peak_allocated = self.stats.peak_allocated.max(allocated);
        let mut mark = vec![false; self.nodes.len()];
        mark[0] = true; // terminal survives in place
        let mut live = 1usize;
        let mut stack: Vec<u32> = Vec::new();
        for r in roots {
            if !mark[r.id() as usize] {
                mark[r.id() as usize] = true;
                live += 1;
                stack.push(r.id());
            }
        }
        while let Some(id) = stack.pop() {
            let n = self.nodes[id as usize];
            if n.var == TERMINAL_VAR {
                continue;
            }
            for child in [n.high.id(), n.low.id()] {
                if !mark[child as usize] {
                    mark[child as usize] = true;
                    live += 1;
                    stack.push(child);
                }
            }
        }

        if self.nodes.len() >= COMPACT_MIN_ARENA && live * 8 <= self.nodes.len() {
            return self.gc_compact(roots, allocated);
        }

        // Sweep: free every unmarked, not-already-free slot, counting the
        // survivors per variable so the subtables can be rebuilt right-sized.
        let mut freed = 0u64;
        let mut live_per_var = vec![0u32; self.subtables.len()];
        for (id, &is_live) in mark.iter().enumerate().skip(1) {
            let n = &mut self.nodes[id];
            if is_live {
                live_per_var[n.var as usize] += 1;
            } else if n.var != FREE_VAR {
                n.var = FREE_VAR;
                self.free.push(id as u32);
                freed += 1;
            }
        }
        self.stats.gc_freed += freed;

        // Rebuild the subtables from the live nodes (this is the only place
        // entries are ever removed, which keeps inserts tombstone-free).
        for (var, t) in self.subtables.iter_mut().enumerate() {
            t.reset_for(live_per_var[var]);
        }
        for id in 1..self.nodes.len() {
            let n = self.nodes[id];
            if n.var != FREE_VAR {
                self.subtables[n.var as usize].insert_unchecked(id as u32, n.high, n.low);
            }
        }

        // Preserve computed-cache entries that reference only live nodes
        // (pruned in place — re-placing survivors costs more than clearing
        // the dead when most entries survive).
        let gen = self.cache_gen;
        let mut survivors = 0usize;
        for e in &mut self.cache {
            if e.tag & 0xFF == 0 || e.tag >> 8 != gen {
                continue;
            }
            let live = mark[(e.f >> 1) as usize]
                && mark[(e.g >> 1) as usize]
                && mark[(e.h >> 1) as usize]
                && mark[(e.r >> 1) as usize];
            if live {
                survivors += 1;
            } else {
                *e = EMPTY_CACHE_ENTRY;
                self.cache_filled -= 1;
            }
        }
        // Scanning the cache is the recurring cost of preservation, so the
        // table must not stay burst-sized forever: when it is ≥ 4× larger
        // than the survivors warrant, compact into a right-sized table.
        // (Only grossly oversized tables are worth the re-placement pass.)
        let floor = INITIAL_CACHE_SIZE.min(self.cache.len());
        let target = (survivors.max(1) * 2)
            .next_power_of_two()
            .clamp(floor, self.cache.len());
        if target * 4 <= self.cache.len() {
            let mask = target - 1;
            let mut new_cache = vec![EMPTY_CACHE_ENTRY; target];
            let mut filled = 0usize;
            for e in &self.cache {
                if e.tag & 0xFF == 0 {
                    continue;
                }
                let i = cache_hash_raw(e.tag & 0xFF, e.f, e.g, e.h) as usize & mask;
                if new_cache[i].tag & 0xFF == 0 {
                    filled += 1;
                }
                new_cache[i] = *e;
            }
            self.cache = new_cache;
            self.cache_mask = mask;
            self.cache_filled = filled;
        }

        roots.to_vec()
    }

    /// Compacting collection for a mostly-dead arena: depth-first copies the
    /// live graph into a dense fresh arena (children before parents, so
    /// traversal order matches memory order), rebuilds the subtables
    /// right-sized, and drops the computed cache (its entries name the old
    /// ids). Returns the remapped roots.
    fn gc_compact(&mut self, roots: &[Bdd], allocated: usize) -> Vec<Bdd> {
        let old_nodes = std::mem::take(&mut self.nodes);
        let mut remap: Vec<u32> = vec![u32::MAX; old_nodes.len()];
        remap[0] = 0;
        self.nodes.push(old_nodes[0]);

        // Recursion depth is bounded by the number of levels (children sit
        // strictly below their parent), not by the node count.
        fn copy(id: u32, old: &[Node], remap: &mut [u32], new_nodes: &mut Vec<Node>) -> u32 {
            if remap[id as usize] != u32::MAX {
                return remap[id as usize];
            }
            let n = old[id as usize];
            let h = copy(n.high.id(), old, remap, new_nodes);
            let l = copy(n.low.id(), old, remap, new_nodes);
            let new_id = new_nodes.len() as u32;
            new_nodes.push(Node {
                var: n.var,
                high: Bdd::new(h, n.high.is_complement()),
                low: Bdd::new(l, n.low.is_complement()),
            });
            remap[id as usize] = new_id;
            new_id
        }

        let new_roots: Vec<Bdd> = roots
            .iter()
            .map(|r| {
                let id = copy(r.id(), &old_nodes, &mut remap, &mut self.nodes);
                Bdd::new(id, r.is_complement())
            })
            .collect();

        self.free.clear();
        self.stats.gc_freed += (allocated - self.nodes.len()) as u64;

        let mut live_per_var = vec![0u32; self.subtables.len()];
        for n in self.nodes.iter().skip(1) {
            live_per_var[n.var as usize] += 1;
        }
        for (var, t) in self.subtables.iter_mut().enumerate() {
            t.reset_for(live_per_var[var]);
        }
        for id in 1..self.nodes.len() {
            let n = self.nodes[id];
            self.subtables[n.var as usize].insert_unchecked(id as u32, n.high, n.low);
        }

        self.clear_cache();
        new_roots
    }

    /// Clears the operation caches (useful to bound memory between cases).
    ///
    /// O(1): bumps the cache generation so every entry is logically stale;
    /// slots are physically reset only when the 24-bit generation wraps.
    pub fn clear_cache(&mut self) {
        if self.cache_gen == MAX_CACHE_GEN {
            self.cache_gen = 0;
            self.cache.fill(EMPTY_CACHE_ENTRY);
        } else {
            self.cache_gen += 1;
        }
        self.cache_filled = 0;
    }

    /// Checks the kernel invariants, returning a description of the first
    /// violation: subtable entries point at live nodes of the right variable,
    /// no `(var, high, low)` triple appears twice, subtable lengths match,
    /// nodes are canonical (uncomplemented high edge, children strictly below
    /// their parent's level), and the free list is consistent. Intended for
    /// tests; cost is linear in the arena.
    pub fn validate(&self) -> Result<(), String> {
        let mut in_table = vec![false; self.nodes.len()];
        for (var, t) in self.subtables.iter().enumerate() {
            let mut filled = 0u32;
            for s in t.slots.iter().filter(|s| s.id != EMPTY_SLOT) {
                filled += 1;
                let id = s.id;
                let n = self
                    .nodes
                    .get(id as usize)
                    .ok_or_else(|| format!("subtable {var} points past arena: {id}"))?;
                if n.var != var as u32 {
                    return Err(format!("subtable {var} holds node {id} with var {}", n.var));
                }
                if s.high != n.high.0 || s.low != n.low.0 {
                    return Err(format!("subtable {var} inline key for node {id} is stale"));
                }
                if std::mem::replace(&mut in_table[id as usize], true) {
                    return Err(format!("node {id} appears in a subtable twice"));
                }
                if n.high.is_complement() {
                    return Err(format!("node {id} has a complemented high edge"));
                }
                if n.high == n.low {
                    return Err(format!("node {id} is redundant (high == low)"));
                }
                let level = self.var2level[var];
                for child in [n.high, n.low] {
                    let cn = &self.nodes[child.id() as usize];
                    if cn.var == FREE_VAR {
                        return Err(format!("node {id} points at freed node {}", child.id()));
                    }
                    if cn.var != TERMINAL_VAR && self.var2level[cn.var as usize] <= level {
                        return Err(format!("node {id} child {} not below it", child.id()));
                    }
                }
            }
            if filled != t.len {
                return Err(format!(
                    "subtable {var} len {} but {filled} filled slots",
                    t.len
                ));
            }
        }
        let mut triples: FastMap<(u32, Bdd, Bdd), u32> = FastMap::default();
        for (id, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == FREE_VAR {
                if in_table[id] {
                    return Err(format!("freed node {id} still in a subtable"));
                }
                continue;
            }
            if !in_table[id] {
                return Err(format!("live node {id} missing from its subtable"));
            }
            if let Some(prev) = triples.insert((n.var, n.high, n.low), id as u32) {
                return Err(format!(
                    "duplicate triple (var {}, {:?}, {:?}) at nodes {prev} and {id}",
                    n.var, n.high, n.low
                ));
            }
        }
        let mut free_seen = vec![false; self.nodes.len()];
        for &id in &self.free {
            if self.nodes[id as usize].var != FREE_VAR {
                return Err(format!("free-list slot {id} is not freed"));
            }
            if std::mem::replace(&mut free_seen[id as usize], true) {
                return Err(format!("slot {id} on the free list twice"));
            }
        }
        let filled = self
            .cache
            .iter()
            .filter(|e| e.tag & 0xFF != 0 && e.tag >> 8 == self.cache_gen)
            .count();
        if filled != self.cache_filled {
            return Err(format!(
                "cache_filled {} but {filled} occupied slots",
                self.cache_filled
            ));
        }
        Ok(())
    }

    /// Renders the BDDs rooted at `roots` in Graphviz dot format: solid
    /// edges for the high branch, dashed for low, dotted marks on
    /// complemented edges. Useful for debugging small functions.
    pub fn to_dot(&self, roots: &[(&str, Bdd)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for (name, r) in roots {
            let style = if r.is_complement() {
                " style=dotted"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(out, "  \"{name}\" -> n{}[{}];", r.id(), style);
            stack.push(r.id());
        }
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            let n = self.nodes[id as usize];
            if n.var == TERMINAL_VAR {
                let _ = writeln!(out, "  n{id} [label=\"1\" shape=box];");
                continue;
            }
            let _ = writeln!(out, "  n{id} [label=\"x{}\"];", n.var);
            let hstyle = if n.high.is_complement() {
                ", style=dotted"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{id} -> n{} [label=\"1\"{}];", n.high.id(), hstyle);
            let lstyle = if n.low.is_complement() {
                " style=dotted"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{id} -> n{} [label=\"0\" style=dashed{}];",
                n.low.id(),
                lstyle
            );
            stack.push(n.high.id());
            stack.push(n.low.id());
        }
        out.push_str("}\n");
        out
    }

    /// Rebuilds the given roots under a new variable order and garbage
    /// collects everything else. `order` must be a permutation of all
    /// variables (top level first). Returns the remapped roots; all other
    /// handles become invalid.
    ///
    /// This is an apply-based reordering: sound by construction, but more
    /// expensive than in-place sifting. The verification methodology follows
    /// the paper in preferring good *static* orders, so reordering is only
    /// exercised by the ordering-ablation experiment.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the manager's variables.
    pub fn set_order(&mut self, order: &[BddVar], roots: &[Bdd]) -> Vec<Bdd> {
        assert_eq!(
            order.len(),
            self.num_vars(),
            "order must cover all variables"
        );
        let mut seen = vec![false; self.num_vars()];
        for v in order {
            assert!(
                !std::mem::replace(&mut seen[v.index()], true),
                "duplicate variable in order"
            );
        }
        // Copy old structure out, reset the arena, then rebuild bottom-up
        // under the new order (the memo walks only nodes reachable from the
        // roots, so stale free slots in the snapshot are never read).
        let allocated = self.nodes.len() - self.free.len();
        self.stats.peak_allocated = self.stats.peak_allocated.max(allocated);
        let old_nodes = std::mem::take(&mut self.nodes);
        for (level, v) in order.iter().enumerate() {
            self.var2level[v.index()] = level as u32;
            self.level2var[level] = v.0;
        }
        self.nodes.push(Node {
            var: TERMINAL_VAR,
            high: Bdd::TRUE,
            low: Bdd::TRUE,
        });
        self.free.clear();
        for t in &mut self.subtables {
            t.slots = Vec::new();
            t.len = 0;
        }
        self.clear_cache();

        let mut memo: FastMap<u32, Bdd> = FastMap::default();
        let mut new_roots = Vec::with_capacity(roots.len());
        for r in roots {
            let body = self.rebuild_rec(r.id(), &old_nodes, &mut memo);
            new_roots.push(if r.is_complement() { !body } else { body });
        }
        new_roots
    }

    fn rebuild_rec(&mut self, id: u32, old_nodes: &[Node], memo: &mut FastMap<u32, Bdd>) -> Bdd {
        if let Some(&r) = memo.get(&id) {
            return r;
        }
        let n = old_nodes[id as usize];
        let r = if n.var == TERMINAL_VAR {
            Bdd::TRUE
        } else {
            let h_body = self.rebuild_rec(n.high.id(), old_nodes, memo);
            let h = if n.high.is_complement() {
                !h_body
            } else {
                h_body
            };
            let l_body = self.rebuild_rec(n.low.id(), old_nodes, memo);
            let l = if n.low.is_complement() {
                !l_body
            } else {
                l_body
            };
            let v = self.var_bdd(BddVar(n.var));
            self.ite(v, h, l)
        };
        memo.insert(id, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (BddManager, Vec<Bdd>) {
        let mut mgr = BddManager::new();
        let vars = mgr.new_vars(n);
        let bdds = vars.iter().map(|&v| mgr.var_bdd(v)).collect();
        (mgr, bdds)
    }

    #[test]
    fn constants() {
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        assert_eq!(!Bdd::TRUE, Bdd::FALSE);
        assert!(Bdd::TRUE.is_const() && Bdd::FALSE.is_const());
    }

    #[test]
    fn basic_algebra() {
        let (mut m, v) = setup(3);
        let (a, b, c) = (v[0], v[1], v[2]);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, !a), Bdd::TRUE);
        assert_eq!(m.and(a, !a), Bdd::FALSE);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let lhs = {
            let bc = m.or(b, c);
            m.and(a, bc)
        };
        let rhs = {
            let ab = m.and(a, b);
            let ac = m.and(a, c);
            m.or(ab, ac)
        };
        assert_eq!(lhs, rhs); // distributivity, canonical
        let x1 = m.xor(a, b);
        let x2 = m.xor(b, a);
        assert_eq!(x1, x2);
        let xn = m.xnor(a, b);
        assert_eq!(xn, !x1);
    }

    #[test]
    fn de_morgan() {
        let (mut m, v) = setup(2);
        let and = m.and(v[0], v[1]);
        let or_neg = m.or(!v[0], !v[1]);
        assert_eq!(!and, or_neg);
    }

    #[test]
    fn eval_and_pick_sat() {
        let (mut m, v) = setup(3);
        let ab = m.and(v[0], v[1]);
        let f = m.or(ab, v[2]);
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(f, &[true, false, false]));
        assert!(m.eval(f, &[false, false, true]));
        let sat = m.pick_sat(f).expect("satisfiable");
        let mut assignment = [false; 3];
        for (var, val) in sat {
            assignment[var.index()] = val;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.pick_sat(Bdd::FALSE).is_none());
    }

    #[test]
    fn sat_count() {
        let (mut m, v) = setup(3);
        let f = m.and(v[0], v[1]);
        assert_eq!(m.sat_count(f), 2.0); // v2 free
        assert_eq!(m.sat_count(Bdd::TRUE), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE), 0.0);
        let x = m.xor(v[0], v[2]);
        assert_eq!(m.sat_count(x), 4.0);
    }

    #[test]
    fn quantification() {
        let (mut m, v) = setup(3);
        let vars = [BddVar::from_index(1)];
        let f = m.and(v[0], v[1]);
        let ex = m.exists(f, &vars);
        assert_eq!(ex, v[0]);
        let fa = m.forall(f, &vars);
        assert_eq!(fa, Bdd::FALSE);
        let g = m.or(v[0], v[1]);
        let fa2 = m.forall(g, &vars);
        assert_eq!(fa2, v[0]);
        // and_exists equals exists of and.
        let h = m.or(v[1], v[2]);
        let ae = m.and_exists(f, h, &vars);
        let plain = {
            let fh = m.and(f, h);
            m.exists(fh, &vars)
        };
        assert_eq!(ae, plain);
    }

    #[test]
    fn support_set() {
        let (mut m, v) = setup(4);
        let f = {
            let ab = m.and(v[0], v[2]);
            m.or(ab, v[3])
        };
        let s = m.support(f);
        let idx: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(idx, vec![0, 2, 3]);
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.xor(v[0], v[1]);
            m.or(t, v[2])
        };
        let c = m.and(v[1], v[3]);
        let fc = m.constrain(f, c);
        // For every assignment in c, f and fc agree.
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            if m.eval(c, &a) {
                assert_eq!(m.eval(f, &a), m.eval(fc, &a));
            }
        }
        // constrain(f, c) AND c == f AND c
        let lhs = m.and(fc, c);
        let rhs = m.and(f, c);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn constrain_distributes_over_gates() {
        // g(a, b)|c == g(a|c, b|c) — the key soundness property for
        // constraint-based case splitting during symbolic simulation.
        let (mut m, v) = setup(4);
        let a = m.xor(v[0], v[1]);
        let b = m.or(v[1], v[2]);
        let c = {
            let t = m.xnor(v[0], v[3]);
            m.or(t, v[2])
        };
        let g = m.and(a, b);
        let lhs = m.constrain(g, c);
        let ac = m.constrain(a, c);
        let bc = m.constrain(b, c);
        let rhs = m.and(ac, bc);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn restrict_agrees_on_care_set() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.and(v[0], v[1]);
            m.or(t, v[2])
        };
        let c = m.xnor(v[1], v[3]);
        let fr = m.restrict(f, c);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            if m.eval(c, &a) {
                assert_eq!(m.eval(f, &a), m.eval(fr, &a));
            }
        }
    }

    #[test]
    fn gc_preserves_roots() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.and(v[0], v[1]);
            m.or(t, v[2])
        };
        let g = m.xor(v[2], v[3]);
        // Create garbage.
        for i in 0..3 {
            let t = m.and(v[i], v[i + 1]);
            let _ = m.xor(t, v[0]);
        }
        let before = m.stats().allocated;
        let roots = m.gc(&[f, g]);
        let after = m.stats().allocated;
        assert!(after <= before);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let old_f = bits & 1 == 1 && bits >> 1 & 1 == 1 || bits >> 2 & 1 == 1;
            let old_g = (bits >> 2 & 1 == 1) != (bits >> 3 & 1 == 1);
            assert_eq!(m.eval(roots[0], &a), old_f);
            assert_eq!(m.eval(roots[1], &a), old_g);
        }
    }

    #[test]
    fn gc_keeps_ids_stable_and_validates() {
        let (mut m, v) = setup(6);
        let f = {
            let t = m.and(v[0], v[1]);
            let u = m.xor(v[2], v[3]);
            m.or(t, u)
        };
        // Garbage over the other variables.
        for i in 0..5 {
            let t = m.or(v[i], v[i + 1]);
            let _ = m.xnor(t, v[0]);
        }
        let roots = m.gc(&[f]);
        // In-place GC: ids are stable, roots come back unchanged.
        assert_eq!(roots, vec![f]);
        m.validate().expect("kernel invariants after gc");
        let freed = m.stats().gc_freed;
        assert!(freed > 0, "garbage should have been freed");
    }

    #[test]
    fn gc_preserves_live_cache_entries() {
        // The acceptance bar for the overhaul: after a GC, re-running an ITE
        // whose operands and result survived must hit the computed cache
        // immediately, not recompute.
        let (mut m, v) = setup(4);
        let a = m.xor(v[0], v[1]);
        let b = m.or(v[2], v[3]);
        let f = m.and(a, b);
        // Garbage that will die at the GC.
        for i in 0..3 {
            let t = m.and(v[i], v[i + 1]);
            let _ = m.xor(t, v[3]);
        }
        let _ = m.gc(&[a, b, f]);
        let before = m.stats();
        let f2 = m.and(a, b);
        let after = m.stats();
        assert_eq!(f2, f);
        assert_eq!(after.cache_hits, before.cache_hits + 1, "post-GC cache hit");
        assert_eq!(after.cache_misses, before.cache_misses, "no recompute");
        assert!(before.cache_occupancy > 0, "cache survived the GC");
    }

    #[test]
    fn free_slots_are_reused() {
        let (mut m, v) = setup(4);
        let keep = m.and(v[0], v[1]);
        let _garbage = {
            let t = m.xor(v[2], v[3]);
            m.or(t, v[0])
        };
        let _ = m.gc(&[keep]);
        let arena_after_gc = m.stats().allocated + m_free_len(&m);
        let freed = m.stats().gc_freed;
        assert!(freed > 0);
        // New nodes land in freed slots before the arena grows. (The old
        // handles died with the GC; rebuild from the variables.)
        let c = m.var_bdd(BddVar::from_index(2));
        let d = m.var_bdd(BddVar::from_index(3));
        let _new = m.xnor(c, d);
        let arena_now = m.stats().allocated + m_free_len(&m);
        assert_eq!(arena_now, arena_after_gc, "arena did not grow");
        m.validate().expect("kernel invariants after reuse");
    }

    fn m_free_len(m: &BddManager) -> usize {
        m.free.len()
    }

    #[test]
    fn commuted_operands_share_cache_slots() {
        let (mut m, v) = setup(4);
        let f = m.xor(v[0], v[1]);
        let g = m.or(v[2], v[3]);
        let fg = m.and(f, g);
        let h0 = m.stats().cache_hits;
        let gf = m.and(g, f); // commuted: canonicalizes to the same probe
        assert_eq!(fg, gf);
        assert!(m.stats().cache_hits > h0, "commuted AND should cache-hit");
        let fg_or = m.or(f, g);
        let h1 = m.stats().cache_hits;
        let gf_or = m.or(g, f);
        assert_eq!(fg_or, gf_or);
        assert!(m.stats().cache_hits > h1, "commuted OR should cache-hit");
        let fx = m.xnor(f, g);
        let h2 = m.stats().cache_hits;
        let gx = m.xnor(g, f);
        assert_eq!(fx, gx);
        assert!(m.stats().cache_hits > h2, "commuted XNOR should cache-hit");
    }

    #[test]
    fn tiny_cache_evicts_but_stays_correct() {
        let mut m = BddManager::with_cache_size(1); // rounds up to MIN_CACHE_SIZE
        assert_eq!(m.cache_capacity(), MIN_CACHE_SIZE);
        let vars = m.new_vars(12);
        let v: Vec<Bdd> = vars.iter().map(|&x| m.var_bdd(x)).collect();
        let mut acc = Bdd::FALSE;
        for i in 0..10 {
            let t = m.and(v[i], v[i + 1]);
            let u = m.xor(t, v[(i + 2) % 12]);
            acc = m.or(acc, u);
        }
        let s = m.stats();
        assert!(s.cache_evictions > 0, "a 1K cache must evict under churn");
        assert!(s.cache_occupancy <= MIN_CACHE_SIZE);
        m.validate().expect("kernel invariants with tiny cache");
        // Same function in a roomy manager: results agree pointwise.
        let mut big = BddManager::new();
        let bvars = big.new_vars(12);
        let bv: Vec<Bdd> = bvars.iter().map(|&x| big.var_bdd(x)).collect();
        let mut bacc = Bdd::FALSE;
        for i in 0..10 {
            let t = big.and(bv[i], bv[i + 1]);
            let u = big.xor(t, bv[(i + 2) % 12]);
            bacc = big.or(bacc, u);
        }
        for bits in 0..4096u32 {
            let a: Vec<bool> = (0..12).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(acc, &a), big.eval(bacc, &a));
        }
    }

    #[test]
    fn unique_probes_and_occupancy_reported() {
        let (mut m, v) = setup(6);
        let mut acc = Bdd::TRUE;
        for w in &v {
            acc = m.and(acc, *w);
        }
        let s = m.stats();
        assert!(s.unique_probes >= s.nodes_created, "≥ one probe per node");
        assert!(s.cache_occupancy > 0);
        m.validate().expect("kernel invariants");
    }

    #[test]
    fn fast_hasher_chunks_match_length_tagging() {
        fn hash_bytes(b: &[u8]) -> u64 {
            let mut h = FastHasher::default();
            h.write(b);
            h.finish()
        }
        // 8-byte chunking: a 16-byte slice equals two word writes.
        let mut manual = FastHasher::default();
        manual.write_u64(u64::from_le_bytes(*b"abcdefgh"));
        manual.write_u64(u64::from_le_bytes(*b"ijklmnop"));
        assert_eq!(hash_bytes(b"abcdefghijklmnop"), manual.finish());
        // Trailing zeros are distinguished from absent bytes.
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn dot_rendering() {
        let (mut m, v) = setup(2);
        let f = m.and(v[0], v[1]);
        let dot = m.to_dot(&[("and", f), ("nand", !f)]);
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dotted"), "complement edges are marked");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn reorder_preserves_function() {
        let (mut m, v) = setup(4);
        let f = {
            let t = m.xor(v[0], v[2]);
            let u = m.and(v[1], v[3]);
            m.or(t, u)
        };
        let new_order: Vec<BddVar> = [3usize, 1, 2, 0]
            .iter()
            .map(|&i| BddVar::from_index(i))
            .collect();
        let roots = m.set_order(&new_order, &[f]);
        assert_eq!(m.level_of(BddVar::from_index(3)), 0);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let expect = ((bits & 1 == 1) != (bits >> 2 & 1 == 1))
                || (bits >> 1 & 1 == 1 && bits >> 3 & 1 == 1);
            assert_eq!(m.eval(roots[0], &a), expect);
        }
        m.validate().expect("kernel invariants after reorder");
    }

    #[test]
    fn interleaved_order_keeps_equality_small() {
        // The classic motivation for the paper's static orders: comparing two
        // n-bit vectors is linear with interleaved variables, exponential with
        // blocked variables.
        let n = 8;
        let mut m = BddManager::new();
        let vars = m.new_vars(2 * n);
        // Interleaved: a0 b0 a1 b1 ...
        let mut eq = Bdd::TRUE;
        for i in 0..n {
            let a = m.var_bdd(vars[2 * i]);
            let b = m.var_bdd(vars[2 * i + 1]);
            let bit_eq = m.xnor(a, b);
            eq = m.and(eq, bit_eq);
        }
        let interleaved = m.reachable_count(&[eq]);

        let mut m2 = BddManager::new();
        let vars2 = m2.new_vars(2 * n);
        // Blocked: a0..a7 b0..b7
        let mut eq2 = Bdd::TRUE;
        for i in 0..n {
            let a = m2.var_bdd(vars2[i]);
            let b = m2.var_bdd(vars2[n + i]);
            let bit_eq = m2.xnor(a, b);
            eq2 = m2.and(eq2, bit_eq);
        }
        let blocked = m2.reachable_count(&[eq2]);
        assert!(
            interleaved * 4 < blocked,
            "interleaved {interleaved} should be much smaller than blocked {blocked}"
        );
    }
}
