//! A reduced ordered binary decision diagram (ROBDD) package with complement
//! edges, built for the FMA FPU verification methodology of Jacobi et al.
//! (DATE 2005).
//!
//! Beyond the standard `ite`/quantification operations, the package provides
//! the two care-set minimization operators the paper evaluates —
//! [`BddManager::constrain`] (Coudert–Madre generalized cofactor, the
//! paper's overall winner) and [`BddManager::restrict`] — plus node
//! accounting ([`BddStats`]) used to regenerate Table 1, and apply-based
//! reordering ([`sift`], [`BddManager::set_order`]) used by the
//! variable-ordering ablation.
//!
//! # Examples
//!
//! ```
//! use fmaverify_bdd::{Bdd, BddManager};
//!
//! let mut mgr = BddManager::new();
//! let x = mgr.new_var();
//! let y = mgr.new_var();
//! let fx = mgr.var_bdd(x);
//! let fy = mgr.var_bdd(y);
//!
//! // (x AND y) restricted to the care set "x == y" simplifies to x.
//! let f = mgr.and(fx, fy);
//! let care = mgr.xnor(fx, fy);
//! let g = mgr.constrain(f, care);
//! assert_eq!(g, fx);
//! ```

#![warn(missing_docs)]

mod manager;
mod reorder;

pub use manager::{
    Bdd, BddManager, BddStats, BddVar, FastHasher, DEFAULT_CACHE_SIZE, MIN_CACHE_SIZE,
};
pub use reorder::{sift, ReorderResult};
