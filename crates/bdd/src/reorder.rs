//! Variable-reordering heuristics.
//!
//! The paper's methodology relies on *static* orders derived from the operand
//! structure and disables dynamic reordering ("it unnecessarily consumes
//! run-time without yielding a superior order"). To reproduce that comparison
//! (experiment S5d), this module provides a greedy sifting-style driver built
//! on [`BddManager::set_order`], which rebuilds the roots under candidate
//! orders and keeps improvements.

use crate::manager::{Bdd, BddManager, BddVar};

/// Outcome of a reordering pass.
#[derive(Clone, Debug)]
pub struct ReorderResult {
    /// The remapped roots (all other handles are invalidated).
    pub roots: Vec<Bdd>,
    /// Reachable node count before the pass.
    pub nodes_before: usize,
    /// Reachable node count after the pass.
    pub nodes_after: usize,
    /// Number of candidate orders actually evaluated (rebuilt and counted).
    /// Candidates whose trial order equals the current order are skipped and
    /// not counted, and neither is the final settling rebuild — this counts
    /// evaluations, not `set_order` calls.
    pub orders_tried: usize,
}

/// Greedy sifting: variables are processed in decreasing order of the number
/// of nodes labelled with them; each is tried at a set of candidate levels
/// (top, bottom, and halving positions) and left at the best one.
///
/// This is an apply-based (rebuilding) variant of Rudell sifting: it explores
/// fewer positions per variable than classical in-place sifting but is sound
/// by construction. `max_vars` bounds how many variables are sifted (pass
/// `usize::MAX` for all).
pub fn sift(mgr: &mut BddManager, roots: &[Bdd], max_vars: usize) -> ReorderResult {
    let nodes_before = mgr.reachable_count(roots);
    let mut roots: Vec<Bdd> = roots.to_vec();
    let mut best_count = nodes_before;
    let mut orders_tried = 0usize;

    // Rank variables by how many reachable nodes are labelled with them.
    let occupancy = var_occupancy(mgr, &roots);
    let mut ranked: Vec<BddVar> = (0..mgr.num_vars()).map(BddVar::from_index).collect();
    ranked.sort_by_key(|v| std::cmp::Reverse(occupancy[v.index()]));
    ranked.truncate(max_vars);

    let n = mgr.num_vars();
    // Scratch buffers reused across every candidate evaluation, so trying an
    // order costs no allocation beyond the rebuild itself.
    let mut candidates: Vec<usize> = Vec::with_capacity(7);
    let mut trial_order: Vec<BddVar> = Vec::with_capacity(n);
    for v in ranked {
        let current_level = mgr.level_of(v);
        candidates.clear();
        candidates.extend_from_slice(&[0, n / 4, n / 2, 3 * n / 4, n.saturating_sub(1)]);
        candidates.push(current_level.saturating_sub(2));
        candidates.push((current_level + 2).min(n - 1));
        candidates.sort_unstable();
        candidates.dedup();
        let mut best_level = current_level;
        for &cand in &candidates {
            order_with_var_at(mgr, v, cand, &mut trial_order);
            // Skip any candidate whose trial order is the order we already
            // hold (not just the literal `cand == level_of(v)` case): the
            // rebuild would be a no-op evaluation.
            if order_is_current(mgr, &trial_order) {
                continue;
            }
            let trial_roots = mgr.set_order(&trial_order, &roots);
            orders_tried += 1;
            let count = mgr.reachable_count(&trial_roots);
            roots = trial_roots;
            if count < best_count {
                best_count = count;
                best_level = cand;
            }
        }
        // Settle the variable at its best level (a re-application of an
        // already-evaluated order, so it does not count as a new trial).
        if mgr.level_of(v) != best_level {
            order_with_var_at(mgr, v, best_level, &mut trial_order);
            if !order_is_current(mgr, &trial_order) {
                roots = mgr.set_order(&trial_order, &roots);
            }
        }
    }
    let nodes_after = mgr.reachable_count(&roots);
    ReorderResult {
        roots,
        nodes_before,
        nodes_after,
        orders_tried,
    }
}

/// Cheap occupancy proxy: how many roots each variable appears in.
fn var_occupancy(mgr: &BddManager, roots: &[Bdd]) -> Vec<usize> {
    let mut counts = vec![0usize; mgr.num_vars()];
    for r in roots {
        for v in mgr.support(*r) {
            counts[v.index()] += 1;
        }
    }
    counts
}

/// Builds the current order with `v` moved to `target_level`, into the
/// caller's scratch buffer.
fn order_with_var_at(mgr: &BddManager, v: BddVar, target_level: usize, out: &mut Vec<BddVar>) {
    out.clear();
    out.extend(
        (0..mgr.num_vars())
            .map(|l| mgr.var_at_level(l))
            .filter(|&x| x != v),
    );
    let pos = target_level.min(out.len());
    out.insert(pos, v);
}

/// Returns `true` when `order` equals the manager's current order (without
/// allocating).
fn order_is_current(mgr: &BddManager, order: &[BddVar]) -> bool {
    order.iter().enumerate().all(|(l, v)| mgr.level_of(*v) == l)
}

impl BddManager {
    /// Union of the supports of all `roots`.
    pub fn support_of_all(&self, roots: &[Bdd]) -> Vec<BddVar> {
        let mut seen = vec![false; self.num_vars()];
        for r in roots {
            for v in self.support(*r) {
                seen[v.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| BddVar::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_improves_blocked_equality() {
        // Equality with blocked order is exponential; sifting should shrink it
        // substantially while preserving the function.
        let n = 6;
        let mut m = BddManager::new();
        let vars = m.new_vars(2 * n);
        let mut eq = Bdd::TRUE;
        for i in 0..n {
            let a = m.var_bdd(vars[i]);
            let b = m.var_bdd(vars[n + i]);
            let bit_eq = m.xnor(a, b);
            eq = m.and(eq, bit_eq);
        }
        let result = sift(&mut m, &[eq], usize::MAX);
        assert!(result.nodes_after <= result.nodes_before);
        // The function is preserved.
        let root = result.roots[0];
        for bits in 0..(1u32 << (2 * n)) {
            let a: Vec<bool> = (0..2 * n).map(|i| bits >> i & 1 == 1).collect();
            let expect = (0..n).all(|i| a[i] == a[n + i]);
            assert_eq!(m.eval(root, &a), expect);
        }
    }

    #[test]
    fn sift_noop_on_constant() {
        let mut m = BddManager::new();
        m.new_vars(4);
        let result = sift(&mut m, &[Bdd::TRUE], usize::MAX);
        assert_eq!(result.roots[0], Bdd::TRUE);
    }
}
