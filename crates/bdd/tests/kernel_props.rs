//! Kernel-level property tests for the arena/subtable/computed-cache BDD
//! manager: results must be independent of the (lossy) computed-cache size,
//! garbage collection must preserve the semantics of arbitrary root subsets
//! while keeping every structural invariant, and unique-table growth across
//! mixed build/collect workloads must never break canonicity.
//!
//! These complement `semantics.rs` (which checks the operation algebra):
//! here the random workloads are chosen to force the kernel through its
//! resize, eviction, free-list-reuse and mark-and-sweep paths.

use fmaverify_bdd::{Bdd, BddManager, MIN_CACHE_SIZE};
use proptest::prelude::*;

const NUM_VARS: usize = 6;

/// One random two-input gate of a tiny netlist: an op applied to two earlier
/// signals (inputs or prior gate outputs), each possibly inverted.
#[derive(Clone, Copy, Debug)]
struct Gate {
    op: u8,
    a: usize,
    inv_a: bool,
    b: usize,
    inv_b: bool,
}

/// A random netlist: gates only reference earlier signals, like a
/// topologically ordered AIG. Signal `i < NUM_VARS` is input `i`; signal
/// `NUM_VARS + k` is gate `k`'s output.
fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Vec<Gate>> {
    prop::collection::vec(
        (0u8..4, 0usize..64, any::<bool>(), 0usize..64, any::<bool>()),
        1..max_gates,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(k, (op, a, inv_a, b, inv_b))| Gate {
                op,
                a: a % (NUM_VARS + k),
                inv_a,
                b: b % (NUM_VARS + k),
                inv_b,
            })
            .collect()
    })
}

/// Evaluates the netlist under one input assignment, returning every signal.
fn sim_netlist(gates: &[Gate], inputs: &[bool]) -> Vec<bool> {
    let mut vals: Vec<bool> = inputs.to_vec();
    for g in gates {
        let a = vals[g.a] ^ g.inv_a;
        let b = vals[g.b] ^ g.inv_b;
        vals.push(match g.op {
            0 => a && b,
            1 => a || b,
            2 => a != b,
            _ => a == b,
        });
    }
    vals
}

/// Builds the netlist symbolically, returning every signal's BDD.
fn build_netlist(mgr: &mut BddManager, gates: &[Gate]) -> Vec<Bdd> {
    let vars = (0..mgr.num_vars())
        .map(|i| mgr.var_bdd(fmaverify_bdd::BddVar::from_index(i)))
        .collect::<Vec<_>>();
    let mut sigs: Vec<Bdd> = vars;
    for g in gates {
        let a = if g.inv_a { !sigs[g.a] } else { sigs[g.a] };
        let b = if g.inv_b { !sigs[g.b] } else { sigs[g.b] };
        let v = match g.op {
            0 => mgr.and(a, b),
            1 => mgr.or(a, b),
            2 => mgr.xor(a, b),
            _ => mgr.xnor(a, b),
        };
        sigs.push(v);
    }
    sigs
}

fn assignment(bits: u32) -> Vec<bool> {
    (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The computed cache is lossy: a minimum-size cache (maximum conflict
    /// eviction and no headroom to grow) must produce bit-identical handles
    /// and truth tables to the default cache.
    #[test]
    fn results_independent_of_cache_size(gates in arb_netlist(40)) {
        let mut small = BddManager::with_cache_size(MIN_CACHE_SIZE);
        small.new_vars(NUM_VARS);
        let mut big = BddManager::new();
        big.new_vars(NUM_VARS);
        let sigs_small = build_netlist(&mut small, &gates);
        let sigs_big = build_netlist(&mut big, &gates);
        // Same creation order + canonicity => identical handles, even though
        // the small manager recomputes where the big one hits its cache.
        prop_assert_eq!(&sigs_small, &sigs_big);
        for bits in 0..1u32 << NUM_VARS {
            let a = assignment(bits);
            let sim = sim_netlist(&gates, &a);
            for (sig, expect) in sigs_small.iter().zip(&sim) {
                prop_assert_eq!(small.eval(*sig, &a), *expect);
            }
        }
        small.validate().expect("invariants with minimum cache");
    }

    /// Collecting an arbitrary subset of the netlist's signals as roots
    /// preserves the function of every survivor, keeps all kernel
    /// invariants, and leaves the manager fully usable (free slots are
    /// reused and new nodes still canonical).
    #[test]
    fn gc_preserves_random_root_sets(gates in arb_netlist(40), keep_mask in any::<u64>()) {
        let mut mgr = BddManager::new();
        mgr.new_vars(NUM_VARS);
        let sigs = build_netlist(&mut mgr, &gates);
        // Tables of the kept subset, before collection.
        let kept: Vec<(usize, Bdd)> = sigs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, _)| keep_mask >> (i % 64) & 1 == 1)
            .collect();
        let roots: Vec<Bdd> = kept.iter().map(|&(_, f)| f).collect();
        let remapped = mgr.gc(&roots);
        prop_assert_eq!(remapped.len(), roots.len());
        mgr.validate().expect("kernel invariants");
        for bits in 0..1u32 << NUM_VARS {
            let a = assignment(bits);
            let sim = sim_netlist(&gates, &a);
            for (&(i, _), &f) in kept.iter().zip(&remapped) {
                prop_assert_eq!(mgr.eval(f, &a), sim[i], "signal {} after gc", i);
            }
        }
        // The manager stays canonical after the collection: rebuilding the
        // whole netlist must reproduce functions identical to the survivors.
        let rebuilt = build_netlist(&mut mgr, &gates);
        for (&(i, _), &f) in kept.iter().zip(&remapped) {
            prop_assert_eq!(rebuilt[i], f, "rebuild of signal {} diverges", i);
        }
        mgr.validate().expect("kernel invariants");
    }

    /// Unique-table growth invariants: interleaving builds with collections
    /// (which shrink and rebuild the subtables) must keep the node count
    /// consistent, canonicity intact, and every structural invariant green
    /// at each step.
    #[test]
    fn unique_table_survives_grow_collect_cycles(
        gates in arb_netlist(30),
        rounds in 1usize..4,
    ) {
        let mut mgr = BddManager::new();
        mgr.new_vars(NUM_VARS);
        let mut last: Vec<Bdd> = Vec::new();
        for _ in 0..rounds {
            // Build (growing subtables), then collect everything but the
            // final signal (shrinking them and freeing slots for reuse).
            let sigs = build_netlist(&mut mgr, &gates);
            mgr.validate().expect("kernel invariants");
            let roots = [*sigs.last().expect("at least one input")];
            last = mgr.gc(&roots);
            mgr.validate().expect("kernel invariants");
            // Everything reachable is exactly what the manager reports live.
            let reach = mgr.reachable_count(&last);
            prop_assert!(
                reach <= mgr.stats().allocated,
                "reachable {} > allocated {}",
                reach,
                mgr.stats().allocated
            );
        }
        for bits in 0..1u32 << NUM_VARS {
            let a = assignment(bits);
            let sim = sim_netlist(&gates, &a);
            prop_assert_eq!(mgr.eval(last[0], &a), *sim.last().expect("signal"));
        }
    }
}
