//! Property tests: BDD operations must agree with a direct truth-table
//! evaluator on random boolean expressions, and canonicity must hold
//! (semantically equal expressions produce identical handles).

use fmaverify_bdd::{sift, Bdd, BddManager, BddVar};
use proptest::prelude::*;

const NUM_VARS: usize = 5;

/// A small random boolean expression tree.
#[derive(Clone, Debug)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NUM_VARS).prop_map(Expr::Var),
        prop::bool::ANY.prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn eval_expr(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Var(i) => a[*i],
        Expr::Not(x) => !eval_expr(x, a),
        Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
        Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
        Expr::Xor(x, y) => eval_expr(x, a) != eval_expr(y, a),
        Expr::Ite(c, t, f) => {
            if eval_expr(c, a) {
                eval_expr(t, a)
            } else {
                eval_expr(f, a)
            }
        }
        Expr::Const(b) => *b,
    }
}

fn build_bdd(mgr: &mut BddManager, vars: &[Bdd], e: &Expr) -> Bdd {
    match e {
        Expr::Var(i) => vars[*i],
        Expr::Not(x) => !build_bdd(mgr, vars, x),
        Expr::And(x, y) => {
            let a = build_bdd(mgr, vars, x);
            let b = build_bdd(mgr, vars, y);
            mgr.and(a, b)
        }
        Expr::Or(x, y) => {
            let a = build_bdd(mgr, vars, x);
            let b = build_bdd(mgr, vars, y);
            mgr.or(a, b)
        }
        Expr::Xor(x, y) => {
            let a = build_bdd(mgr, vars, x);
            let b = build_bdd(mgr, vars, y);
            mgr.xor(a, b)
        }
        Expr::Ite(c, t, f) => {
            let a = build_bdd(mgr, vars, c);
            let b = build_bdd(mgr, vars, t);
            let d = build_bdd(mgr, vars, f);
            mgr.ite(a, b, d)
        }
        Expr::Const(true) => Bdd::TRUE,
        Expr::Const(false) => Bdd::FALSE,
    }
}

fn truth_table(e: &Expr) -> Vec<bool> {
    (0..1u32 << NUM_VARS)
        .map(|bits| {
            let a: Vec<bool> = (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect();
            eval_expr(e, &a)
        })
        .collect()
}

fn setup() -> (BddManager, Vec<Bdd>) {
    let mut mgr = BddManager::new();
    let vars = mgr.new_vars(NUM_VARS);
    let bdds = vars.iter().map(|&v| mgr.var_bdd(v)).collect();
    (mgr, bdds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let (mut mgr, vars) = setup();
        let f = build_bdd(&mut mgr, &vars, &e);
        for bits in 0..1u32 << NUM_VARS {
            let a: Vec<bool> = (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(f, &a), eval_expr(&e, &a));
        }
    }

    #[test]
    fn canonicity(e1 in arb_expr(), e2 in arb_expr()) {
        let (mut mgr, vars) = setup();
        let f1 = build_bdd(&mut mgr, &vars, &e1);
        let f2 = build_bdd(&mut mgr, &vars, &e2);
        let semantically_equal = truth_table(&e1) == truth_table(&e2);
        prop_assert_eq!(f1 == f2, semantically_equal);
    }

    #[test]
    fn sat_count_matches_truth_table(e in arb_expr()) {
        let (mut mgr, vars) = setup();
        let f = build_bdd(&mut mgr, &vars, &e);
        let expect = truth_table(&e).iter().filter(|&&b| b).count() as f64;
        prop_assert_eq!(mgr.sat_count(f), expect);
    }

    #[test]
    fn constrain_and_restrict_agree_on_care_set(f_e in arb_expr(), c_e in arb_expr()) {
        let (mut mgr, vars) = setup();
        let f = build_bdd(&mut mgr, &vars, &f_e);
        let c = build_bdd(&mut mgr, &vars, &c_e);
        prop_assume!(!c.is_false());
        let fc = mgr.constrain(f, c);
        let fr = mgr.restrict(f, c);
        for bits in 0..1u32 << NUM_VARS {
            let a: Vec<bool> = (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect();
            if mgr.eval(c, &a) {
                prop_assert_eq!(mgr.eval(fc, &a), mgr.eval(f, &a), "constrain differs on care set");
                prop_assert_eq!(mgr.eval(fr, &a), mgr.eval(f, &a), "restrict differs on care set");
            }
        }
    }

    #[test]
    fn constrain_distributes(a_e in arb_expr(), b_e in arb_expr(), c_e in arb_expr()) {
        // constrain(g(a,b), c) == g(constrain(a,c), constrain(b,c)) for any
        // gate g — here AND and XOR. This is the soundness basis of applying
        // constrain gate-by-gate during symbolic simulation.
        let (mut mgr, vars) = setup();
        let a = build_bdd(&mut mgr, &vars, &a_e);
        let b = build_bdd(&mut mgr, &vars, &b_e);
        let c = build_bdd(&mut mgr, &vars, &c_e);
        prop_assume!(!c.is_false());
        let ac = mgr.constrain(a, c);
        let bc = mgr.constrain(b, c);
        let and_then = { let g = mgr.and(a, b); mgr.constrain(g, c) };
        let then_and = mgr.and(ac, bc);
        prop_assert_eq!(and_then, then_and);
        let xor_then = { let g = mgr.xor(a, b); mgr.constrain(g, c) };
        let then_xor = mgr.xor(ac, bc);
        prop_assert_eq!(xor_then, then_xor);
        // Negation commutes with constrain.
        let not_then = mgr.constrain(!a, c);
        prop_assert_eq!(not_then, !ac);
    }

    #[test]
    fn quantification_matches_truth_table(e in arb_expr(), var_idx in 0..NUM_VARS) {
        let (mut mgr, vars) = setup();
        let f = build_bdd(&mut mgr, &vars, &e);
        let qvars = [BddVar::from_index(var_idx)];
        let ex = mgr.exists(f, &qvars);
        let fa = mgr.forall(f, &qvars);
        for bits in 0..1u32 << NUM_VARS {
            let mut a: Vec<bool> = (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect();
            let v0 = { a[var_idx] = false; eval_expr(&e, &a) };
            let v1 = { a[var_idx] = true; eval_expr(&e, &a) };
            prop_assert_eq!(mgr.eval(ex, &a), v0 || v1);
            prop_assert_eq!(mgr.eval(fa, &a), v0 && v1);
        }
    }

    #[test]
    fn gc_and_reorder_preserve_semantics(e in arb_expr(), perm_seed in 0u64..1000) {
        let (mut mgr, vars) = setup();
        let f = build_bdd(&mut mgr, &vars, &e);
        let tt = truth_table(&e);
        let roots = mgr.gc(&[f]);
        let f = roots[0];
        // Pseudo-random permutation from the seed.
        let mut order: Vec<BddVar> = (0..NUM_VARS).map(BddVar::from_index).collect();
        let mut s = perm_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let roots = mgr.set_order(&order, &[f]);
        let f = roots[0];
        for (bits, &expect) in tt.iter().enumerate() {
            let a: Vec<bool> = (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(f, &a), expect);
        }
        // Sifting afterwards must also preserve the function.
        let result = sift(&mut mgr, &[f], 3);
        let f = result.roots[0];
        for (bits, &expect) in tt.iter().enumerate() {
            let a: Vec<bool> = (0..NUM_VARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(f, &a), expect);
        }
    }
}
