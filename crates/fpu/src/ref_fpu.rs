//! The reference FPU.
//!
//! This is the paper's ~450-line VHDL specification model re-expressed with
//! word-level netlist operators: a case statement over the four δ regions
//! (far-out left, overlap left, overlap right, far-out right — Figure 2), a
//! 161-bit intermediate result, and the rounder of Figure 3 (leading-zero
//! count, partially-limited normalization producing denormal results, and
//! IEEE rounding with flags). Simplicity is the design goal; it deliberately
//! uses `+`, shifts and comparators rather than the implementation FPU's
//! Booth multiplier, 3:2 compression, and leading-zero anticipation.
//!
//! The model exposes the probe points the verification methodology
//! constrains: `ref.delta` (the exponent difference δ), `ref.sha` (the
//! normalization shift amount of Figure 3), and the case indicator signals.

use fmaverify_netlist::{Netlist, Signal, Word};

use crate::config::{DenormalMode, FpuConfig, FpuInputs, FpuOutputs};

/// Where the significand product comes from.
///
/// `Override` realizes the paper's multiplier isolation (Figure 1): the
/// multiplier is replaced by pseudo-inputs `S'`,`T'` and the reference FPU
/// consumes their (modular) sum as the product, making the real multiplier
/// sinkless in both models.
#[derive(Clone, Debug)]
pub enum ProductSource {
    /// Compute the exact significand product with a word-level multiplier.
    Exact,
    /// Use `(s + t) mod 2^window_bits` as the significand product.
    Override {
        /// The sum word `S'` (width `window_bits`).
        s: Word,
        /// The carry word `T'` (width `window_bits`).
        t: Word,
    },
}

/// Handles into the built reference FPU, used by the verification layer.
#[derive(Clone, Debug)]
pub struct RefFpu {
    /// Result and flag outputs.
    pub outputs: FpuOutputs,
    /// The exponent difference δ = e_p − e_c as a signed word
    /// (`exp_arith_bits` wide). Probe name `ref.delta`.
    pub delta: Word,
    /// The normalization shift amount (Figure 3). Probe name `ref.sha`.
    pub sha: Word,
    /// Case indicator: far-out left (δ ≤ −(f+3)).
    pub case_far_left: Signal,
    /// Case indicator: far-out right (δ ≥ 2f+2), including the zero-addend
    /// path.
    pub case_far_right: Signal,
    /// Case indicator: any overlap case.
    pub case_overlap: Signal,
    /// True when the special-case logic (NaN/Inf/zero) bypasses the datapath.
    pub special: Signal,
}

struct Decoded {
    sign: Signal,
    is_nan: Signal,
    is_snan: Signal,
    is_inf: Signal,
    /// Zero after denormal flushing, i.e. "acts as zero in the datapath".
    is_zero: Signal,
    /// Significand with implicit bit (f+1 bits).
    sig: Word,
    /// Effective biased exponent (denormals and zeros use 1).
    eff_exp: Word,
}

fn decode(n: &mut Netlist, cfg: &FpuConfig, raw: &Word) -> Decoded {
    let f = cfg.format.frac_bits() as usize;
    let eb = cfg.format.exp_bits() as usize;
    let frac = raw.slice(0, f);
    let exp = raw.slice(f, f + eb);
    let sign = raw.bit(f + eb);
    let exp_zero = n.is_zero(&exp);
    let exp_ones = n.eq_const(&exp, (1u128 << eb) - 1);
    let frac_zero = n.is_zero(&frac);
    let is_nan = n.and(exp_ones, !frac_zero);
    let is_snan = n.and(is_nan, !frac.bit(f - 1));
    let is_inf = n.and(exp_ones, frac_zero);
    let raw_zero = n.and(exp_zero, frac_zero);
    let is_denormal = n.and(exp_zero, !frac_zero);
    let is_zero = match cfg.denormals {
        DenormalMode::FlushToZero => n.or(raw_zero, is_denormal),
        DenormalMode::FullIeee => raw_zero,
    };
    // Implicit bit: 1 for normals, 0 for denormals/zero (and after flushing,
    // a flushed denormal has an all-zero significand).
    let implicit = n.and(!exp_zero, !exp_ones);
    let mut sig_bits = frac.bits().to_vec();
    match cfg.denormals {
        DenormalMode::FlushToZero => {
            // Keep fraction bits only for normals.
            for b in &mut sig_bits {
                *b = n.and(*b, implicit);
            }
        }
        DenormalMode::FullIeee => {}
    }
    sig_bits.push(implicit);
    let sig = Word::from_bits(sig_bits);
    // Effective biased exponent: denormals live at biased exponent 1.
    let one = n.word_const(eb, 1);
    let eff_exp = n.mux_word(exp_zero, &one, &exp);
    Decoded {
        sign,
        is_nan,
        is_snan,
        is_inf,
        is_zero,
        sig,
        eff_exp,
    }
}

/// Builds the reference FPU over the shared inputs.
///
/// All outputs are declared on `netlist` with the `ref.` prefix, and the
/// constraint-relevant internal signals are exposed both as probes and in
/// the returned [`RefFpu`].
pub fn build_ref_fpu(
    n: &mut Netlist,
    cfg: &FpuConfig,
    inputs: &FpuInputs,
    product: ProductSource,
) -> RefFpu {
    let f = cfg.format.frac_bits() as usize;
    let eb = cfg.format.exp_bits() as usize;
    let w_total = cfg.format.width() as usize;
    let bias = cfg.format.bias() as i64;
    let wexp = cfg.exp_arith_bits();
    let wwin = cfg.window_bits(); // 3f + 5
    let pb = cfg.prod_bits(); // 2f + 2

    // Opcode decode: 000 FMA, 001 FMS, 010 ADD, 011 MUL, 100 FNMA, 101 FNMS.
    let is_add = n.eq_const(&inputs.op, 2);
    let is_mul = n.eq_const(&inputs.op, 3);
    let is_fms = {
        let fms = n.eq_const(&inputs.op, 1);
        let fnms = n.eq_const(&inputs.op, 5);
        n.or(fms, fnms)
    };
    let neg_result = {
        let fnma = n.eq_const(&inputs.op, 4);
        let fnms = n.eq_const(&inputs.op, 5);
        n.or(fnma, fnms)
    };

    // Rounding mode decode: 00 RNE, 01 RTZ, 10 RTP, 11 RTN.
    let rm0 = inputs.rm.bit(0);
    let rm1 = inputs.rm.bit(1);
    let rm_rne = n.and(!rm1, !rm0);
    let rm_rtp = n.and(rm1, !rm0);
    let rm_rtn = n.and(rm1, rm0);

    // Operand substitution: ADD uses b := 1.0, MUL uses c := +0.
    let one_const = n.word_const(w_total, cfg.format.one(false));
    let zero_const = n.word_const(w_total, 0);
    let b_eff = n.mux_word(is_add, &one_const, &inputs.b);
    let c_eff = n.mux_word(is_mul, &zero_const, &inputs.c);

    let da = decode(n, cfg, &inputs.a);
    let db = decode(n, cfg, &b_eff);
    let dc = decode(n, cfg, &c_eff);

    // FMS negates the addend.
    let sc = n.xor(dc.sign, is_fms);
    let sp = n.xor(da.sign, db.sign);
    let eff_sub = n.xor(sp, sc);

    // ------------------------------------------------------------------
    // Special-case logic (the paper's "150 lines of trivial if-then").
    // ------------------------------------------------------------------
    let any_nan = {
        let t = n.or(da.is_nan, db.is_nan);
        n.or(t, dc.is_nan)
    };
    let any_snan = {
        let t = n.or(da.is_snan, db.is_snan);
        n.or(t, dc.is_snan)
    };
    let prod_inf = n.or(da.is_inf, db.is_inf);
    let prod_zero = n.or(da.is_zero, db.is_zero);
    let inf_times_zero = {
        let t1 = n.and(da.is_inf, db.is_zero);
        let t2 = n.and(db.is_inf, da.is_zero);
        n.or(t1, t2)
    };
    let inf_minus_inf = {
        let neq = n.xor(sc, sp);
        let both = n.and(prod_inf, dc.is_inf);
        n.and(both, neq)
    };
    let invalid = {
        let t = n.or(inf_times_zero, inf_minus_inf);
        let t = n.and(t, !any_nan);
        n.or(t, any_snan)
    };
    let out_nan = {
        let t = n.or(any_nan, inf_times_zero);
        n.or(t, inf_minus_inf)
    };
    let out_inf_prod = n.and(prod_inf, !out_nan);
    let out_inf_addend = {
        let t = n.and(dc.is_inf, !prod_inf);
        n.and(t, !out_nan)
    };
    // Zero product: result is the (possibly sign-flipped) addend, or a signed
    // zero when the addend is zero too.
    let zero_prod_path = {
        let t = n.and(prod_zero, !out_nan);
        let t = n.and(t, !out_inf_prod);
        n.and(t, !out_inf_addend)
    };
    let both_zero = n.and(zero_prod_path, dc.is_zero);
    // Sign of an exactly-zero sum of zeros: equal signs keep it; otherwise
    // +0, except −0 toward negative; MUL always takes the product sign.
    let zeros_sign = {
        let same = n.xnor(sp, sc);
        let differ_sign = n.mux(is_mul, sp, rm_rtn);
        n.mux(same, sp, differ_sign)
    };
    let special = {
        let t = n.or(out_nan, out_inf_prod);
        let t = n.or(t, out_inf_addend);
        n.or(t, zero_prod_path)
    };
    // Special-case result value.
    let qnan_const = n.word_const(w_total, cfg.format.quiet_nan());
    let special_result = {
        // Start from the addend with FMS sign applied (covers both the
        // inf-addend case and the zero-product nonzero-addend case).
        let mut c_signed = c_eff.bits().to_vec();
        c_signed[w_total - 1] = sc;
        let c_signed = Word::from_bits(c_signed);
        // Zero-of-zeros result.
        let mut zero_signed = vec![Signal::FALSE; w_total];
        zero_signed[w_total - 1] = zeros_sign;
        let zero_signed = Word::from_bits(zero_signed);
        let inf_p = {
            let mut bits = n.word_const(w_total, cfg.format.inf(false)).bits().to_vec();
            bits[w_total - 1] = sp;
            Word::from_bits(bits)
        };
        let r = n.mux_word(both_zero, &zero_signed, &c_signed);
        let r = n.mux_word(out_inf_prod, &inf_p, &r);
        n.mux_word(out_nan, &qnan_const, &r)
    };

    // ------------------------------------------------------------------
    // Datapath: exponent difference and case selection.
    // ------------------------------------------------------------------
    let ea = n.zext(&da.eff_exp, wexp);
    let ebx = n.zext(&db.eff_exp, wexp);
    let ec = n.zext(&dc.eff_exp, wexp);
    // delta = (ea + eb - bias) - ec, a small signed number.
    let ea_plus_eb = n.add(&ea, &ebx);
    let bias_w = n.word_const(wexp, bias as u128);
    let ep_biased = n.sub(&ea_plus_eb, &bias_w); // biased product exponent
    let delta = n.sub(&ep_biased, &ec);
    for (i, &bit) in delta.bits().iter().enumerate() {
        n.probe(format!("ref.delta[{i}]"), bit);
    }

    let dmin = cfg.delta_min_overlap(); // -(f+3)
    let dmax = cfg.delta_max_overlap(); // 2f+1
    let dmin_w = n.word_const(wexp, (dmin as i128 & ((1i128 << wexp) - 1)) as u128);
    let dmax_w = n.word_const(wexp, dmax as u128);
    let far_left_delta = n.slt(&delta, &dmin_w); // delta < -(f+3)
    let far_right_delta = n.slt(&dmax_w, &delta); // delta > 2f+1
                                                  // A zero addend must never take the far-left path (the product is the
                                                  // result there); route it far-right where the addend is just sticky.
    let addend_zero = dc.is_zero;
    let case_far_left = n.and(far_left_delta, !addend_zero);
    let case_far_right = n.or(far_right_delta, addend_zero);
    let case_overlap = n.and(!case_far_left, !case_far_right);

    // ------------------------------------------------------------------
    // Significand product.
    // ------------------------------------------------------------------
    let prod = match &product {
        ProductSource::Exact => {
            let p = n.mul(&da.sig, &db.sig);
            debug_assert_eq!(p.width(), pb);
            p
        }
        ProductSource::Override { s, t } => {
            assert_eq!(s.width(), wwin, "S' must be window_bits wide");
            assert_eq!(t.width(), wwin, "T' must be window_bits wide");
            // The care-set constraint guarantees the modular sum is the
            // product, which fits in prod_bits.
            let sum = n.add(s, t); // modulo 2^wwin
            sum.truncate(pb)
        }
    };
    let prod_nonzero = {
        let z = n.is_zero(&prod);
        !z
    };

    // ------------------------------------------------------------------
    // Intermediate-result window (161 bits at double precision).
    //
    // Window layout: bit 0 = guard, bits [1, 2f+2] = product, addend enters
    // with its LSB at bit 2f+4 (one above the carry slot of the product) and
    // is shifted right by r = δ + f + 3 (alignment shifter), with bits
    // shifted below an extra (f+2)-bit sticky zone OR-reduced into
    // sticky_align. Far-out right degenerates naturally (addend fully in the
    // sticky zone); far-out left is an explicit case.
    // ------------------------------------------------------------------
    let xzone = f + 2; // sticky zone below the window
    let wext = wwin + xzone;
    // r = delta + f + 3, clamped to [0, 3f+5] (negative cannot happen in the
    // overlap/far-right paths, but clamp anyway for safety).
    let fp2 = n.word_const(wexp, (f + 3) as u128);
    let r_raw = n.add(&delta, &fp2);
    let r_neg = r_raw.msb();
    // Clamp at 3f+5: the addend is then fully inside the sticky zone; larger
    // shifts would push bits past the zone and lose them.
    let rmax = n.word_const(wexp, (3 * f + 5) as u128);
    let r_big = {
        // treat as unsigned compare only when non-negative
        let gt = n.ult(&rmax, &r_raw);
        n.and(gt, !r_neg)
    };
    let zero_r = n.word_const(wexp, 0);
    let r_clamped = {
        let t = n.mux_word(r_big, &rmax, &r_raw);
        n.mux_word(r_neg, &zero_r, &t)
    };
    // Number of bits needed for the shift amount.
    let shift_bits = usize::BITS as usize - (wext + 1).leading_zeros() as usize;
    let r_small = r_clamped.truncate(shift_bits.min(wexp));

    // Addend placed at the top of the extended window, then shifted right.
    let addend_at_top = {
        let zeros = n.word_const(xzone + (2 * f + 4), 0);
        // sig occupies [xzone+2f+4 .. xzone+3f+5) == the top f+1 bits.
        zeros.concat(&dc.sig)
    };
    let addend_shifted = n.lshr_var(&addend_at_top, &r_small);
    let sticky_align = {
        let below = addend_shifted.slice(0, xzone);
        n.or_reduce(&below)
    };
    let ac_win = addend_shifted.slice(xzone, wext); // wwin bits

    // Product placed at window bits [1, 2f+2].
    let prod_win = {
        let g = n.word_const(1, 0);
        let p = g.concat(&prod);
        n.zext(&p, wwin)
    };

    // Overlap/far-right adder: prod_win ± ac_win over wwin+1 bits (two's
    // complement; the paper's end-around-carry trick lives in the
    // implementation FPU, the reference keeps it simple).
    let pw = n.zext(&prod_win, wwin + 1);
    let aw = n.zext(&ac_win, wwin + 1);
    let aw_inverted = n.not_word(&aw);
    let aw_signed = n.mux_word(eff_sub, &aw_inverted, &aw);
    // cin = eff_sub AND no dropped addend bits (dropped bits during an
    // effective subtraction mean the true result is one window-LSB lower,
    // with sticky marking the remainder).
    let cin = n.and(eff_sub, !sticky_align);
    let (sum_raw, _) = n.add_carry(&pw, &aw_signed, cin);
    let sum_neg = sum_raw.msb();
    let sum_negated = n.neg(&sum_raw);
    let sum_abs = n.mux_word(sum_neg, &sum_negated, &sum_raw).truncate(wwin);

    // Far-out-left intermediate: the addend parked at the top (bits
    // [2f+3, 3f+3]), minus one window LSB during effective subtraction.
    let far_left_mag = {
        let zeros = n.word_const(2 * f + 3, 0);
        let placed = zeros.concat(&dc.sig);
        let placed = n.zext(&placed, wwin);
        let sub1 = n.and(eff_sub, prod_nonzero);
        let dec = {
            let one = n.word_const(wwin, 1);
            n.sub(&placed, &one)
        };
        n.mux_word(sub1, &dec, &placed)
    };

    let mag = n.mux_word(case_far_left, &far_left_mag, &sum_abs);
    let sticky_in = {
        let far_left_sticky = n.and(case_far_left, prod_nonzero);
        let align_sticky = n.and(!case_far_left, sticky_align);
        n.or(far_left_sticky, align_sticky)
    };

    // Result sign before rounding: far-left takes the addend sign; the
    // overlap adder takes the addend sign when the subtraction went
    // negative, else the product sign.
    let datapath_sign = {
        let overlap_sign = n.mux(sum_neg, sc, sp);
        n.mux(case_far_left, sc, overlap_sign)
    };

    // Intermediate exponent: weight of window bit wwin-1.
    //   far-left: e_c + 1  <=> biased ec + 1
    //   else:     e_p + f + 3 <=> biased ep_biased + f + 3
    let eint_biased = {
        let one = n.word_const(wexp, 1);
        let fl = n.add(&ec, &one);
        let fp3 = n.word_const(wexp, (f + 3) as u128);
        let ov = n.add(&ep_biased, &fp3);
        n.mux_word(case_far_left, &fl, &ov)
    };

    // ------------------------------------------------------------------
    // Rounder (Figure 3): count leading zeros, normalize with the shift
    // bounded so the exponent cannot drop below emin, then round.
    // ------------------------------------------------------------------
    let nlz = n.count_leading_zeros(&mag);
    let nlz_w = n.zext(&nlz, wexp);
    // sha_limit = eint_biased - 1 (biased emin is 1), clamped at >= 0.
    let one_w = n.word_const(wexp, 1);
    let limit_raw = n.sub(&eint_biased, &one_w);
    let limit_neg = limit_raw.msb();
    let zero_w = n.word_const(wexp, 0);
    let limit = n.mux_word(limit_neg, &zero_w, &limit_raw);
    let limited = n.slt(&limit, &nlz_w);
    let sha = n.mux_word(limited, &limit, &nlz_w);
    for (i, &bit) in sha.bits().iter().enumerate() {
        n.probe(format!("ref.sha[{i}]"), bit);
    }

    let shift_bits_norm = usize::BITS as usize - (wwin + 1).leading_zeros() as usize;
    // sha <= wwin always (nlz <= wwin; limit clamps further), so the low bits
    // suffice.
    let sha_small = sha.truncate(shift_bits_norm.min(wexp));
    let norm_l = n.shl_var(&mag, &sha_small);

    // When eint_biased < 1 even the window top lies below emin (very tiny
    // products): shift right by (1 - eint_biased), clamped to wwin,
    // collecting the dropped bits into sticky. The window top then sits
    // exactly at emin and the denormal grid lines up.
    let rshift_raw = n.neg(&limit_raw); // 1 - eint_biased when limit_neg
    let wwin_c = n.word_const(wexp, wwin as u128);
    let rbig = n.slt(&wwin_c, &rshift_raw);
    let rclamped = n.mux_word(rbig, &wwin_c, &rshift_raw);
    let rshift = n.mux_word(limit_neg, &rclamped, &zero_w);
    let rshift_small = rshift.truncate(shift_bits_norm.min(wexp));
    let ext = {
        let zeros = n.word_const(wwin, 0);
        zeros.concat(&norm_l) // norm_l occupies the high half
    };
    let ext_shifted = n.lshr_var(&ext, &rshift_small);
    let norm = ext_shifted.slice(wwin, 2 * wwin);
    let sticky_rshift = {
        let dropped = ext_shifted.slice(0, wwin);
        n.or_reduce(&dropped)
    };

    // e_res (biased) = eint_biased - sha + rshift.
    let e_res = {
        let t = n.sub(&eint_biased, &sha);
        n.add(&t, &rshift)
    };

    let sig = norm.slice(wwin - 1 - f, wwin); // f+1 bits
    let guard = norm.bit(wwin - 2 - f);
    let sticky_round = {
        let low = norm.slice(0, wwin - 2 - f);
        let t = n.or_reduce(&low);
        let t = n.or(t, sticky_in);
        n.or(t, sticky_rshift)
    };
    let inexact_raw = n.or(guard, sticky_round);
    let lsb = sig.bit(0);
    let round_up = {
        let rne_up = {
            let t = n.or(sticky_round, lsb);
            let t = n.and(guard, t);
            n.and(rm_rne, t)
        };
        let rtp_up = {
            let t = n.and(!datapath_sign, inexact_raw);
            n.and(rm_rtp, t)
        };
        let rtn_up = {
            let t = n.and(datapath_sign, inexact_raw);
            n.and(rm_rtn, t)
        };
        let t = n.or(rne_up, rtp_up);
        n.or(t, rtn_up)
    };
    let sig_ext = n.zext(&sig, f + 2);
    let sig_rounded = {
        let one = n.word_const(f + 2, 1);
        let inc = n.add(&sig_ext, &one);
        n.mux_word(round_up, &inc, &sig_ext)
    };
    let sig_carry = sig_rounded.bit(f + 1);
    let sig_final = {
        let shifted = n.lshr_const(&sig_rounded, 1).truncate(f + 1);
        let plain = sig_rounded.truncate(f + 1);
        n.mux_word(sig_carry, &shifted, &plain)
    };
    let e_res_final = {
        let inc = n.inc(&e_res);
        n.mux_word(sig_carry, &inc, &e_res)
    };

    // Tininess before rounding: the normalized window MSB is still 0 (the
    // value is below 2^emin) and the magnitude is nonzero.
    let mag_zero = n.is_zero(&mag);
    let result_exact_zero = n.and(mag_zero, !sticky_in);
    let tiny = n.and(!norm.bit(wwin - 1), !mag_zero);

    // Overflow: biased result exponent beyond emax (biased emax is
    // 2^eb - 2).
    let emax_b = n.word_const(wexp, (1u128 << eb) - 2);
    let overflow = {
        let gt = n.slt(&emax_b, &e_res_final);
        // Only meaningful when the result is normal (MSB set).
        n.and(gt, sig_final.bit(f))
    };

    // Pack the datapath result.
    let sig_msb = sig_final.bit(f);
    let biased_exp = {
        // Normal: e_res_final (low eb bits); denormal: 0.
        let e_trunc = e_res_final.truncate(eb);
        let zero_e = n.word_const(eb, 0);
        n.mux_word(sig_msb, &e_trunc, &zero_e)
    };
    let frac_out = sig_final.truncate(f);
    // Sign of an exactly-cancelled result: +0 except toward-negative.
    let final_sign = n.mux(result_exact_zero, rm_rtn, datapath_sign);
    let packed = {
        let mut bits = frac_out.bits().to_vec();
        bits.extend_from_slice(biased_exp.bits());
        bits.push(final_sign);
        Word::from_bits(bits)
    };
    // Exact zero or rounded-to-zero: clear exponent/fraction (packed already
    // has them zero in those cases — sig_final==0 implies frac 0 and biased
    // 0 — so no extra mux is needed; keep a debug check in tests instead).

    // Overflow substitution per rounding mode.
    let inf_out = {
        let mut bits = n.word_const(w_total, cfg.format.inf(false)).bits().to_vec();
        bits[w_total - 1] = final_sign;
        Word::from_bits(bits)
    };
    let max_out = {
        let mut bits = n
            .word_const(w_total, cfg.format.max_finite(false))
            .bits()
            .to_vec();
        bits[w_total - 1] = final_sign;
        Word::from_bits(bits)
    };
    // Round to inf: RNE always; RTP if positive; RTN if negative.
    let to_inf = {
        let rtp_inf = n.and(rm_rtp, !final_sign);
        let rtn_inf = n.and(rm_rtn, final_sign);
        let t = n.or(rm_rne, rtp_inf);
        n.or(t, rtn_inf)
    };
    let ovf_val = n.mux_word(to_inf, &inf_out, &max_out);
    let datapath_result = n.mux_word(overflow, &ovf_val, &packed);

    // FNMA/FNMS negate every non-NaN result (PowerPC semantics).
    let result = {
        let r = n.mux_word(special, &special_result, &datapath_result);
        let flip = n.and(neg_result, !out_nan);
        let mut bits = r.bits().to_vec();
        let top = bits[w_total - 1];
        bits[w_total - 1] = n.xor(top, flip);
        Word::from_bits(bits)
    };

    // Flags.
    let dp_inexact = {
        let t = n.or(inexact_raw, overflow);
        n.and(t, !special)
    };
    let dp_overflow = n.and(overflow, !special);
    let dp_underflow = {
        let t = n.and(tiny, inexact_raw);
        n.and(t, !special)
    };
    let flag_invalid = n.and(invalid, special);
    let flags = Word::from_bits(vec![flag_invalid, dp_overflow, dp_underflow, dp_inexact]);

    for (i, &bit) in result.bits().iter().enumerate() {
        n.output(format!("ref.result[{i}]"), bit);
    }
    for (i, &bit) in flags.bits().iter().enumerate() {
        n.output(format!("ref.flags[{i}]"), bit);
    }
    n.probe("ref.case_far_left", case_far_left);
    n.probe("ref.case_far_right", case_far_right);
    n.probe("ref.case_overlap", case_overlap);
    n.probe("ref.special", special);

    RefFpu {
        outputs: FpuOutputs { result, flags },
        delta,
        sha,
        case_far_left,
        case_far_right,
        case_overlap,
        special,
    }
}
