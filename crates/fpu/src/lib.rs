//! The two FPU designs under verification: a word-level *reference* FPU (the
//! paper's ~450-line specification model) and a gate-level *implementation*
//! FPU (Booth multiplier, alignment shifter, end-around-carry adder,
//! leading-zero anticipator, normalizer, rounder), plus a targeted test-case
//! generator for the simulation-based portion of the methodology.

#![warn(missing_docs)]

mod booth;
mod config;
pub mod impl_fpu;
mod lza;
pub mod ref_fpu;
pub mod tcgen;

pub use booth::{array_multiply, booth_multiply, compress_3_2, csa_tree};
pub use config::{DenormalMode, FpuConfig, FpuInputs, FpuOp, FpuOutputs};
pub use impl_fpu::{build_impl_fpu, ImplFpu, MultiplierMode, PipelineMode};
pub use lza::lzc_tree;
pub use ref_fpu::{build_ref_fpu, ProductSource, RefFpu};
pub use tcgen::{classify, Target, TestCase, TestCaseGenerator};
