//! Normalization-shift anticipation for the implementation FPU.
//!
//! The implementation FPU normalizes using a shift amount that is computed
//! *before* the adder's late `+1` carry completes: the end-around-carry
//! subtraction makes the one's-complement difference available early, and a
//! tree-structured leading-zero detector runs on it. The completed sum can
//! have one fewer leading zero than the early value (the increment can carry
//! into the leading-one position), so the anticipated shift may overshoot
//! the true normalization by exactly one position — the "shift-amount
//! anticipation error" the paper attributes to the implementation's LZA —
//! and the datapath applies a one-position mis-anticipation correction after
//! the normalization shifter.
//!
//! Structurally this detector is a hierarchical half-and-half recursion,
//! deliberately unlike the reference FPU's linear priority (mux-chain)
//! leading-zero counter, so redundancy removal cannot collapse the two.

use fmaverify_netlist::{Netlist, Signal, Word};

/// Recursive block: returns `(all_zero, count_bits)` for a slice, where
/// `count_bits` is the leading-zero count (valid when not `all_zero`; the
/// all-zero case reports the full width via the parent's composition).
fn lzc_block(n: &mut Netlist, bits: &[Signal]) -> (Signal, Vec<Signal>) {
    match bits.len() {
        1 => (!bits[0], Vec::new()),
        _ => {
            // Split so that the high half is the largest power of two not
            // exceeding the width; the recursion then lines up with binary
            // count digits.
            let half = bits.len().div_ceil(2);
            let lo = &bits[..bits.len() - half];
            let hi = &bits[bits.len() - half..];
            let (hi_zero, hi_count) = lzc_block(n, hi);
            let (lo_zero, lo_count) = lzc_block(n, lo);
            let all_zero = n.and(hi_zero, lo_zero);
            // count = hi_zero ? half + lo_count : hi_count
            let width = hi_count.len().max(lo_count.len()) + 1;
            let lo_word = Word::from_bits({
                let mut v = lo_count;
                v.resize(width, Signal::FALSE);
                v
            });
            let half_word = n.word_const(width, half as u128);
            let sum = n.add(&lo_word, &half_word);
            let hi_word = Word::from_bits({
                let mut v = hi_count;
                v.resize(width, Signal::FALSE);
                v
            });
            let count = n.mux_word(hi_zero, &sum, &hi_word);
            (all_zero, count.bits().to_vec())
        }
    }
}

/// Tree-structured leading-zero counter: returns a word wide enough to hold
/// `a.width()` (the all-zero count).
pub fn lzc_tree(n: &mut Netlist, a: &Word) -> Word {
    let w = a.width();
    // Enough bits to represent the all-zero count `w` itself.
    let out_w = (u32::BITS - (w as u32).leading_zeros()) as usize;
    let (all_zero, count) = lzc_block(n, a.bits());
    let mut count_word = Word::from_bits({
        let mut v = count;
        v.resize(out_w, Signal::FALSE);
        v
    });
    let full = n.word_const(out_w, w as u128);
    count_word = n.mux_word(all_zero, &full, &count_word);
    count_word
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_netlist::BitSim;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_lzc(w: usize, vals: impl Iterator<Item = u128>) {
        let mut n = Netlist::new();
        let a = n.word_input("a", w);
        let c = lzc_tree(&mut n, &a);
        let mut sim = BitSim::new(&n);
        for v in vals {
            sim.set_word(&a, v);
            sim.eval();
            let expect = if v == 0 {
                w as u128
            } else {
                (w as u32 - (128 - v.leading_zeros())) as u128
            };
            assert_eq!(sim.get_word(&c), expect, "lzc of {v:#x} width {w}");
        }
    }

    #[test]
    fn exhaustive_small_widths() {
        for w in [1usize, 2, 3, 5, 8, 11] {
            check_lzc(w, 0..1u128 << w);
        }
    }

    #[test]
    fn random_wide() {
        let mut rng = StdRng::seed_from_u64(123);
        for w in [40usize, 61, 100] {
            let mask = if w >= 128 {
                u128::MAX
            } else {
                (1u128 << w) - 1
            };
            let vals: Vec<u128> = (0..500)
                .map(|i| {
                    if i % 3 == 0 {
                        // bias toward long leading-zero runs
                        (rng.gen::<u128>() & mask) >> rng.gen_range(0..w as u32)
                    } else {
                        rng.gen::<u128>() & mask
                    }
                })
                .collect();
            check_lzc(w, vals.into_iter());
        }
    }

    #[test]
    fn anticipation_error_is_at_most_one() {
        // The anticipation contract: nlz(x) - nlz(x+1) is 0 or 1 for any
        // nonzero x+1 — the property the mis-anticipation correction relies
        // on. (Pure arithmetic fact; recorded here as the contract test.)
        for w in [6u32, 10] {
            for x in 0..(1u128 << w) - 1 {
                let nlz = |v: u128| {
                    if v == 0 {
                        w
                    } else {
                        w - (128 - v.leading_zeros())
                    }
                };
                let d = nlz(x) as i64 - nlz(x + 1) as i64;
                assert!((0..=1).contains(&d), "x={x} w={w}");
            }
        }
    }

    #[test]
    fn structurally_different_from_chain_lzc() {
        // The tree LZC and the word-level chain LZC compute the same
        // function with different structure (so they do not structurally
        // hash together).
        let mut n = Netlist::new();
        let a = n.word_input("a", 24);
        let tree = lzc_tree(&mut n, &a);
        let chain = n.count_leading_zeros(&a);
        assert_ne!(tree.bits()[0], chain.bits()[0]);
        let mut sim = BitSim::new(&n);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..300 {
            let v = (rng.gen::<u128>() & 0xff_ffff) >> rng.gen_range(0..24);
            sim.set_word(&a, v);
            sim.eval();
            assert_eq!(sim.get_word(&tree), sim.get_word(&chain), "v={v:#x}");
        }
    }
}
