//! Radix-4 Booth multiplier with a 3:2 carry-save compression tree.
//!
//! This is the implementation FPU's multiplier array: the multiplier operand
//! is recoded into radix-4 Booth digits in {−2,−1,0,1,2}, each digit selects
//! a partial product of the multiplicand, and a Wallace-style tree of 3:2
//! compressors reduces the rows to two vectors `S` and `T` whose (modular)
//! sum is the product. The negative rows leave constant "hot-one" artifacts
//! in the upper bits of `S`/`T` — exactly the structure the paper's
//! multiplier-isolation properties describe.

use fmaverify_netlist::{Netlist, Signal, Word};

/// One radix-4 Booth digit, decoded from three adjacent multiplier bits.
struct BoothDigit {
    /// |digit| == 1.
    one: Signal,
    /// |digit| == 2.
    two: Signal,
    /// digit < 0.
    neg: Signal,
}

fn booth_digit(n: &mut Netlist, hi: Signal, mid: Signal, lo: Signal) -> BoothDigit {
    // (hi mid lo): 000 -> 0, 001/010 -> +1, 011 -> +2, 100 -> -2,
    // 101/110 -> -1, 111 -> 0.
    let one = n.xor(mid, lo);
    let two = {
        let t1 = {
            let a = n.and(!hi, mid);
            n.and(a, lo)
        };
        let t2 = {
            let a = n.and(hi, !mid);
            n.and(a, !lo)
        };
        n.or(t1, t2)
    };
    BoothDigit { one, two, neg: hi }
}

/// Compresses three equal-width words into two with a row of full adders
/// (the carry word is pre-shifted left by one, wrapping modulo the width).
pub fn compress_3_2(n: &mut Netlist, a: &Word, b: &Word, c: &Word) -> (Word, Word) {
    assert_eq!(a.width(), b.width());
    assert_eq!(a.width(), c.width());
    let w = a.width();
    let mut sum = Vec::with_capacity(w);
    let mut carry = vec![Signal::FALSE; 1];
    for i in 0..w {
        let (s, cy) = n.full_adder(a.bit(i), b.bit(i), c.bit(i));
        sum.push(s);
        carry.push(cy);
    }
    carry.truncate(w); // modular: the top carry wraps out
    (Word::from_bits(sum), Word::from_bits(carry))
}

/// Reduces a list of equal-width addends to two using a balanced tree of 3:2
/// compressors. The sum of the outputs equals the sum of the inputs modulo
/// `2^width`.
pub fn csa_tree(n: &mut Netlist, rows: Vec<Word>) -> (Word, Word) {
    assert!(!rows.is_empty(), "need at least one row");
    let w = rows[0].width();
    let mut queue: std::collections::VecDeque<Word> = rows.into();
    while queue.len() > 2 {
        let a = queue.pop_front().expect("len > 2");
        let b = queue.pop_front().expect("len > 2");
        let c = queue.pop_front().expect("len > 2");
        let (s, cy) = compress_3_2(n, &a, &b, &c);
        queue.push_back(s);
        queue.push_back(cy);
    }
    let s = queue
        .pop_front()
        .unwrap_or_else(|| Word::from_bits(vec![Signal::FALSE; w]));
    let t = queue
        .pop_front()
        .unwrap_or_else(|| Word::from_bits(vec![Signal::FALSE; w]));
    (s, t)
}

/// Multiplies two unsigned words with radix-4 Booth recoding, returning the
/// carry-save pair `(S, T)` with `(S + T) mod 2^out_width == x * y`.
///
/// # Panics
/// Panics if `out_width < x.width() + y.width()` (the product must fit, so
/// the modular equality is an exact one on the product value).
pub fn booth_multiply(n: &mut Netlist, x: &Word, y: &Word, out_width: usize) -> (Word, Word) {
    assert!(
        out_width >= x.width() + y.width(),
        "product would not fit in out_width"
    );
    let xw = x.width();
    // Partial-product magnitudes: x and 2x, one bit wider than x.
    let x1 = n.zext(x, xw + 1);
    let x2 = n.shl_const(&x1, 1);
    // Digits cover multiplier bits in pairs; one extra digit captures the
    // (unsigned) top.
    let nd = y.width() / 2 + 1;
    let ybit = |i: isize| -> Signal {
        if i < 0 || i as usize >= y.width() {
            Signal::FALSE
        } else {
            y.bit(i as usize)
        }
    };
    let mut rows: Vec<Word> = Vec::with_capacity(2 * nd);
    for d in 0..nd {
        let i = d as isize * 2;
        let dig = booth_digit(n, ybit(i + 1), ybit(i), ybit(i - 1));
        // Magnitude select: 0, x, or 2x.
        let zero = n.word_const(xw + 1, 0);
        let m1 = n.mux_word(dig.one, &x1, &zero);
        let mag = n.mux_word(dig.two, &x2, &m1);
        // Two's-complement row over the full output width: invert on
        // negative and add a +1 correction bit at the row offset... the
        // correction is at bit 0 of the *full word* after inversion of the
        // shifted value, which equals a +1 at the shift offset because the
        // bits below the offset invert to ones and the carry ripples.
        let shifted = {
            let mut bits = vec![Signal::FALSE; 2 * d];
            bits.extend_from_slice(mag.bits());
            bits.resize(out_width, Signal::FALSE);
            Word::from_bits(bits)
        };
        let inverted = n.not_word(&shifted);
        let row = n.mux_word(dig.neg, &inverted, &shifted);
        rows.push(row);
        // Correction word: +1 at bit 0 when negative (completing ~A + 1).
        let mut corr = vec![Signal::FALSE; out_width];
        corr[0] = dig.neg;
        rows.push(Word::from_bits(corr));
    }
    csa_tree(n, rows)
}

/// Multiplies two unsigned words with a plain AND-array (non-Booth) partial
/// product generator reduced by the same 3:2 tree. This is the alternative
/// multiplier used by the portability experiment: a different implementation
/// whose `S'`,`T'` rules differ from the Booth multiplier's.
///
/// # Panics
/// Panics if `out_width < x.width() + y.width()`.
pub fn array_multiply(n: &mut Netlist, x: &Word, y: &Word, out_width: usize) -> (Word, Word) {
    assert!(
        out_width >= x.width() + y.width(),
        "product would not fit in out_width"
    );
    let mut rows: Vec<Word> = Vec::with_capacity(y.width());
    for (i, &yi) in y.bits().iter().enumerate() {
        let mut bits = vec![Signal::FALSE; i];
        for &xj in x.bits() {
            bits.push(n.and(xj, yi));
        }
        bits.resize(out_width, Signal::FALSE);
        rows.push(Word::from_bits(bits));
    }
    csa_tree(n, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_netlist::BitSim;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_mult(xw: usize, yw: usize, ow: usize, vals: &[(u128, u128)]) {
        let mut n = Netlist::new();
        let x = n.word_input("x", xw);
        let y = n.word_input("y", yw);
        let (s, t) = booth_multiply(&mut n, &x, &y, ow);
        assert_eq!(s.width(), ow);
        assert_eq!(t.width(), ow);
        let mut sim = BitSim::new(&n);
        for &(vx, vy) in vals {
            sim.set_word(&x, vx);
            sim.set_word(&y, vy);
            sim.eval();
            let vs = sim.get_word(&s);
            let vt = sim.get_word(&t);
            let mask = if ow >= 128 {
                u128::MAX
            } else {
                (1u128 << ow) - 1
            };
            assert_eq!(
                vs.wrapping_add(vt) & mask,
                vx * vy,
                "S+T for {vx} * {vy} (S={vs:#x} T={vt:#x})"
            );
        }
    }

    #[test]
    fn exhaustive_small() {
        let vals: Vec<(u128, u128)> = (0..64)
            .flat_map(|a| (0..64).map(move |b| (a as u128, b as u128)))
            .collect();
        check_mult(6, 6, 14, &vals);
    }

    #[test]
    fn asymmetric_widths() {
        let vals: Vec<(u128, u128)> = (0..16)
            .flat_map(|a| (0..128).map(move |b| (a as u128, b as u128)))
            .collect();
        check_mult(4, 7, 12, &vals);
        let swapped: Vec<(u128, u128)> = vals.iter().map(|&(a, b)| (b, a)).collect();
        check_mult(7, 4, 16, &swapped);
    }

    #[test]
    fn random_double_precision_width() {
        let mut rng = StdRng::seed_from_u64(42);
        let vals: Vec<(u128, u128)> = (0..300)
            .map(|_| {
                (
                    rng.gen::<u128>() & ((1 << 53) - 1),
                    rng.gen::<u128>() & ((1 << 53) - 1),
                )
            })
            .collect();
        check_mult(53, 53, 110, &vals);
    }

    #[test]
    fn array_multiplier_matches() {
        let mut n = Netlist::new();
        let x = n.word_input("x", 6);
        let y = n.word_input("y", 6);
        let (s, t) = array_multiply(&mut n, &x, &y, 13);
        let mut sim = BitSim::new(&n);
        for vx in 0..64u128 {
            for vy in [0u128, 1, 7, 31, 32, 63] {
                sim.set_word(&x, vx);
                sim.set_word(&y, vy);
                sim.eval();
                assert_eq!((sim.get_word(&s) + sim.get_word(&t)) & 0x1fff, vx * vy);
            }
        }
    }

    #[test]
    fn csa_tree_modular_sum() {
        let mut n = Netlist::new();
        let words: Vec<Word> = (0..7).map(|i| n.word_input(&format!("w{i}"), 10)).collect();
        let (s, t) = csa_tree(&mut n, words.clone());
        let mut sim = BitSim::new(&n);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let vals: Vec<u128> = (0..7).map(|_| rng.gen_range(0..1024)).collect();
            for (w, &v) in words.iter().zip(&vals) {
                sim.set_word(w, v);
            }
            sim.eval();
            let total: u128 = vals.iter().sum::<u128>() & 1023;
            assert_eq!((sim.get_word(&s) + sim.get_word(&t)) & 1023, total);
        }
    }

    #[test]
    fn hot_ones_exist() {
        // The upper bits of S/T contain constant artifacts of the Booth
        // encoding: with random stimulus, at least one bit above the product
        // width is constant across many samples.
        let mut n = Netlist::new();
        let x = n.word_input("x", 8);
        let y = n.word_input("y", 8);
        let (s, t) = booth_multiply(&mut n, &x, &y, 20);
        let mut sim = BitSim::new(&n);
        let mut rng = StdRng::seed_from_u64(9);
        let mut always_one_s = (1u128 << 20) - 1;
        let mut always_one_t = (1u128 << 20) - 1;
        for _ in 0..500 {
            sim.set_word(&x, rng.gen_range(128..256));
            sim.set_word(&y, rng.gen_range(128..256));
            sim.eval();
            always_one_s &= sim.get_word(&s);
            always_one_t &= sim.get_word(&t);
        }
        assert!(
            (always_one_s | always_one_t) >> 16 != 0,
            "expected constant hot-one bits above the product width \
             (S mask {always_one_s:#x}, T mask {always_one_t:#x})"
        );
    }
}
