//! The implementation ("real") FPU.
//!
//! A gate-level FMA datapath in the style the paper verifies: radix-4 Booth
//! multiplier reduced by a 3:2 compressor tree to sum/carry vectors `S`,`T`
//! (with hot-one artifacts), an alignment shifter placing the addend against
//! the product window, a carry-save merge and end-around-carry-style adder
//! whose late `+1` is applied by a separate incrementer, normalization-shift
//! *anticipation* from the early one's-complement value with a one-position
//! mis-anticipation correction, a bounded normalization shifter (denormal
//! results), an injection-style rounder with one-hot mode decode, opcode
//! decoding, and (optionally) pipeline registers with data-dependent clock
//! gating of the multiplier stage.
//!
//! It computes the same function as the reference FPU but shares none of its
//! structure — which is exactly why the paper needs case-splitting and
//! multiplier isolation rather than plain redundancy removal.

use fmaverify_netlist::{Netlist, Signal, Word};

use crate::booth::{booth_multiply, compress_3_2};
use crate::config::{DenormalMode, FpuConfig, FpuInputs, FpuOutputs};
use crate::lza::lzc_tree;

/// Where the implementation FPU's multiplier vectors come from.
#[derive(Clone, Debug)]
pub enum MultiplierMode {
    /// Build the real Booth multiplier.
    Real,
    /// Build a plain AND-array (non-Booth) multiplier — a second
    /// implementation variant for the portability experiment.
    RealArray,
    /// Override `S`,`T` with the given words (the paper's Figure 1: the
    /// multiplier array is never built, so it is absent from the cone of
    /// influence). Words must be `window_bits()` wide and satisfy
    /// `(S + T) mod 2^window_bits == significand product`.
    Override {
        /// The pseudo-input sum vector `S'`.
        s: Word,
        /// The pseudo-input carry vector `T'`.
        t: Word,
    },
}

/// Pipelining of the implementation FPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineMode {
    /// Pure combinational datapath.
    Combinational,
    /// Three register stages (after multiply/align, after add, after round),
    /// with the multiplier-stage registers clock-gated off when the far-out
    /// left path makes the product irrelevant. Results are valid three
    /// cycles after issue.
    ThreeStage,
}

impl PipelineMode {
    /// Cycles from operand application to a valid result.
    pub fn latency(self) -> usize {
        match self {
            PipelineMode::Combinational => 0,
            PipelineMode::ThreeStage => 3,
        }
    }
}

/// Handles into the built implementation FPU.
#[derive(Clone, Debug)]
pub struct ImplFpu {
    /// Result and flag outputs.
    pub outputs: FpuOutputs,
    /// The multiplier sum vector `S` actually consumed by the datapath
    /// (real or override). Probe prefix `impl.s`.
    pub s: Word,
    /// The multiplier carry vector `T`. Probe prefix `impl.t`.
    pub t: Word,
    /// The significand inputs feeding the multiplier (`ma`, `mb`), needed by
    /// the isolation soundness proof.
    pub ma: Word,
    /// Multiplier operand B significand.
    pub mb: Word,
    /// The anticipated (pre-correction) normalization shift.
    pub sha_anticipated: Word,
    /// The one-position mis-anticipation correction signal.
    pub correction: Signal,
    /// The multiplier clock-gating control (pipeline mode only; constant
    /// true in combinational mode).
    pub mult_clock_enable: Signal,
}

/// Inserts a pipeline stage over a set of words if pipelining is on;
/// `enable` models clock gating (registers hold when disabled).
fn stage(n: &mut Netlist, pipeline: PipelineMode, enable: Signal, words: &mut [&mut Word]) {
    if pipeline == PipelineMode::Combinational {
        return;
    }
    for w in words {
        let bits: Vec<Signal> = w
            .bits()
            .iter()
            .map(|&b| {
                let q = n.latch(false);
                let d = n.mux(enable, b, q);
                n.set_latch_next(q, d);
                q
            })
            .collect();
        **w = Word::from_bits(bits);
    }
}

/// Builds the implementation FPU over the shared inputs.
pub fn build_impl_fpu(
    n: &mut Netlist,
    cfg: &FpuConfig,
    inputs: &FpuInputs,
    multiplier: MultiplierMode,
    pipeline: PipelineMode,
) -> ImplFpu {
    let f = cfg.format.frac_bits() as usize;
    let eb = cfg.format.exp_bits() as usize;
    let w_total = cfg.format.width() as usize;
    let bias = cfg.format.bias() as i64;
    let wexp = cfg.exp_arith_bits();
    let wwin = cfg.window_bits();

    // ---------------- operand field extraction (one-hot style) -----------
    let fields =
        |w: &Word| -> (Word, Word, Signal) { (w.slice(0, f), w.slice(f, f + eb), w.bit(f + eb)) };
    let op_oh = n.decode_one_hot(&inputs.op); // [fma, fms, add, mul, fnma, fnms, -, -]
    let is_fms = n.or(op_oh.bit(1), op_oh.bit(5));
    let is_add = op_oh.bit(2);
    let is_mul = op_oh.bit(3);
    let neg_result = n.or(op_oh.bit(4), op_oh.bit(5));
    let rm_oh = n.decode_one_hot(&inputs.rm); // [rne, rtz, rtp, rtn]

    let one_w = n.word_const(w_total, cfg.format.one(false));
    let zero_w = n.word_const(w_total, 0);
    let b_raw = n.mux_word(is_add, &one_w, &inputs.b);
    let c_raw = n.mux_word(is_mul, &zero_w, &inputs.c);

    struct Op {
        sign: Signal,
        nan: Signal,
        snan: Signal,
        inf: Signal,
        zero: Signal,
        sig: Word,
        exp: Word,
    }
    let mut dec = |raw: &Word| -> Op {
        let (frac, exp, sign) = fields(raw);
        let any_frac = n.or_reduce(&frac);
        let all_exp = n.and_reduce(&exp);
        let any_exp = n.or_reduce(&exp);
        let nan = n.and(all_exp, any_frac);
        let snan = n.and(nan, !frac.bit(f - 1));
        let inf = n.and(all_exp, !any_frac);
        let zero = match cfg.denormals {
            DenormalMode::FlushToZero => !any_exp,
            DenormalMode::FullIeee => {
                let z = n.or(any_exp, any_frac);
                !z
            }
        };
        let implicit = n.and(any_exp, !all_exp);
        let keep = match cfg.denormals {
            DenormalMode::FlushToZero => implicit,
            DenormalMode::FullIeee => Signal::TRUE,
        };
        let mut sig_bits: Vec<Signal> = frac.bits().iter().map(|&b| n.and(b, keep)).collect();
        sig_bits.push(implicit);
        // Effective biased exponent: OR the denormal/zero case up to 1.
        let low_or = n.or(exp.bit(0), !any_exp);
        let mut exp_bits = exp.bits().to_vec();
        exp_bits[0] = low_or;
        Op {
            sign,
            nan,
            snan,
            inf,
            zero,
            sig: Word::from_bits(sig_bits),
            exp: Word::from_bits(exp_bits),
        }
    };
    let oa = dec(&inputs.a);
    let ob = dec(&b_raw);
    let oc = dec(&c_raw);

    let sc = n.xor(oc.sign, is_fms);
    let sp = n.xor(oa.sign, ob.sign);
    let eff_sub = n.xor(sp, sc);

    // ---------------- exponent datapath ----------------------------------
    let ea = n.zext(&oa.exp, wexp);
    let ebw = n.zext(&ob.exp, wexp);
    let ecw = n.zext(&oc.exp, wexp);
    // r = ea + eb - ec + (f + 3 - bias), folded into one constant.
    let k_align = (f as i64 + 3 - bias) as i128;
    let k_word = n.word_const(wexp, (k_align & ((1i128 << wexp) - 1)) as u128);
    let ea_eb = n.add(&ea, &ebw);
    let ea_eb_k = n.add(&ea_eb, &k_word);
    let r_align = n.sub(&ea_eb_k, &ecw); // = delta + f + 3
                                         // eint (biased, window-top weight) for the product-anchored window:
                                         //   ep_biased + f + 3 = r_align + ec - bias + bias = r_align + ec ... one
                                         //   more constant fold: eint_prod = ea + eb + (f + 3 - bias) - 0.
    let eint_prod = ea_eb_k.clone();

    // Far-out-left detection: r_align < 0 means delta < -(f+3).
    let c_zero = oc.zero;
    let far_left = {
        let neg = r_align.msb();
        n.and(neg, !c_zero)
    };

    // Alignment shift clamp to [0, 3f+5].
    let rmax_c = n.word_const(wexp, (3 * f + 5) as u128);
    let r_over = {
        let gt = n.slt(&rmax_c, &r_align);
        n.and(gt, !r_align.msb())
    };
    let zero_e = n.word_const(wexp, 0);
    let r_sel = {
        let t = n.mux_word(r_over, &rmax_c, &r_align);
        n.mux_word(r_align.msb(), &zero_e, &t)
    };
    let shift_bits = usize::BITS as usize - (4 * f + 7).leading_zeros() as usize;
    let r_small = r_sel.truncate(shift_bits.min(wexp));

    let xzone = f + 2;
    let wext = wwin + xzone;
    let addend_parked = {
        let zeros = n.word_const(xzone + 2 * f + 4, 0);
        zeros.concat(&oc.sig)
    };
    let addend_aligned = n.lshr_var(&addend_parked, &r_small);
    let sticky_align = {
        let z = addend_aligned.slice(0, xzone);
        n.or_reduce(&z)
    };
    let ac_win = addend_aligned.slice(xzone, wext);

    // ---------------- multiplier ------------------------------------------
    let ma = oa.sig.clone();
    let mb = ob.sig.clone();
    let (s_vec, t_vec) = match &multiplier {
        MultiplierMode::Real => booth_multiply(n, &ma, &mb, wwin),
        MultiplierMode::RealArray => crate::booth::array_multiply(n, &ma, &mb, wwin),
        MultiplierMode::Override { s, t } => {
            assert_eq!(s.width(), wwin, "S' must be window_bits wide");
            assert_eq!(t.width(), wwin, "T' must be window_bits wide");
            (s.clone(), t.clone())
        }
    };
    for (i, &b) in s_vec.bits().iter().enumerate() {
        n.probe(format!("impl.s[{i}]"), b);
    }
    for (i, &b) in t_vec.bits().iter().enumerate() {
        n.probe(format!("impl.t[{i}]"), b);
    }
    let prod_nonzero = {
        // S + T == 0 mod 2^wwin  <=>  S == -T  <=>  S == ~T + 1; detect via
        // the carry-save zero trick: (S ^ T) == (S | T) << 1.
        let x = n.xor_word(&s_vec, &t_vec);
        let o = n.or_word(&s_vec, &t_vec);
        let o1 = n.shl_const(&o, 1);
        let eq = n.eq_word(&x, &o1);
        !eq
    };

    // ---------------- pipeline stage 1 (multiply/align) ------------------
    // The multiplier-stage registers are clock-gated off when the far-left
    // path makes the product irrelevant (data-dependent clock gating).
    let mult_clock_enable = match pipeline {
        PipelineMode::Combinational => Signal::TRUE,
        PipelineMode::ThreeStage => !far_left,
    };
    let mut s_vec = s_vec;
    let mut t_vec = t_vec;
    stage(
        n,
        pipeline,
        mult_clock_enable,
        &mut [&mut s_vec, &mut t_vec],
    );
    let mut ac_win = ac_win;
    let mut eint_prod_p = eint_prod.clone();
    let mut ecw_p = ecw.clone();
    let mut sticky_align = Word::from_bits(vec![sticky_align]);
    // Issue-time copies for the special-case logic, which is resolved at
    // stage 0 (the stage-1 names are shadowed below).
    let sp_issue = sp;
    let sc_issue = sc;
    let mut ctrl1 = Word::from_bits(vec![far_left, eff_sub, sp, sc, prod_nonzero, c_zero]);
    stage(
        n,
        pipeline,
        Signal::TRUE,
        &mut [
            &mut ac_win,
            &mut eint_prod_p,
            &mut ecw_p,
            &mut sticky_align,
            &mut ctrl1,
        ],
    );
    let far_left = ctrl1.bit(0);
    let eff_sub = ctrl1.bit(1);
    let sp = ctrl1.bit(2);
    let sc = ctrl1.bit(3);
    let prod_nonzero = ctrl1.bit(4);
    let sticky_align = sticky_align.bit(0);

    // ---------------- carry-save merge and EAC-style adder ---------------
    // Widen before shifting: the multiplier vectors are modular in wwin
    // bits, and doubling them must carry the top bit into bit wwin so that
    // the wwin+1-bit sum still equals product<<1 modulo 2^(wwin+1).
    let s1 = {
        let w = n.zext(&s_vec, wwin + 1);
        n.shl_const(&w, 1)
    };
    let t1 = {
        let w = n.zext(&t_vec, wwin + 1);
        n.shl_const(&w, 1)
    };
    let acx = {
        let a = n.zext(&ac_win, wwin + 1);
        let inv = n.not_word(&a);
        n.mux_word(eff_sub, &inv, &a)
    };
    let (cs_sum, cs_carry) = compress_3_2(n, &s1, &t1, &acx);
    // The carry-propagate adder runs without the late +1; the increment is a
    // separate (faster) circuit, and the pre-increment value feeds the
    // normalization-shift anticipation.
    let pre = n.add(&cs_sum, &cs_carry);
    let cin = n.and(eff_sub, !sticky_align);
    let sum_raw = {
        let inc = n.inc(&pre);
        n.mux_word(cin, &inc, &pre)
    };
    let sum_neg = sum_raw.msb();
    let mag_overlap = {
        let inv = n.not_word(&sum_raw);
        let neg = n.inc(&inv);
        n.mux_word(sum_neg, &neg, &sum_raw).truncate(wwin)
    };
    // Early one's-complement view for anticipation.
    let early = {
        let inv = n.not_word(&pre);
        n.mux_word(sum_neg, &inv, &pre).truncate(wwin)
    };

    // Far-left parked-addend path.
    let mag_far_left = {
        let zeros = n.word_const(2 * f + 3, 0);
        let parked = zeros.concat(&oc.sig);
        let mut parked = n.zext(&parked, wwin);
        stage(n, pipeline, Signal::TRUE, &mut [&mut parked]);
        let one = n.word_const(wwin, 1);
        let dec = n.sub(&parked, &one);
        let use_dec = n.and(eff_sub, prod_nonzero);
        n.mux_word(use_dec, &dec, &parked)
    };

    let mag = n.mux_word(far_left, &mag_far_left, &mag_overlap);
    let early_sel = n.mux_word(far_left, &mag_far_left, &early);
    let sticky_pre = {
        let fl = n.and(far_left, prod_nonzero);
        let ov = n.and(!far_left, sticky_align);
        n.or(fl, ov)
    };
    let dp_sign = {
        let ov = n.mux(sum_neg, sc, sp);
        n.mux(far_left, sc, ov)
    };
    let eint = {
        let one = n.word_const(wexp, 1);
        let fl = n.add(&ecw_p, &one);
        n.mux_word(far_left, &fl, &eint_prod_p)
    };

    // ---------------- normalization with anticipation --------------------
    // Anticipated shift: leading zeros of the early value, minus one
    // (guaranteeing the anticipation never overshoots), bounded by the
    // exponent limit; a correction stage shifts one more when the window
    // MSB is still clear.
    let nlz_early = lzc_tree(n, &early_sel);
    let nlz_w = n.zext(&nlz_early, wexp);
    let one_c = n.word_const(wexp, 1);
    let ant_raw = n.sub(&nlz_w, &one_c);
    let zero_c = n.word_const(wexp, 0);
    let ant = {
        let neg = ant_raw.msb();
        n.mux_word(neg, &zero_c, &ant_raw)
    };
    // limit = eint - 1, clamped at 0; negative limit means a right shift.
    let limit_raw = n.sub(&eint, &one_c);
    let limit_neg = limit_raw.msb();
    let limit = n.mux_word(limit_neg, &zero_c, &limit_raw);
    let ant_limited = {
        let over = n.slt(&limit, &ant);
        n.mux_word(over, &limit, &ant)
    };
    let norm_shift_bits = usize::BITS as usize - (wwin + 1).leading_zeros() as usize;
    let ant_small = ant_limited.truncate(norm_shift_bits.min(wexp));

    // ---------------- pipeline stage 2 (after add) -----------------------
    let mut mag = mag;
    let mut ant_limited = ant_limited;
    let mut ant_small = ant_small;
    let mut limit = limit;
    let mut eint = eint;
    let mut rshift_ctl = Word::from_bits(vec![limit_neg, dp_sign, sticky_pre]);
    let mut limit_raw = limit_raw;
    stage(
        n,
        pipeline,
        Signal::TRUE,
        &mut [
            &mut mag,
            &mut ant_limited,
            &mut ant_small,
            &mut limit,
            &mut eint,
            &mut rshift_ctl,
            &mut limit_raw,
        ],
    );
    let limit_neg = rshift_ctl.bit(0);
    let dp_sign = rshift_ctl.bit(1);
    let sticky_pre = rshift_ctl.bit(2);

    let norm0 = n.shl_var(&mag, &ant_small);
    // Mis-anticipation correction: one more position if the MSB is still
    // clear and the limit allows.
    let room = n.slt(&ant_limited, &limit);
    let correction = {
        let msb0 = !norm0.msb();
        n.and(msb0, room)
    };
    let norm1 = {
        let shifted = n.shl_const(&norm0, 1);
        n.mux_word(correction, &shifted, &norm0)
    };
    let sha_total = {
        let inc = n.inc(&ant_limited);
        n.mux_word(correction, &inc, &ant_limited)
    };

    // Right-shift stage for eint < 1 (window top below emin).
    let rshift_full = n.neg(&limit_raw);
    let wwin_c = n.word_const(wexp, wwin as u128);
    let r_toobig = n.slt(&wwin_c, &rshift_full);
    let rsh = {
        let t = n.mux_word(r_toobig, &wwin_c, &rshift_full);
        n.mux_word(limit_neg, &t, &zero_c)
    };
    let rsh_small = rsh.truncate(norm_shift_bits.min(wexp));
    let ext = {
        let zeros = n.word_const(wwin, 0);
        zeros.concat(&norm1)
    };
    let ext_sh = n.lshr_var(&ext, &rsh_small);
    let norm = ext_sh.slice(wwin, 2 * wwin);
    let sticky_rsh = {
        let dropped = ext_sh.slice(0, wwin);
        n.or_reduce(&dropped)
    };

    let e_res = {
        let t = n.sub(&eint, &sha_total);
        n.add(&t, &rsh)
    };

    // ---------------- rounder ---------------------------------------------
    let sig = norm.slice(wwin - 1 - f, wwin);
    let guard = norm.bit(wwin - 2 - f);
    let sticky = {
        let low = norm.slice(0, wwin - 2 - f);
        let t = n.or_reduce(&low);
        let t = n.or(t, sticky_pre);
        n.or(t, sticky_rsh)
    };
    let inexact_pre = n.or(guard, sticky);
    let lsb = sig.bit(0);
    let round_up = {
        let rne = {
            let t = n.or(sticky, lsb);
            let t = n.and(guard, t);
            n.and(rm_oh.bit(0), t)
        };
        let rtp = {
            let t = n.and(!dp_sign, inexact_pre);
            n.and(rm_oh.bit(2), t)
        };
        let rtn = {
            let t = n.and(dp_sign, inexact_pre);
            n.and(rm_oh.bit(3), t)
        };
        let t = n.or(rne, rtp);
        n.or(t, rtn)
    };
    let sig_x = n.zext(&sig, f + 2);
    let sig_inc = n.inc(&sig_x);
    let sig_r = n.mux_word(round_up, &sig_inc, &sig_x);
    let carry_out = sig_r.bit(f + 1);
    let sig_fin = {
        let hi = n.lshr_const(&sig_r, 1).truncate(f + 1);
        let lo = sig_r.truncate(f + 1);
        n.mux_word(carry_out, &hi, &lo)
    };
    let e_fin = {
        let inc = n.inc(&e_res);
        n.mux_word(carry_out, &inc, &e_res)
    };

    let mag_zero = n.is_zero(&mag);
    let exact_zero = n.and(mag_zero, !sticky_pre);
    let tiny = n.and(!norm.msb(), !mag_zero);

    let emax_c = n.word_const(wexp, (1u128 << eb) - 2);
    let overflow = {
        let gt = n.slt(&emax_c, &e_fin);
        n.and(gt, sig_fin.bit(f))
    };

    let sign_fin = n.mux(exact_zero, rm_oh.bit(3), dp_sign);
    let packed = {
        let biased = {
            let t = e_fin.truncate(eb);
            let z = n.word_const(eb, 0);
            n.mux_word(sig_fin.bit(f), &t, &z)
        };
        let mut bits = sig_fin.truncate(f).bits().to_vec();
        bits.extend_from_slice(biased.bits());
        bits.push(sign_fin);
        Word::from_bits(bits)
    };
    let to_inf = {
        let rtp_inf = n.and(rm_oh.bit(2), !sign_fin);
        let rtn_inf = n.and(rm_oh.bit(3), sign_fin);
        let t = n.or(rm_oh.bit(0), rtp_inf);
        n.or(t, rtn_inf)
    };
    let ovf_word = {
        let inf = n.word_const(w_total, cfg.format.inf(false));
        let max = n.word_const(w_total, cfg.format.max_finite(false));
        let v = n.mux_word(to_inf, &inf, &max);
        let mut bits = v.bits().to_vec();
        bits[w_total - 1] = sign_fin;
        Word::from_bits(bits)
    };
    let dp_result = n.mux_word(overflow, &ovf_word, &packed);

    // ---------------- special cases ----------------------------------------
    let any_nan = {
        let t = n.or(oa.nan, ob.nan);
        n.or(t, oc.nan)
    };
    let any_snan = {
        let t = n.or(oa.snan, ob.snan);
        n.or(t, oc.snan)
    };
    let p_inf = n.or(oa.inf, ob.inf);
    let p_zero = n.or(oa.zero, ob.zero);
    let inf_zero = {
        let t1 = n.and(oa.inf, ob.zero);
        let t2 = n.and(ob.inf, oa.zero);
        n.or(t1, t2)
    };
    let sign_clash = n.xor(sp_issue, sc_issue);
    let inf_inf = {
        let t = n.and(p_inf, oc.inf);
        n.and(t, sign_clash)
    };
    let nan_out = {
        let t = n.or(any_nan, inf_zero);
        n.or(t, inf_inf)
    };
    let inf_from_prod = n.and(p_inf, !nan_out);
    let inf_from_add = {
        let t = n.and(oc.inf, !p_inf);
        n.and(t, !nan_out)
    };
    let bypass_c = {
        let t = n.and(p_zero, !nan_out);
        let t = n.and(t, !inf_from_prod);
        n.and(t, !inf_from_add)
    };
    let both_zero = n.and(bypass_c, oc.zero);
    let zz_sign = {
        let same = n.xnor(sp_issue, sc_issue);
        let diff = n.mux(is_mul, sp_issue, rm_oh.bit(3));
        n.mux(same, sp_issue, diff)
    };
    let special = {
        let t = n.or(nan_out, inf_from_prod);
        let t = n.or(t, inf_from_add);
        n.or(t, bypass_c)
    };
    let invalid = {
        let hard = n.or(inf_zero, inf_inf);
        let hard = n.and(hard, !any_nan);
        n.or(hard, any_snan)
    };
    let special_word = {
        let qnan = n.word_const(w_total, cfg.format.quiet_nan());
        let inf = n.word_const(w_total, cfg.format.inf(false));
        let c_signed = {
            let mut bits = c_raw.bits().to_vec();
            bits[w_total - 1] = sc_issue;
            Word::from_bits(bits)
        };
        let zero_signed = {
            let mut bits = vec![Signal::FALSE; w_total];
            bits[w_total - 1] = zz_sign;
            Word::from_bits(bits)
        };
        let inf_signed = {
            let mut bits = inf.bits().to_vec();
            bits[w_total - 1] = sp_issue;
            Word::from_bits(bits)
        };
        let r = n.mux_word(both_zero, &zero_signed, &c_signed);
        let r = n.mux_word(inf_from_prod, &inf_signed, &r);
        n.mux_word(nan_out, &qnan, &r)
    };
    // The special path is resolved at issue; delay it to match the datapath.
    let mut special_word = special_word;
    let mut spec_ctl = Word::from_bits(vec![special, invalid, nan_out, neg_result]);
    stage(
        n,
        pipeline,
        Signal::TRUE,
        &mut [&mut special_word, &mut spec_ctl],
    );
    stage(
        n,
        pipeline,
        Signal::TRUE,
        &mut [&mut special_word, &mut spec_ctl],
    );
    let special = spec_ctl.bit(0);
    let invalid = spec_ctl.bit(1);
    let spec_nan = spec_ctl.bit(2);
    let neg_result = spec_ctl.bit(3);

    // FNMA/FNMS negate every non-NaN result. `nan_out` is resolved at issue
    // time; route it alongside the other special controls.
    let result = {
        let r = n.mux_word(special, &special_word, &dp_result);
        let flip = n.and(neg_result, !spec_nan);
        let mut bits = r.bits().to_vec();
        let top = bits[w_total - 1];
        bits[w_total - 1] = n.xor(top, flip);
        Word::from_bits(bits)
    };
    let fl_inexact = {
        let t = n.or(inexact_pre, overflow);
        n.and(t, !special)
    };
    let fl_overflow = n.and(overflow, !special);
    let fl_underflow = {
        let t = n.and(tiny, inexact_pre);
        n.and(t, !special)
    };
    let fl_invalid = n.and(invalid, special);
    let flags = Word::from_bits(vec![fl_invalid, fl_overflow, fl_underflow, fl_inexact]);

    // ---------------- pipeline stage 3 (after round) ----------------------
    let mut result = result;
    let mut flags = flags;
    stage(n, pipeline, Signal::TRUE, &mut [&mut result, &mut flags]);

    for (i, &b) in result.bits().iter().enumerate() {
        n.output(format!("impl.result[{i}]"), b);
    }
    for (i, &b) in flags.bits().iter().enumerate() {
        n.output(format!("impl.flags[{i}]"), b);
    }
    n.probe("impl.mult_clock_enable", mult_clock_enable);
    n.probe("impl.correction", correction);

    ImplFpu {
        outputs: FpuOutputs { result, flags },
        s: s_vec,
        t: t_vec,
        ma,
        mb,
        sha_anticipated: ant_limited,
        correction,
        mult_clock_enable,
    }
}
