//! Shared configuration for the FPU netlists: instruction set, denormal
//! behaviour, and derived datapath widths.

use fmaverify_netlist::{Netlist, Word};
use fmaverify_softfloat::{add_with, fma_with, mul_with, negate, FpFormat, FpResult, RoundingMode};

/// The instructions the FPU executes: the FMA instruction and its
/// derivatives as defined in the PowerPC architecture (`fmadd`, `fmsub`,
/// `fadd`, `fmul`, `fnmadd`, `fnmsub`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpuOp {
    /// Fused multiply-add: `a*b + c`.
    Fma,
    /// Fused multiply-subtract: `a*b - c`.
    Fms,
    /// Addition `a + c`, executed as `a*1 + c`.
    Add,
    /// Multiplication `a * b`, executed as `a*b + 0`.
    Mul,
    /// Negative fused multiply-add: `-(a*b + c)` (NaN results are not
    /// negated, per PowerPC).
    Fnma,
    /// Negative fused multiply-subtract: `-(a*b - c)`.
    Fnms,
}

impl FpuOp {
    /// All supported instructions.
    pub const ALL: [FpuOp; 6] = [
        FpuOp::Fma,
        FpuOp::Fms,
        FpuOp::Add,
        FpuOp::Mul,
        FpuOp::Fnma,
        FpuOp::Fnms,
    ];

    /// 3-bit opcode encoding used by the netlists.
    pub fn encode(self) -> u32 {
        match self {
            FpuOp::Fma => 0,
            FpuOp::Fms => 1,
            FpuOp::Add => 2,
            FpuOp::Mul => 3,
            FpuOp::Fnma => 4,
            FpuOp::Fnms => 5,
        }
    }

    /// Decodes the 3-bit opcode.
    ///
    /// # Panics
    /// Panics if `code > 5`.
    pub fn decode(code: u32) -> FpuOp {
        match code {
            0 => FpuOp::Fma,
            1 => FpuOp::Fms,
            2 => FpuOp::Add,
            3 => FpuOp::Mul,
            4 => FpuOp::Fnma,
            5 => FpuOp::Fnms,
            _ => panic!("invalid opcode {code}"),
        }
    }

    /// True for the instructions that negate the addend (`a*b - c`).
    pub fn subtracts_addend(self) -> bool {
        matches!(self, FpuOp::Fms | FpuOp::Fnms)
    }

    /// True for the instructions that negate the final (non-NaN) result.
    pub fn negates_result(self) -> bool {
        matches!(self, FpuOp::Fnma | FpuOp::Fnms)
    }

    /// The architected result of this instruction on the softfloat oracle —
    /// the golden reference all netlists are validated against.
    pub fn apply(self, cfg: &FpuConfig, a: u128, b: u128, c: u128, rm: RoundingMode) -> FpResult {
        let daz = cfg.denormals == DenormalMode::FlushToZero;
        let f = cfg.format;
        let base = match self {
            FpuOp::Fma | FpuOp::Fnma => fma_with(f, a, b, c, rm, daz),
            FpuOp::Fms | FpuOp::Fnms => fma_with(f, a, b, negate(f, c), rm, daz),
            FpuOp::Add => add_with(f, a, c, rm, daz),
            FpuOp::Mul => mul_with(f, a, b, rm, daz),
        };
        if self.negates_result() && !f.is_nan(base.bits) {
            FpResult {
                bits: negate(f, base.bits),
                flags: base.flags,
            }
        } else {
            base
        }
    }
}

/// How the FPU treats denormal operands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DenormalMode {
    /// Denormal operands are mapped to (like-signed) zero; denormal *results*
    /// are still produced. This is the paper's primary verification target
    /// (Sections 2-5).
    FlushToZero,
    /// Denormal operands are honored (fully IEEE-compliant FPUs, Section 6).
    FullIeee,
}

/// Static configuration of an FPU instance.
#[derive(Clone, Copy, Debug)]
pub struct FpuConfig {
    /// The floating-point format.
    pub format: FpFormat,
    /// Denormal-operand behaviour.
    pub denormals: DenormalMode,
}

impl FpuConfig {
    /// A double-precision flush-to-zero configuration (the paper's primary
    /// target FPU).
    pub fn double_ftz() -> FpuConfig {
        FpuConfig {
            format: FpFormat::DOUBLE,
            denormals: DenormalMode::FlushToZero,
        }
    }

    /// Significand width including the implicit bit (`f + 1`).
    pub fn sig_bits(&self) -> usize {
        self.format.frac_bits() as usize + 1
    }

    /// Width of the full significand product (`2f + 2`).
    pub fn prod_bits(&self) -> usize {
        2 * self.format.frac_bits() as usize + 2
    }

    /// Width of the intermediate result window (`3f + 5`: carry + addend +
    /// product + guard — 161 bits at double precision).
    pub fn window_bits(&self) -> usize {
        3 * self.format.frac_bits() as usize + 5
    }

    /// Width of exponent-arithmetic words (two's complement with enough
    /// headroom for both the exponent sums and the normalization-shift
    /// amounts, which can reach `window_bits` for lopsided formats).
    pub fn exp_arith_bits(&self) -> usize {
        let from_exp = self.format.exp_bits() as usize + 3;
        let from_window = (u32::BITS - (self.window_bits() as u32).leading_zeros()) as usize + 2;
        from_exp.max(from_window)
    }

    /// Smallest overlap δ (−55 at double precision): below this the addend
    /// dominates and the product collapses to a sticky bit.
    ///
    /// Note: the paper states the far-out boundary as δ ≤ −55 (= −(f+3)),
    /// i.e. an overlap range starting at −54. Exhaustive testing against the
    /// softfloat oracle shows that at δ = −(f+3), an addend significand of
    /// exactly 1.0 under effective subtraction cancels one leading bit, and
    /// a product significand in [2,4) then lands on the post-normalization
    /// guard position — so the product is *not* yet sticky-only there. We
    /// therefore treat δ = −(f+3) as an overlap case (one extra δ-case per
    /// instruction; 161 instead of 160 at double precision). See DESIGN.md
    /// §"Reproduction findings".
    pub fn delta_min_overlap(&self) -> i64 {
        -(self.format.frac_bits() as i64 + 3)
    }

    /// Largest overlap δ (105 at double precision): above this the product
    /// dominates and the addend collapses to a sticky bit.
    pub fn delta_max_overlap(&self) -> i64 {
        2 * self.format.frac_bits() as i64 + 1
    }

    /// Number of distinct overlap δ values (161 at double precision; the
    /// paper counts 160 — see [`FpuConfig::delta_min_overlap`]).
    pub fn overlap_delta_count(&self) -> usize {
        (self.delta_max_overlap() - self.delta_min_overlap() + 1) as usize
    }

    /// The cancellation δ values (δ ∈ {−2,−1,0,1}), where effective
    /// subtraction can cancel leading bits and the normalization shift
    /// becomes data-dependent.
    pub fn cancellation_deltas(&self) -> [i64; 4] {
        [-2, -1, 0, 1]
    }

    /// Number of normalization-shift sub-cases per cancellation δ
    /// (106 shift amounts + 1 "rest" case = 107 at double precision).
    pub fn sha_case_count(&self) -> usize {
        self.prod_bits() + 1
    }
}

/// The primary-input bundle shared by every FPU built into one netlist: the
/// three operands, the opcode, and the rounding mode. Creating the inputs
/// once and passing them to both the reference and the implementation FPU
/// realizes the paper's driver, which "dispatches them into both FPUs".
#[derive(Clone, Debug)]
pub struct FpuInputs {
    /// Operand A (raw format bits).
    pub a: Word,
    /// Operand B.
    pub b: Word,
    /// Operand C (the addend).
    pub c: Word,
    /// 3-bit opcode (see [`FpuOp::encode`]).
    pub op: Word,
    /// 2-bit rounding mode (see
    /// [`fmaverify_softfloat::RoundingMode::encode`]).
    pub rm: Word,
}

impl FpuInputs {
    /// Creates the shared operand/opcode/rounding-mode inputs in `netlist`.
    pub fn new(netlist: &mut Netlist, format: FpFormat) -> FpuInputs {
        let w = format.width() as usize;
        FpuInputs {
            a: netlist.word_input("a", w),
            b: netlist.word_input("b", w),
            c: netlist.word_input("c", w),
            op: netlist.word_input("op", 3),
            rm: netlist.word_input("rm", 2),
        }
    }
}

/// The output bundle of an FPU: the result datum and the IEEE flags.
#[derive(Clone, Debug)]
pub struct FpuOutputs {
    /// Result (raw format bits).
    pub result: Word,
    /// Flags: bit 0 invalid, bit 1 overflow, bit 2 underflow, bit 3 inexact
    /// (matching [`fmaverify_softfloat::Flags::encode`]).
    pub flags: Word,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for op in FpuOp::ALL {
            assert_eq!(FpuOp::decode(op.encode()), op);
        }
    }

    #[test]
    fn double_precision_paper_constants() {
        let cfg = FpuConfig::double_ftz();
        assert_eq!(cfg.sig_bits(), 53);
        assert_eq!(cfg.prod_bits(), 106);
        assert_eq!(cfg.window_bits(), 161, "the paper's 161-bit intermediate");
        assert_eq!(cfg.delta_min_overlap(), -55);
        assert_eq!(cfg.delta_max_overlap(), 105);
        assert_eq!(cfg.overlap_delta_count(), 161);
        assert_eq!(cfg.sha_case_count(), 107, "106 shifts + C_sha/rest");
    }

    #[test]
    fn inputs_created_once() {
        let mut n = Netlist::new();
        let ins = FpuInputs::new(&mut n, FpFormat::MICRO);
        assert_eq!(ins.a.width(), 8);
        assert_eq!(ins.op.width(), 3);
        assert_eq!(n.inputs().len(), 3 * 8 + 3 + 2);
    }
}
