//! Targeted test-case generation (the paper's reference \[1\]: FPgen-style
//! constrained-random stimulus).
//!
//! The methodology is "portable to simulation, emulation, semi-formal, and
//! formal verification frameworks"; this module supplies the simulation leg:
//! operand triples targeted at a chosen δ window, cancellation depth,
//! denormal density, and special-value mix, so a simulation regression can
//! steer into the same corners the case-splits carve out formally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fmaverify_softfloat::{FpClass, FpFormat, RoundingMode};

use crate::config::FpuOp;

/// A generated stimulus vector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TestCase {
    /// Operand A bits.
    pub a: u128,
    /// Operand B bits.
    pub b: u128,
    /// Operand C bits.
    pub c: u128,
    /// The instruction.
    pub op: FpuOp,
    /// The rounding mode.
    pub rm: RoundingMode,
}

/// What the generator aims the operands at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Target {
    /// Uniformly random bit patterns.
    Uniform,
    /// A specific exponent difference δ = e_p − e_c (hits one alignment).
    Delta(i64),
    /// Effective subtraction with nearly-equal magnitudes (massive
    /// cancellation, the normalization-shifter stress).
    Cancellation,
    /// At least one denormal operand (the §6 extension's corners).
    DenormalOperands,
    /// Results near the denormal boundary (partial normalization).
    TinyResults,
    /// NaN/infinity/zero special values.
    Specials,
}

impl Target {
    /// All targets, for mixed regressions.
    pub const ALL: [Target; 6] = [
        Target::Uniform,
        Target::Delta(0),
        Target::Cancellation,
        Target::DenormalOperands,
        Target::TinyResults,
        Target::Specials,
    ];
}

/// A deterministic targeted test-case generator.
#[derive(Debug)]
pub struct TestCaseGenerator {
    format: FpFormat,
    rng: StdRng,
}

impl TestCaseGenerator {
    /// Creates a generator for `format` with a fixed seed (regressions are
    /// reproducible).
    pub fn new(format: FpFormat, seed: u64) -> TestCaseGenerator {
        TestCaseGenerator {
            format,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one test case aimed at `target`.
    pub fn generate(&mut self, target: Target) -> TestCase {
        let op = FpuOp::ALL[self.rng.gen_range(0..FpuOp::ALL.len())];
        let rm = RoundingMode::ALL[self.rng.gen_range(0..4)];
        let (a, b, c) = match target {
            Target::Uniform => (self.any(), self.any(), self.any()),
            Target::Delta(delta) => self.with_delta(delta),
            Target::Cancellation => self.cancellation(),
            Target::DenormalOperands => {
                let mut ops = [self.any(), self.any(), self.any()];
                let which = self.rng.gen_range(0..3);
                ops[which] = self.denormal();
                (ops[0], ops[1], ops[2])
            }
            Target::TinyResults => self.tiny_result(),
            Target::Specials => {
                let mut ops = [self.any(), self.any(), self.any()];
                let which = self.rng.gen_range(0..3);
                ops[which] = self.special();
                (ops[0], ops[1], ops[2])
            }
        };
        TestCase { a, b, c, op, rm }
    }

    /// Generates a batch aimed at `target`.
    pub fn batch(&mut self, target: Target, count: usize) -> Vec<TestCase> {
        (0..count).map(|_| self.generate(target)).collect()
    }

    fn any(&mut self) -> u128 {
        self.rng.gen::<u128>() & self.format.mask()
    }

    fn normal(&mut self, exp: u32) -> u128 {
        let f = self.format;
        f.pack(self.rng.gen(), exp, self.rng.gen::<u128>() & f.frac_mask())
    }

    fn denormal(&mut self) -> u128 {
        let f = self.format;
        let frac = (self.rng.gen::<u128>() & f.frac_mask()).max(1);
        f.pack(self.rng.gen(), 0, frac)
    }

    fn special(&mut self) -> u128 {
        let f = self.format;
        match self.rng.gen_range(0..4) {
            0 => f.inf(self.rng.gen()),
            1 => f.zero(self.rng.gen()),
            2 => f.quiet_nan(),
            _ => f.pack(false, f.exp_max_biased(), 1), // signaling NaN
        }
    }

    /// Operands with e_a + e_b − bias − e_c = delta (all normal).
    fn with_delta(&mut self, delta: i64) -> (u128, u128, u128) {
        let f = self.format;
        let emax = (1i64 << f.exp_bits()) - 2;
        for _ in 0..64 {
            let ea = self.rng.gen_range(1..=emax);
            let ec = self.rng.gen_range(1..=emax);
            let eb = delta + ec + f.bias() as i64 - ea;
            if (1..=emax).contains(&eb) {
                return (
                    self.normal(ea as u32),
                    self.normal(eb as u32),
                    self.normal(ec as u32),
                );
            }
        }
        // δ unreachable within the exponent range: fall back to uniform.
        (self.any(), self.any(), self.any())
    }

    /// Product and addend of near-equal magnitude with opposite signs.
    fn cancellation(&mut self) -> (u128, u128, u128) {
        let f = self.format;
        let delta = self.rng.gen_range(-2..2);
        let (a, b, c0) = self.with_delta(delta);
        // Flip c's sign so that the effective operation subtracts, and copy
        // high fraction bits from the product's leading bits to deepen the
        // cancellation.
        let sp = f.sign_of(a) ^ f.sign_of(b);
        let c = (c0 & !(1u128 << (f.width() - 1))) | (u128::from(!sp) << (f.width() - 1));
        (a, b, c)
    }

    /// A multiplication whose product lands near the denormal range.
    fn tiny_result(&mut self) -> (u128, u128, u128) {
        let f = self.format;
        let emax = (1i64 << f.exp_bits()) - 2;
        let bias = f.bias() as i64;
        // e_a + e_b near bias: the product exponent lands near emin.
        let ea = self.rng.gen_range(1..=(bias).max(1));
        let eb = (bias - ea + self.rng.gen_range(-2..3)).clamp(1, emax);
        (
            self.normal(ea as u32),
            self.normal(eb as u32),
            f.zero(self.rng.gen()),
        )
    }

    /// The format this generator targets.
    pub fn format(&self) -> FpFormat {
        self.format
    }
}

/// Classifies how interesting a vector is (used by coverage reporting in
/// regressions): which δ-region and specials it hits.
pub fn classify(format: FpFormat, tc: &TestCase) -> &'static str {
    let cls = |x: u128| format.classify(x);
    if [tc.a, tc.b, tc.c].iter().any(|&x| cls(x) == FpClass::Nan) {
        return "nan";
    }
    if [tc.a, tc.b, tc.c].iter().any(|&x| cls(x) == FpClass::Inf) {
        return "inf";
    }
    if [tc.a, tc.b, tc.c].iter().any(|&x| cls(x) == FpClass::Zero) {
        return "zero";
    }
    if [tc.a, tc.b, tc.c]
        .iter()
        .any(|&x| cls(x) == FpClass::Denormal)
    {
        return "denormal";
    }
    "normal"
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_softfloat::FpFormat;

    #[test]
    fn delta_targeting_hits_the_window() {
        let fmt = FpFormat::HALF;
        let mut gen = TestCaseGenerator::new(fmt, 1);
        for delta in [-5i64, 0, 7] {
            let mut hits = 0;
            for _ in 0..200 {
                let tc = gen.generate(Target::Delta(delta));
                let e = |x: u128| fmt.biased_exp_of(x) as i64;
                if fmt.classify(tc.a) == FpClass::Normal
                    && fmt.classify(tc.b) == FpClass::Normal
                    && fmt.classify(tc.c) == FpClass::Normal
                    && e(tc.a) + e(tc.b) - fmt.bias() as i64 - e(tc.c) == delta
                {
                    hits += 1;
                }
            }
            assert!(hits > 150, "delta {delta}: only {hits}/200 on target");
        }
    }

    #[test]
    fn denormal_targeting() {
        let fmt = FpFormat::HALF;
        let mut gen = TestCaseGenerator::new(fmt, 2);
        let batch = gen.batch(Target::DenormalOperands, 100);
        let with_denormal = batch
            .iter()
            .filter(|tc| classify(fmt, tc) == "denormal")
            .count();
        assert!(with_denormal > 60, "{with_denormal}/100");
    }

    #[test]
    fn specials_targeting() {
        let fmt = FpFormat::MICRO;
        let mut gen = TestCaseGenerator::new(fmt, 3);
        let batch = gen.batch(Target::Specials, 100);
        let specials = batch
            .iter()
            .filter(|tc| matches!(classify(fmt, tc), "nan" | "inf" | "zero"))
            .count();
        assert!(specials > 70, "{specials}/100");
    }

    #[test]
    fn deterministic_for_seed() {
        let fmt = FpFormat::HALF;
        let a: Vec<TestCase> = TestCaseGenerator::new(fmt, 7).batch(Target::Uniform, 20);
        let b: Vec<TestCase> = TestCaseGenerator::new(fmt, 7).batch(Target::Uniform, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn cancellation_produces_effective_subtraction() {
        let fmt = FpFormat::HALF;
        let mut gen = TestCaseGenerator::new(fmt, 4);
        let mut eff_sub = 0;
        for _ in 0..100 {
            let tc = gen.generate(Target::Cancellation);
            let sp = fmt.sign_of(tc.a) ^ fmt.sign_of(tc.b);
            if sp != fmt.sign_of(tc.c) {
                eff_sub += 1;
            }
        }
        assert_eq!(eff_sub, 100);
    }
}
