//! Validation of the gate-level implementation FPU against the softfloat
//! oracle, plus pipeline-mode checks (the combinational and three-stage
//! variants must agree, with the latter taking its latency in cycles).

use fmaverify_fpu::{
    build_impl_fpu, DenormalMode, FpuConfig, FpuInputs, FpuOp, ImplFpu, MultiplierMode,
    PipelineMode,
};
use fmaverify_netlist::{BitSim, Netlist};
use fmaverify_softfloat::{Flags, FpFormat, RoundingMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Harness {
    netlist: Netlist,
    inputs: FpuInputs,
    fpu: ImplFpu,
    cfg: FpuConfig,
}

fn build(format: FpFormat, denormals: DenormalMode) -> Harness {
    let cfg = FpuConfig { format, denormals };
    let mut netlist = Netlist::new();
    let inputs = FpuInputs::new(&mut netlist, format);
    let fpu = build_impl_fpu(
        &mut netlist,
        &cfg,
        &inputs,
        MultiplierMode::Real,
        PipelineMode::Combinational,
    );
    Harness {
        netlist,
        inputs,
        fpu,
        cfg,
    }
}

fn oracle(
    cfg: &FpuConfig,
    op: FpuOp,
    a: u128,
    b: u128,
    c: u128,
    rm: RoundingMode,
) -> (u128, Flags) {
    let r = op.apply(cfg, a, b, c, rm);
    (r.bits, r.flags)
}

fn check_one(
    h: &Harness,
    sim: &mut BitSim,
    op: FpuOp,
    a: u128,
    b: u128,
    c: u128,
    rm: RoundingMode,
) {
    sim.set_word(&h.inputs.a, a);
    sim.set_word(&h.inputs.b, b);
    sim.set_word(&h.inputs.c, c);
    sim.set_word(&h.inputs.op, op.encode() as u128);
    sim.set_word(&h.inputs.rm, rm.encode() as u128);
    sim.eval();
    let got = sim.get_word(&h.fpu.outputs.result);
    let got_flags = sim.get_word(&h.fpu.outputs.flags) as u32;
    let (want, want_flags) = oracle(&h.cfg, op, a, b, c, rm);
    assert_eq!(
        got,
        want,
        "{op:?} a={a:#x} b={b:#x} c={c:#x} rm={rm:?} mode={:?}: got {got:#x} ({}), want {want:#x} ({})",
        h.cfg.denormals,
        h.cfg.format.to_f64(got),
        h.cfg.format.to_f64(want),
    );
    assert_eq!(
        got_flags,
        want_flags.encode(),
        "flags for {op:?} a={a:#x} b={b:#x} c={c:#x} rm={rm:?} mode={:?} (result {want:#x})",
        h.cfg.denormals,
    );
}

#[test]
fn exhaustive_add_mul_tiny_format() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::new(3, 2);
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        for a in 0..1u128 << 6 {
            for x in 0..1u128 << 6 {
                for rm in RoundingMode::ALL {
                    check_one(&h, &mut sim, FpuOp::Add, a, 0, x, rm);
                    check_one(&h, &mut sim, FpuOp::Mul, a, x, 0, rm);
                }
            }
        }
    }
}

#[test]
fn exhaustive_fma_tiny_format_rotating_modes() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::new(3, 2);
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        let mut k = 0usize;
        for a in 0..1u128 << 6 {
            for b in 0..1u128 << 6 {
                for c in 0..1u128 << 6 {
                    let rm = RoundingMode::ALL[k % 4];
                    let op = [FpuOp::Fma, FpuOp::Fms, FpuOp::Fnma, FpuOp::Fnms][(k / 4) % 4];
                    check_one(&h, &mut sim, op, a, b, c, rm);
                    k += 1;
                }
            }
        }
    }
}

#[test]
fn random_micro_and_half() {
    let mut rng = StdRng::seed_from_u64(0x1337);
    for fmt in [FpFormat::MICRO, FpFormat::HALF] {
        for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
            let h = build(fmt, mode);
            let mut sim = BitSim::new(&h.netlist);
            let mask = fmt.mask();
            for _ in 0..3000 {
                let a = rng.gen::<u128>() & mask;
                let b = rng.gen::<u128>() & mask;
                let c = rng.gen::<u128>() & mask;
                let rm = RoundingMode::ALL[rng.gen_range(0..4)];
                let op = FpuOp::ALL[rng.gen_range(0..FpuOp::ALL.len())];
                check_one(&h, &mut sim, op, a, b, c, rm);
            }
            // Cancellation-heavy: exponents near each other.
            for _ in 0..2000 {
                let emax = (1u32 << fmt.exp_bits()) - 2;
                let ea = rng.gen_range(1..=emax);
                let eb = rng.gen_range(1..=emax);
                let spread: i64 = rng.gen_range(-4..4);
                let ec = (ea as i64 + eb as i64 - fmt.bias() as i64 + spread).clamp(1, emax as i64)
                    as u32;
                let a = fmt.pack(rng.gen(), ea, rng.gen::<u128>() & fmt.frac_mask());
                let b = fmt.pack(rng.gen(), eb, rng.gen::<u128>() & fmt.frac_mask());
                let c = fmt.pack(rng.gen(), ec, rng.gen::<u128>() & fmt.frac_mask());
                let rm = RoundingMode::ALL[rng.gen_range(0..4)];
                check_one(&h, &mut sim, FpuOp::Fma, a, b, c, rm);
                check_one(&h, &mut sim, FpuOp::Fms, a, b, c, rm);
            }
        }
    }
}

#[test]
fn random_double() {
    let fmt = FpFormat::DOUBLE;
    let mut rng = StdRng::seed_from_u64(0xaaaa);
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        for _ in 0..200 {
            let a = rng.gen::<u64>() as u128;
            let b = rng.gen::<u64>() as u128;
            let c = rng.gen::<u64>() as u128;
            let rm = RoundingMode::ALL[rng.gen_range(0..4)];
            let op = FpuOp::ALL[rng.gen_range(0..FpuOp::ALL.len())];
            check_one(&h, &mut sim, op, a, b, c, rm);
        }
        for _ in 0..200 {
            let ea: u32 = rng.gen_range(1..2046);
            let eb: u32 = rng.gen_range(1..2046);
            let spread: i64 = rng.gen_range(-60..60);
            let ec = (ea as i64 + eb as i64 - fmt.bias() as i64 + spread).clamp(1, 2046) as u32;
            let a = fmt.pack(rng.gen(), ea, rng.gen::<u128>() & fmt.frac_mask());
            let b = fmt.pack(rng.gen(), eb, rng.gen::<u128>() & fmt.frac_mask());
            let c = fmt.pack(rng.gen(), ec, rng.gen::<u128>() & fmt.frac_mask());
            let rm = RoundingMode::ALL[rng.gen_range(0..4)];
            check_one(&h, &mut sim, FpuOp::Fma, a, b, c, rm);
        }
    }
}

#[test]
fn specials_cube() {
    let fmt = FpFormat::new(3, 2);
    let mut vals = Vec::new();
    for sign in [false, true] {
        vals.extend([
            fmt.zero(sign),
            fmt.min_denormal(sign),
            fmt.pack(sign, 0, fmt.frac_mask()),
            fmt.min_normal(sign),
            fmt.one(sign),
            fmt.max_finite(sign),
            fmt.inf(sign),
        ]);
    }
    vals.push(fmt.quiet_nan());
    vals.push(fmt.pack(false, fmt.exp_max_biased(), 1)); // sNaN
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    for rm in RoundingMode::ALL {
                        check_one(&h, &mut sim, FpuOp::Fma, a, b, c, rm);
                        check_one(&h, &mut sim, FpuOp::Fms, a, b, c, rm);
                    }
                }
            }
        }
    }
}

#[test]
fn pipeline_matches_combinational() {
    let fmt = FpFormat::MICRO;
    let cfg = FpuConfig {
        format: fmt,
        denormals: DenormalMode::FlushToZero,
    };
    let mut netlist = Netlist::new();
    let inputs = FpuInputs::new(&mut netlist, fmt);
    let fpu = build_impl_fpu(
        &mut netlist,
        &cfg,
        &inputs,
        MultiplierMode::Real,
        PipelineMode::ThreeStage,
    );
    netlist.assert_closed();
    assert!(
        netlist.num_latches() > 0,
        "pipeline mode must create registers"
    );
    let mut sim = BitSim::new(&netlist);
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..800 {
        let a = rng.gen::<u128>() & fmt.mask();
        let b = rng.gen::<u128>() & fmt.mask();
        let c = rng.gen::<u128>() & fmt.mask();
        let rm = RoundingMode::ALL[rng.gen_range(0..4)];
        let op = FpuOp::ALL[rng.gen_range(0..FpuOp::ALL.len())];
        sim.reset();
        sim.set_word(&inputs.a, a);
        sim.set_word(&inputs.b, b);
        sim.set_word(&inputs.c, c);
        sim.set_word(&inputs.op, op.encode() as u128);
        sim.set_word(&inputs.rm, rm.encode() as u128);
        for _ in 0..PipelineMode::ThreeStage.latency() {
            sim.step();
        }
        let got = sim.get_word(&fpu.outputs.result);
        let got_flags = sim.get_word(&fpu.outputs.flags) as u32;
        let want = op.apply(&cfg, a, b, c, rm);
        assert_eq!(got, want.bits, "{op:?} {a:#x} {b:#x} {c:#x} {rm:?}");
        assert_eq!(got_flags, want.flags.encode());
    }
}

#[test]
fn lopsided_formats() {
    // Formats whose normalization-shift range exceeds the exponent range
    // stress the width of the exponent-arithmetic words.
    let mut rng = StdRng::seed_from_u64(0x1095);
    for fmt in [
        FpFormat::new(3, 8),
        FpFormat::new(2, 10),
        FpFormat::new(7, 2),
    ] {
        for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
            let h = build(fmt, mode);
            let mut sim = BitSim::new(&h.netlist);
            for k in 0..3000usize {
                let a = rng.gen::<u128>() & fmt.mask();
                let b = rng.gen::<u128>() & fmt.mask();
                let c = rng.gen::<u128>() & fmt.mask();
                let op = FpuOp::ALL[k % FpuOp::ALL.len()];
                let rm = RoundingMode::ALL[k % 4];
                check_one(&h, &mut sim, op, a, b, c, rm);
            }
        }
    }
}
