//! Validation of the reference FPU netlist against the softfloat oracle:
//! exhaustive two-operand sweeps at a tiny format, special-value cubes,
//! random sampling, and δ-boundary-targeted vectors.

use fmaverify_fpu::{build_ref_fpu, DenormalMode, FpuConfig, FpuInputs, FpuOp, ProductSource};
use fmaverify_netlist::{BitSim, Netlist};
use fmaverify_softfloat::{Flags, FpFormat, RoundingMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Harness {
    netlist: Netlist,
    inputs: FpuInputs,
    fpu: fmaverify_fpu::RefFpu,
    cfg: FpuConfig,
}

fn build(format: FpFormat, denormals: DenormalMode) -> Harness {
    let cfg = FpuConfig { format, denormals };
    let mut netlist = Netlist::new();
    let inputs = FpuInputs::new(&mut netlist, format);
    let fpu = build_ref_fpu(&mut netlist, &cfg, &inputs, ProductSource::Exact);
    Harness {
        netlist,
        inputs,
        fpu,
        cfg,
    }
}

fn oracle(
    cfg: &FpuConfig,
    op: FpuOp,
    a: u128,
    b: u128,
    c: u128,
    rm: RoundingMode,
) -> (u128, Flags) {
    let r = op.apply(cfg, a, b, c, rm);
    (r.bits, r.flags)
}

fn check_one(
    h: &Harness,
    sim: &mut BitSim,
    op: FpuOp,
    a: u128,
    b: u128,
    c: u128,
    rm: RoundingMode,
) {
    sim.set_word(&h.inputs.a, a);
    sim.set_word(&h.inputs.b, b);
    sim.set_word(&h.inputs.c, c);
    sim.set_word(&h.inputs.op, op.encode() as u128);
    sim.set_word(&h.inputs.rm, rm.encode() as u128);
    sim.eval();
    let got = sim.get_word(&h.fpu.outputs.result);
    let got_flags = sim.get_word(&h.fpu.outputs.flags) as u32;
    let (want, want_flags) = oracle(&h.cfg, op, a, b, c, rm);
    assert_eq!(
        got,
        want,
        "{op:?} a={a:#x} b={b:#x} c={c:#x} rm={rm:?} mode={:?}: got {got:#x} ({}), want {want:#x} ({})",
        h.cfg.denormals,
        h.cfg.format.to_f64(got),
        h.cfg.format.to_f64(want),
    );
    assert_eq!(
        got_flags,
        want_flags.encode(),
        "flags for {op:?} a={a:#x} b={b:#x} c={c:#x} rm={rm:?} mode={:?} (result {want:#x})",
        h.cfg.denormals,
    );
}

/// Interesting operand values for a format: specials, boundaries, and a few
/// mid-range patterns.
fn interesting(f: FpFormat) -> Vec<u128> {
    let mut v = Vec::new();
    for sign in [false, true] {
        v.push(f.zero(sign));
        v.push(f.min_denormal(sign));
        v.push(f.pack(sign, 0, f.frac_mask())); // max denormal
        v.push(f.min_normal(sign));
        v.push(f.one(sign));
        v.push(f.pack(sign, f.bias() as u32, 1)); // 1 + ulp
        v.push(f.max_finite(sign));
        v.push(f.inf(sign));
        v.push(f.pack(sign, (f.bias() + 2) as u32, f.frac_mask() >> 1));
    }
    v.push(f.quiet_nan());
    v.push(f.pack(false, f.exp_max_biased(), 1)); // signaling NaN
    v
}

#[test]
fn exhaustive_add_tiny_format() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::new(3, 2);
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        for a in 0..1u128 << 6 {
            for c in 0..1u128 << 6 {
                for rm in RoundingMode::ALL {
                    check_one(&h, &mut sim, FpuOp::Add, a, 0, c, rm);
                }
            }
        }
    }
}

#[test]
fn exhaustive_mul_tiny_format() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::new(3, 2);
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        for a in 0..1u128 << 6 {
            for b in 0..1u128 << 6 {
                for rm in RoundingMode::ALL {
                    check_one(&h, &mut sim, FpuOp::Mul, a, b, 0, rm);
                }
            }
        }
    }
}

#[test]
fn fma_special_cube_tiny_format() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::new(3, 2);
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        let vals = interesting(fmt);
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    for rm in RoundingMode::ALL {
                        check_one(&h, &mut sim, FpuOp::Fma, a, b, c, rm);
                        check_one(&h, &mut sim, FpuOp::Fms, a, b, c, rm);
                    }
                }
            }
        }
    }
}

#[test]
fn exhaustive_fma_tiny_format_rotating_modes() {
    // Full operand cube at the 6-bit format; the rounding mode and FMA/FMS
    // choice rotate deterministically so every triple is exercised.
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::new(3, 2);
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        let mut k = 0usize;
        for a in 0..1u128 << 6 {
            for b in 0..1u128 << 6 {
                for c in 0..1u128 << 6 {
                    let rm = RoundingMode::ALL[k % 4];
                    let op = [FpuOp::Fma, FpuOp::Fms, FpuOp::Fnma, FpuOp::Fnms][(k / 4) % 4];
                    check_one(&h, &mut sim, op, a, b, c, rm);
                    k += 1;
                }
            }
        }
    }
}

#[test]
fn fma_random_micro() {
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let fmt = FpFormat::MICRO;
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        let mask = fmt.mask();
        let mut rng = StdRng::seed_from_u64(0xfa11);
        for _ in 0..6000 {
            let a = rng.gen::<u128>() & mask;
            let b = rng.gen::<u128>() & mask;
            let c = rng.gen::<u128>() & mask;
            let rm = RoundingMode::ALL[rng.gen_range(0..4)];
            let op = FpuOp::ALL[rng.gen_range(0..FpuOp::ALL.len())];
            check_one(&h, &mut sim, op, a, b, c, rm);
        }
    }
}

/// Constructs an FMA triple with a chosen δ = e_p − e_c, exercising every
/// case boundary of Figure 2.
#[test]
fn fma_delta_boundaries_half() {
    let fmt = FpFormat::HALF;
    let f = fmt.frac_bits() as i64;
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        let mut rng = StdRng::seed_from_u64(0xde17a);
        let boundaries = [
            -(f + 4),
            -(f + 3),
            -(f + 2),
            -(f + 1),
            -3,
            -2,
            -1,
            0,
            1,
            2,
            f,
            2 * f,
            2 * f + 1,
            2 * f + 2,
            2 * f + 3,
        ];
        for &delta in &boundaries {
            for _ in 0..300 {
                // Pick exponents with e_a + e_b - e_c = delta (unbiased).
                let ea = rng.gen_range(1..((1 << fmt.exp_bits()) - 1)) as i64;
                let target_sum = delta; // (ea-b)+(eb-b)-(ec-b) = ea+eb-ec-b
                let ec = rng.gen_range(1..((1 << fmt.exp_bits()) - 1)) as i64;
                let eb_field = target_sum + ec + fmt.bias() as i64 - ea;
                if eb_field < 1 || eb_field >= (1 << fmt.exp_bits()) - 1 {
                    continue;
                }
                let a = fmt.pack(rng.gen(), ea as u32, rng.gen::<u128>() & fmt.frac_mask());
                let b = fmt.pack(
                    rng.gen(),
                    eb_field as u32,
                    rng.gen::<u128>() & fmt.frac_mask(),
                );
                let c = fmt.pack(rng.gen(), ec as u32, rng.gen::<u128>() & fmt.frac_mask());
                let rm = RoundingMode::ALL[rng.gen_range(0..4)];
                check_one(&h, &mut sim, FpuOp::Fma, a, b, c, rm);
            }
        }
    }
}

#[test]
fn fma_random_double() {
    let fmt = FpFormat::DOUBLE;
    let h = build(fmt, DenormalMode::FlushToZero);
    let mut sim = BitSim::new(&h.netlist);
    let mut rng = StdRng::seed_from_u64(0xd0b1e);
    for _ in 0..400 {
        let a = rng.gen::<u64>() as u128;
        let b = rng.gen::<u64>() as u128;
        let c = rng.gen::<u64>() as u128;
        let rm = RoundingMode::ALL[rng.gen_range(0..4)];
        let op = FpuOp::ALL[rng.gen_range(0..FpuOp::ALL.len())];
        check_one(&h, &mut sim, op, a, b, c, rm);
    }
    // Near-exponent operands exercise the overlap/cancellation paths more.
    for _ in 0..400 {
        let ea: u32 = rng.gen_range(1..2046);
        let eb: u32 = rng.gen_range(1..2046);
        let spread: i64 = rng.gen_range(-60..60);
        let ec = (ea as i64 + eb as i64 - fmt.bias() as i64 + spread).clamp(1, 2046) as u32;
        let a = fmt.pack(rng.gen(), ea, rng.gen::<u128>() & fmt.frac_mask());
        let b = fmt.pack(rng.gen(), eb, rng.gen::<u128>() & fmt.frac_mask());
        let c = fmt.pack(rng.gen(), ec, rng.gen::<u128>() & fmt.frac_mask());
        let rm = RoundingMode::ALL[rng.gen_range(0..4)];
        check_one(&h, &mut sim, FpuOp::Fma, a, b, c, rm);
        check_one(&h, &mut sim, FpuOp::Fms, a, b, c, rm);
    }
}

#[test]
fn denormal_product_of_normals_mult() {
    // The paper's hidden case: normal * normal = denormal, addend zero.
    let fmt = FpFormat::HALF;
    for mode in [DenormalMode::FlushToZero, DenormalMode::FullIeee] {
        let h = build(fmt, mode);
        let mut sim = BitSim::new(&h.netlist);
        let mut rng = StdRng::seed_from_u64(77);
        for ea in 1..8u32 {
            for eb in 1..8u32 {
                for _ in 0..40 {
                    let a = fmt.pack(rng.gen(), ea, rng.gen::<u128>() & fmt.frac_mask());
                    let b = fmt.pack(rng.gen(), eb, rng.gen::<u128>() & fmt.frac_mask());
                    let rm = RoundingMode::ALL[rng.gen_range(0..4)];
                    check_one(&h, &mut sim, FpuOp::Mul, a, b, 0, rm);
                    // Also as FMA with an explicit zero addend of each sign.
                    check_one(&h, &mut sim, FpuOp::Fma, a, b, fmt.zero(false), rm);
                    check_one(&h, &mut sim, FpuOp::Fma, a, b, fmt.zero(true), rm);
                }
            }
        }
    }
}

#[test]
fn case_probes_consistent() {
    // Exactly one case indicator is active, and δ matches the operands.
    let fmt = FpFormat::MICRO;
    let h = build(fmt, DenormalMode::FlushToZero);
    let mut sim = BitSim::new(&h.netlist);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..2000 {
        let a = rng.gen::<u128>() & fmt.mask();
        let b = rng.gen::<u128>() & fmt.mask();
        let c = rng.gen::<u128>() & fmt.mask();
        sim.set_word(&h.inputs.a, a);
        sim.set_word(&h.inputs.b, b);
        sim.set_word(&h.inputs.c, c);
        sim.set_word(&h.inputs.op, FpuOp::Fma.encode() as u128);
        sim.set_word(&h.inputs.rm, 0);
        sim.eval();
        let fl = sim.get(h.fpu.case_far_left);
        let fr = sim.get(h.fpu.case_far_right);
        let ov = sim.get(h.fpu.case_overlap);
        assert_eq!(
            u32::from(fl) + u32::from(fr) + u32::from(ov),
            1,
            "exactly one case for a={a:#x} b={b:#x} c={c:#x}"
        );
    }
}
