//! Property tests: word-level netlist operators must agree with host integer
//! arithmetic, and the sweep must preserve semantics.

use fmaverify_netlist::{sat_sweep, BitSim, Netlist, Signal, SweepOptions, Word};
use proptest::prelude::*;

fn eval_unary<F>(width: usize, build: F, value: u128) -> u128
where
    F: FnOnce(&mut Netlist, &Word) -> Word,
{
    let mut n = Netlist::new();
    let a = n.word_input("a", width);
    let r = build(&mut n, &a);
    let mut sim = BitSim::new(&n);
    sim.set_word(&a, value);
    sim.eval();
    sim.get_word(&r)
}

fn eval_binary<F>(width: usize, build: F, va: u128, vb: u128) -> u128
where
    F: FnOnce(&mut Netlist, &Word, &Word) -> Word,
{
    let mut n = Netlist::new();
    let a = n.word_input("a", width);
    let b = n.word_input("b", width);
    let r = build(&mut n, &a, &b);
    let mut sim = BitSim::new(&n);
    sim.set_word(&a, va);
    sim.set_word(&b, vb);
    sim.eval();
    sim.get_word(&r)
}

fn eval_binary_flag<F>(width: usize, build: F, va: u128, vb: u128) -> bool
where
    F: FnOnce(&mut Netlist, &Word, &Word) -> Signal,
{
    let mut n = Netlist::new();
    let a = n.word_input("a", width);
    let b = n.word_input("b", width);
    let s = build(&mut n, &a, &b);
    let mut sim = BitSim::new(&n);
    sim.set_word(&a, va);
    sim.set_word(&b, vb);
    sim.eval();
    sim.get(s)
}

const W: usize = 16;
const MASK: u128 = (1 << W) - 1;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn add_matches(a in 0..=MASK, b in 0..=MASK) {
        prop_assert_eq!(eval_binary(W, |n, a, b| n.add(a, b), a, b), (a + b) & MASK);
    }

    #[test]
    fn sub_matches(a in 0..=MASK, b in 0..=MASK) {
        prop_assert_eq!(eval_binary(W, |n, a, b| n.sub(a, b), a, b), a.wrapping_sub(b) & MASK);
    }

    #[test]
    fn mul_matches(a in 0..=MASK, b in 0..=MASK) {
        prop_assert_eq!(eval_binary(W, |n, a, b| n.mul(a, b), a, b), a * b);
    }

    #[test]
    fn neg_matches(a in 0..=MASK) {
        prop_assert_eq!(eval_unary(W, |n, a| n.neg(a), a), a.wrapping_neg() & MASK);
    }

    #[test]
    fn shifts_match(a in 0..=MASK, sh in 0u128..32) {
        let l = eval_binary(W, |n, a, _| {
            let amt = n.word_const(5, sh);
            n.shl_var(a, &amt)
        }, a, 0);
        let r = eval_binary(W, |n, a, _| {
            let amt = n.word_const(5, sh);
            n.lshr_var(a, &amt)
        }, a, 0);
        let expect_l = if sh as usize >= W { 0 } else { (a << sh) & MASK };
        let expect_r = if sh as usize >= W { 0 } else { a >> sh };
        prop_assert_eq!(l, expect_l);
        prop_assert_eq!(r, expect_r);
    }

    #[test]
    fn variable_shift_by_input(a in 0..=MASK, sh in 0u128..32) {
        // Same as above but with the amount as a circuit input, exercising
        // the full barrel muxes.
        let mut n = Netlist::new();
        let wa = n.word_input("a", W);
        let wsh = n.word_input("sh", 5);
        let l = n.shl_var(&wa, &wsh);
        let r = n.lshr_var(&wa, &wsh);
        let mut sim = BitSim::new(&n);
        sim.set_word(&wa, a);
        sim.set_word(&wsh, sh);
        sim.eval();
        let expect_l = if sh as usize >= W { 0 } else { (a << sh) & MASK };
        let expect_r = if sh as usize >= W { 0 } else { a >> sh };
        prop_assert_eq!(sim.get_word(&l), expect_l);
        prop_assert_eq!(sim.get_word(&r), expect_r);
    }

    #[test]
    fn comparisons_match(a in 0..=MASK, b in 0..=MASK) {
        prop_assert_eq!(eval_binary_flag(W, |n, a, b| n.eq_word(a, b), a, b), a == b);
        prop_assert_eq!(eval_binary_flag(W, |n, a, b| n.ult(a, b), a, b), a < b);
        prop_assert_eq!(eval_binary_flag(W, |n, a, b| n.ule(a, b), a, b), a <= b);
        let sa = if a >> (W - 1) & 1 == 1 { a as i128 - (1 << W) } else { a as i128 };
        let sb = if b >> (W - 1) & 1 == 1 { b as i128 - (1 << W) } else { b as i128 };
        prop_assert_eq!(eval_binary_flag(W, |n, a, b| n.slt(a, b), a, b), sa < sb);
        prop_assert_eq!(eval_binary_flag(W, |n, a, b| n.sle(a, b), a, b), sa <= sb);
    }

    #[test]
    fn clz_matches(a in 0..=MASK) {
        let got = eval_unary(W, |n, a| n.count_leading_zeros(a), a);
        let expect = if a == 0 {
            W as u128
        } else {
            (W as u32 - (128 - a.leading_zeros())) as u128
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sweep_preserves_random_mixture(
        a in 0..=MASK,
        b in 0..=MASK,
        pick in 0u8..4,
    ) {
        // Build a netlist with deliberate redundancy; sweep; compare outputs.
        let mut n = Netlist::new();
        let wa = n.word_input("a", 8);
        let wb = n.word_input("b", 8);
        let s1 = n.add(&wa, &wb);
        let nb = n.neg(&wb);
        let s2 = n.sub(&wa, &nb);
        let m = n.mul(&wa, &wb);
        let cmp = n.ult(&wa, &wb);
        let root: Vec<Signal> = match pick {
            0 => s1.bits().to_vec(),
            1 => s2.bits().to_vec(),
            2 => m.bits().to_vec(),
            _ => vec![cmp],
        };
        let result = sat_sweep(&n, &root, SweepOptions { sim_rounds: 4, ..SweepOptions::default() });
        let va = a & 0xff;
        let vb = b & 0xff;
        let mut sim_old = BitSim::new(&n);
        sim_old.set_word(&wa, va);
        sim_old.set_word(&wb, vb);
        sim_old.eval();
        let mut sim_new = BitSim::new(&result.netlist);
        for i in 0..8 {
            let ia = result.netlist.find_input(&format!("a[{i}]")).expect("a bit");
            let ib = result.netlist.find_input(&format!("b[{i}]")).expect("b bit");
            sim_new.set(ia, va >> i & 1 == 1);
            sim_new.set(ib, vb >> i & 1 == 1);
        }
        sim_new.eval();
        for (old_bit, new_bit) in root.iter().zip(&result.roots) {
            prop_assert_eq!(sim_old.get(*old_bit), sim_new.get(*new_bit));
        }
    }
}
