//! Hardening property tests on random netlists: SAT sweeping, Tseitin
//! encoding, unrolling, and AIGER round-trips must all preserve the
//! function of arbitrarily-shaped AIGs (checked exhaustively against
//! simulation for small input counts).

use fmaverify_netlist::{
    parse_aiger, sat_sweep, unroll, write_aiger, BitSim, InputMode, Netlist, SatEncoder, Signal,
    SweepOptions,
};
use fmaverify_sat::{SolveResult, Solver};
use proptest::prelude::*;

/// A recipe for one random gate.
#[derive(Clone, Debug)]
struct GateRecipe {
    kind: u8,
    a: usize,
    b: usize,
    inv_a: bool,
    inv_b: bool,
}

fn arb_netlist(num_inputs: usize, num_gates: usize) -> impl Strategy<Value = Vec<GateRecipe>> {
    prop::collection::vec(
        (
            0u8..4,
            0usize..64,
            0usize..64,
            prop::bool::ANY,
            prop::bool::ANY,
        )
            .prop_map(|(kind, a, b, inv_a, inv_b)| GateRecipe {
                kind,
                a,
                b,
                inv_a,
                inv_b,
            }),
        num_gates,
    )
    .prop_map(move |v| {
        let _ = num_inputs;
        v
    })
}

/// Builds the recipe into a netlist, returning the output signals.
fn build(recipes: &[GateRecipe], num_inputs: usize) -> (Netlist, Vec<Signal>) {
    let mut n = Netlist::new();
    let mut pool: Vec<Signal> = (0..num_inputs).map(|i| n.input(format!("x{i}"))).collect();
    for r in recipes {
        let a = {
            let s = pool[r.a % pool.len()];
            if r.inv_a {
                !s
            } else {
                s
            }
        };
        let b = {
            let s = pool[r.b % pool.len()];
            if r.inv_b {
                !s
            } else {
                s
            }
        };
        let g = match r.kind {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            _ => n.mux(a, b, pool[(r.a + r.b) % pool.len()]),
        };
        pool.push(g);
    }
    let outs: Vec<Signal> = pool.iter().rev().take(4).copied().collect();
    for (i, &o) in outs.iter().enumerate() {
        n.output(format!("y{i}"), o);
    }
    (n, outs)
}

fn truth_tables(n: &Netlist, outs: &[Signal], num_inputs: usize) -> Vec<Vec<bool>> {
    let mut sim = BitSim::new(n);
    let inputs: Vec<Signal> = (0..num_inputs)
        .map(|i| n.find_input(&format!("x{i}")).expect("input"))
        .collect();
    let mut tables = vec![Vec::new(); outs.len()];
    for bits in 0..1u32 << num_inputs {
        for (i, &sig) in inputs.iter().enumerate() {
            sim.set(sig, bits >> i & 1 == 1);
        }
        sim.eval();
        for (t, &o) in tables.iter_mut().zip(outs) {
            t.push(sim.get(o));
        }
    }
    tables
}

const NUM_INPUTS: usize = 7;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sweep_preserves_random_netlists(recipes in arb_netlist(NUM_INPUTS, 60)) {
        let (n, outs) = build(&recipes, NUM_INPUTS);
        let before = truth_tables(&n, &outs, NUM_INPUTS);
        let result = sat_sweep(&n, &outs, SweepOptions { sim_rounds: 3, ..SweepOptions::default() });
        let after = truth_tables(&result.netlist, &result.roots, NUM_INPUTS);
        prop_assert_eq!(before, after);
        prop_assert!(result.ands_after <= result.ands_before);
    }

    #[test]
    fn tseitin_agrees_with_simulation(recipes in arb_netlist(NUM_INPUTS, 40), bits in 0u32..128) {
        let (n, outs) = build(&recipes, NUM_INPUTS);
        let tables = truth_tables(&n, &outs, NUM_INPUTS);
        let mut solver = Solver::new();
        let mut enc = SatEncoder::new();
        let out_lits: Vec<_> = outs.iter().map(|&o| enc.lit(&n, &mut solver, o)).collect();
        let in_lits: Vec<_> = (0..NUM_INPUTS)
            .map(|i| enc.lit(&n, &mut solver, n.find_input(&format!("x{i}")).expect("in")))
            .collect();
        // Fix the inputs via assumptions; each output must be forced to its
        // simulated value.
        let assumptions: Vec<_> = in_lits
            .iter()
            .enumerate()
            .map(|(i, &l)| if bits >> i & 1 == 1 { l } else { !l })
            .collect();
        for (k, &ol) in out_lits.iter().enumerate() {
            let expect = tables[k][(bits & ((1 << NUM_INPUTS) - 1)) as usize];
            let mut assume = assumptions.clone();
            assume.push(if expect { !ol } else { ol });
            prop_assert_eq!(
                solver.solve_with_assumptions(&assume),
                SolveResult::Unsat,
                "output y{} must equal its simulated value", k
            );
        }
    }

    #[test]
    fn aiger_roundtrip_random(recipes in arb_netlist(NUM_INPUTS, 40)) {
        let (n, outs) = build(&recipes, NUM_INPUTS);
        let before = truth_tables(&n, &outs, NUM_INPUTS);
        let mut buf = Vec::new();
        write_aiger(&mut buf, &n).expect("write");
        let back = parse_aiger(&mut buf.as_slice()).expect("parse");
        let outs_back: Vec<Signal> = (0..outs.len())
            .map(|i| back.find_output(&format!("y{i}")).expect("output"))
            .collect();
        let after = truth_tables(&back, &outs_back, NUM_INPUTS);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn unroll_of_registered_netlist_matches_stepping(
        recipes in arb_netlist(NUM_INPUTS, 24),
        pattern in prop::collection::vec(0u32..(1 << NUM_INPUTS), 4),
    ) {
        // Wrap the random logic's outputs into a register loop: state' =
        // f(state, inputs), observing one output per cycle.
        let mut n = Netlist::new();
        let inputs: Vec<Signal> = (0..NUM_INPUTS).map(|i| n.input(format!("x{i}"))).collect();
        let regs: Vec<Signal> = (0..3).map(|_| n.latch(false)).collect();
        let mut pool: Vec<Signal> = inputs.clone();
        pool.extend_from_slice(&regs);
        for r in &recipes {
            let a = { let s = pool[r.a % pool.len()]; if r.inv_a { !s } else { s } };
            let b = { let s = pool[r.b % pool.len()]; if r.inv_b { !s } else { s } };
            let g = match r.kind {
                0 => n.and(a, b),
                1 => n.or(a, b),
                2 => n.xor(a, b),
                _ => n.mux(a, b, pool[(r.a + r.b) % pool.len()]),
            };
            pool.push(g);
        }
        for (k, &q) in regs.iter().enumerate() {
            n.set_latch_next(q, pool[pool.len() - 1 - k]);
        }
        let obs = pool[pool.len() - 4 % pool.len().max(1)];
        n.output("obs", obs);

        // Sequential stepping.
        let mut sim = BitSim::new(&n);
        let mut seq = Vec::new();
        for &bits in &pattern {
            for (i, &sig) in inputs.iter().enumerate() {
                sim.set(sig, bits >> i & 1 == 1);
            }
            sim.eval();
            seq.push(sim.get(obs));
            sim.step();
        }

        // Unrolled evaluation.
        let u = unroll(&n, pattern.len(), InputMode::FreshPerCycle);
        let mut named: Vec<(String, bool)> = Vec::new();
        for (c, &bits) in pattern.iter().enumerate() {
            for i in 0..NUM_INPUTS {
                named.push((format!("x{i}@{c}"), bits >> i & 1 == 1));
            }
        }
        let refs: Vec<(&str, bool)> = named.iter().map(|(s, b)| (s.as_str(), *b)).collect();
        let outs_map = u.netlist.eval_comb(&refs);
        for (c, &expect) in seq.iter().enumerate() {
            prop_assert_eq!(outs_map[&format!("obs@{c}")], expect, "cycle {}", c);
        }
    }
}
