//! Value-change-dump (VCD) waveform recording.
//!
//! Counterexamples from the formal engines are replayed on [`BitSim`]; this
//! module records chosen signals across cycles and writes a standard VCD
//! file so the trace can be inspected in any waveform viewer — the kind of
//! debug loop a verification team runs on every miter failure.

use std::io::{self, Write};

use crate::aig::{Netlist, Signal};
use crate::sim::BitSim;
use crate::word::Word;

enum Watched {
    Bit(String, Signal),
    Word(String, Word),
}

/// Records samples of watched signals from a [`BitSim`] and writes them as
/// VCD.
///
/// # Examples
///
/// ```
/// use fmaverify_netlist::{BitSim, Netlist, WaveRecorder};
///
/// let mut n = Netlist::new();
/// let d = n.input("d");
/// let q = n.latch(false);
/// n.set_latch_next(q, d);
/// let mut rec = WaveRecorder::new();
/// rec.watch("d", d);
/// rec.watch("q", q);
/// let mut sim = BitSim::new(&n);
/// for bit in [true, false, true] {
///     sim.set(d, bit);
///     sim.eval();
///     rec.sample(&sim);
///     sim.step();
/// }
/// let mut out = Vec::new();
/// rec.write_vcd(&mut out, "ns").expect("write to vec");
/// assert!(String::from_utf8(out).expect("utf8").contains("$var wire 1"));
/// ```
#[derive(Default)]
pub struct WaveRecorder {
    watched: Vec<Watched>,
    /// One sample row per call to [`WaveRecorder::sample`]; each row stores
    /// the flattened bit values of every watched signal.
    samples: Vec<Vec<bool>>,
}

impl std::fmt::Debug for WaveRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaveRecorder")
            .field("watched", &self.watched.len())
            .field("samples", &self.samples.len())
            .finish()
    }
}

impl WaveRecorder {
    /// Creates an empty recorder.
    pub fn new() -> WaveRecorder {
        WaveRecorder::default()
    }

    /// Watches a single-bit signal under `name`.
    ///
    /// # Panics
    /// Panics if samples were already taken (the layout would shift).
    pub fn watch(&mut self, name: impl Into<String>, sig: Signal) {
        assert!(self.samples.is_empty(), "watch before sampling");
        self.watched.push(Watched::Bit(name.into(), sig));
    }

    /// Watches a multi-bit word under `name`.
    ///
    /// # Panics
    /// Panics if samples were already taken.
    pub fn watch_word(&mut self, name: impl Into<String>, word: &Word) {
        assert!(self.samples.is_empty(), "watch before sampling");
        self.watched.push(Watched::Word(name.into(), word.clone()));
    }

    /// Takes one sample (typically once per cycle, after `eval`).
    pub fn sample(&mut self, sim: &BitSim) {
        let mut row = Vec::new();
        for w in &self.watched {
            match w {
                Watched::Bit(_, sig) => row.push(sim.get(*sig)),
                Watched::Word(_, word) => {
                    for &b in word.bits() {
                        row.push(sim.get(b));
                    }
                }
            }
        }
        self.samples.push(row);
    }

    /// Number of samples taken so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Writes the recording as a VCD file with the given timescale
    /// (e.g. `"ns"`). Only value *changes* are emitted, per the format.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_vcd<W: Write>(&self, writer: &mut W, timescale: &str) -> io::Result<()> {
        writeln!(writer, "$timescale 1{timescale} $end")?;
        writeln!(writer, "$scope module fmaverify $end")?;
        // Identifier codes: printable ASCII starting at '!'.
        let ident = |k: usize| -> String {
            let mut k = k;
            let mut s = String::new();
            loop {
                s.push((b'!' + (k % 94) as u8) as char);
                k /= 94;
                if k == 0 {
                    break;
                }
            }
            s
        };
        let mut idents = Vec::new();
        for (k, w) in self.watched.iter().enumerate() {
            let id = ident(k);
            match w {
                Watched::Bit(name, _) => {
                    writeln!(writer, "$var wire 1 {id} {name} $end")?;
                }
                Watched::Word(name, word) => {
                    writeln!(
                        writer,
                        "$var wire {} {id} {name} [{}:0] $end",
                        word.width(),
                        word.width() - 1
                    )?;
                }
            }
            idents.push(id);
        }
        writeln!(writer, "$upscope $end")?;
        writeln!(writer, "$enddefinitions $end")?;

        let mut prev: Option<Vec<bool>> = None;
        for (t, row) in self.samples.iter().enumerate() {
            let mut emitted_time = false;
            let mut offset = 0;
            for (k, w) in self.watched.iter().enumerate() {
                let width = match w {
                    Watched::Bit(..) => 1,
                    Watched::Word(_, word) => word.width(),
                };
                let slice = &row[offset..offset + width];
                let changed = prev
                    .as_ref()
                    .map(|p| p[offset..offset + width] != *slice)
                    .unwrap_or(true);
                if changed {
                    if !emitted_time {
                        writeln!(writer, "#{t}")?;
                        emitted_time = true;
                    }
                    match w {
                        Watched::Bit(..) => {
                            writeln!(writer, "{}{}", u8::from(slice[0]), idents[k])?;
                        }
                        Watched::Word(..) => {
                            let bits: String = slice
                                .iter()
                                .rev()
                                .map(|&b| if b { '1' } else { '0' })
                                .collect();
                            writeln!(writer, "b{bits} {}", idents[k])?;
                        }
                    }
                }
                offset += width;
            }
            prev = Some(row.clone());
        }
        Ok(())
    }
}

/// Replays a named input assignment on a netlist for `cycles` cycles
/// (inputs held) while recording every output and probe; returns the VCD
/// text. This is the one-call debug helper for counterexamples.
///
/// # Panics
/// Panics if an assignment key is not a primary input of the netlist.
pub fn dump_counterexample(
    netlist: &Netlist,
    assignment: &[(String, bool)],
    cycles: usize,
) -> String {
    let mut rec = WaveRecorder::new();
    for (name, sig) in netlist.outputs() {
        rec.watch(name.clone(), *sig);
    }
    for name in netlist.probe_names() {
        let sig = netlist.find_probe(name).expect("probe");
        rec.watch(name, sig);
    }
    let mut sim = BitSim::new(netlist);
    for (name, value) in assignment {
        let sig = netlist
            .find_input(name)
            .unwrap_or_else(|| panic!("unknown input '{name}'"));
        sim.set(sig, *value);
    }
    for _ in 0..cycles.max(1) {
        sim.eval();
        rec.sample(&sim);
        sim.step();
    }
    let mut out = Vec::new();
    rec.write_vcd(&mut out, "ns").expect("write to vec");
    String::from_utf8(out).expect("vcd is ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_waveform() {
        // 2-bit counter; the word variable must step 0,1,2,3.
        let mut n = Netlist::new();
        let q0 = n.latch(false);
        let q1 = n.latch(false);
        let t = n.xor(q1, q0);
        n.set_latch_next(q0, !q0);
        n.set_latch_next(q1, t);
        let word = Word::from_bits(vec![q0, q1]);
        let mut rec = WaveRecorder::new();
        rec.watch_word("count", &word);
        rec.watch("lsb", q0);
        let mut sim = BitSim::new(&n);
        for _ in 0..4 {
            sim.eval();
            rec.sample(&sim);
            sim.step();
        }
        assert_eq!(rec.len(), 4);
        let mut out = Vec::new();
        rec.write_vcd(&mut out, "ns").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("$var wire 2"));
        assert!(text.contains("b00 "));
        assert!(text.contains("b01 "));
        assert!(text.contains("b10 "));
        assert!(text.contains("b11 "));
        // Unchanged signals are not re-emitted: 'lsb' toggles every cycle so
        // it appears at every timestamp; 'count' too. Time markers present.
        assert!(text.contains("#0"));
        assert!(text.contains("#3"));
    }

    #[test]
    fn change_only_encoding() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let mut rec = WaveRecorder::new();
        rec.watch("a", a);
        let mut sim = BitSim::new(&n);
        sim.set(a, true);
        sim.eval();
        rec.sample(&sim);
        rec.sample(&sim); // no change
        rec.sample(&sim); // no change
        let mut out = Vec::new();
        rec.write_vcd(&mut out, "ps").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("1!").count(), 1, "only the first sample emits");
        assert!(!text.contains("#1\n"), "quiet cycles emit no time marker");
    }

    #[test]
    fn dump_counterexample_includes_outputs_and_probes() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and(a, b);
        n.output("g", g);
        n.probe("inner", g);
        let text = dump_counterexample(&n, &[("a".to_string(), true), ("b".to_string(), true)], 1);
        assert!(text.contains("$var wire 1 ! g"));
        assert!(text.contains("inner"));
        assert!(text.contains("1!"));
    }
}
