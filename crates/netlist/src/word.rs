//! Word-level construction on top of the AIG: the "HDL operators" layer.
//!
//! The paper's reference FPU is deliberately written with high-level VHDL
//! operators such as `+` and `sll` rather than gate-level blocks. This module
//! provides those operators: multi-bit words, adders, subtractors, barrel
//! shifters, comparators, leading-zero counters, and multiplexers, all
//! synthesized down to 2-input AND gates and inverters at construction time.

use crate::aig::{Netlist, Signal};

/// A multi-bit signal bundle, least-significant bit first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Word {
    bits: Vec<Signal>,
}

impl Word {
    /// Wraps a bit vector (LSB first) as a word.
    pub fn from_bits(bits: Vec<Signal>) -> Word {
        Word { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit at position `i` (0 = LSB).
    ///
    /// # Panics
    /// Panics if `i >= width()`.
    pub fn bit(&self, i: usize) -> Signal {
        self.bits[i]
    }

    /// The most significant bit.
    ///
    /// # Panics
    /// Panics if the word is empty.
    pub fn msb(&self) -> Signal {
        *self.bits.last().expect("empty word")
    }

    /// All bits, LSB first.
    pub fn bits(&self) -> &[Signal] {
        &self.bits
    }

    /// The sub-word `[lo, hi)` (bit positions, LSB-based).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, lo: usize, hi: usize) -> Word {
        assert!(lo <= hi && hi <= self.bits.len(), "bad slice {lo}..{hi}");
        Word {
            bits: self.bits[lo..hi].to_vec(),
        }
    }

    /// Concatenates `self` (low part) with `high`.
    pub fn concat(&self, high: &Word) -> Word {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Word { bits }
    }

    /// Keeps the low `w` bits.
    ///
    /// # Panics
    /// Panics if `w > width()`.
    pub fn truncate(&self, w: usize) -> Word {
        self.slice(0, w)
    }

    /// Reverses bit order (MSB becomes LSB).
    pub fn reversed(&self) -> Word {
        let mut bits = self.bits.clone();
        bits.reverse();
        Word { bits }
    }
}

impl Netlist {
    /// Creates a `width`-bit input word; bits are named `name[i]`.
    pub fn word_input(&mut self, name: &str, width: usize) -> Word {
        Word {
            bits: (0..width)
                .map(|i| self.input(format!("{name}[{i}]")))
                .collect(),
        }
    }

    /// A constant word from the low `width` bits of `value`.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn word_const(&mut self, width: usize, value: u128) -> Word {
        assert!(
            width >= 128 || value >> width == 0,
            "constant {value} does not fit in {width} bits"
        );
        Word {
            bits: (0..width)
                .map(|i| {
                    if i < 128 && value >> i & 1 == 1 {
                        Signal::TRUE
                    } else {
                        Signal::FALSE
                    }
                })
                .collect(),
        }
    }

    /// Zero-extends (or keeps) `a` to `width` bits.
    ///
    /// # Panics
    /// Panics if `width < a.width()`.
    pub fn zext(&mut self, a: &Word, width: usize) -> Word {
        assert!(width >= a.width(), "zext cannot shrink");
        let mut bits = a.bits.clone();
        bits.resize(width, Signal::FALSE);
        Word { bits }
    }

    /// Sign-extends `a` to `width` bits.
    ///
    /// # Panics
    /// Panics if `width < a.width()` or `a` is empty.
    pub fn sext(&mut self, a: &Word, width: usize) -> Word {
        assert!(width >= a.width(), "sext cannot shrink");
        let mut bits = a.bits.clone();
        let sign = a.msb();
        bits.resize(width, sign);
        Word { bits }
    }

    /// Bitwise NOT.
    pub fn not_word(&mut self, a: &Word) -> Word {
        Word {
            bits: a.bits.iter().map(|&b| !b).collect(),
        }
    }

    /// Bitwise AND of equal-width words.
    ///
    /// # Panics
    /// Panics on width mismatch (also for `or_word`/`xor_word`).
    pub fn and_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| self.and(x, y))
                .collect(),
        }
    }

    /// Bitwise OR of equal-width words.
    pub fn or_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| self.or(x, y))
                .collect(),
        }
    }

    /// Bitwise XOR of equal-width words.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| self.xor(x, y))
                .collect(),
        }
    }

    /// Bitwise multiplexer: `if sel then t else e`.
    pub fn mux_word(&mut self, sel: Signal, t: &Word, e: &Word) -> Word {
        assert_eq!(t.width(), e.width(), "width mismatch");
        Word {
            bits: t
                .bits
                .iter()
                .zip(&e.bits)
                .map(|(&x, &y)| self.mux(sel, x, y))
                .collect(),
        }
    }

    /// Full adder on three bits, returning `(sum, carry)`.
    pub fn full_adder(&mut self, a: Signal, b: Signal, c: Signal) -> (Signal, Signal) {
        let ab = self.xor(a, b);
        let sum = self.xor(ab, c);
        let ab_and = self.and(a, b);
        let abc = self.and(ab, c);
        let carry = self.or(ab_and, abc);
        (sum, carry)
    }

    /// Ripple-carry addition with carry-in; returns `(sum, carry_out)` where
    /// `sum` has the width of the operands.
    pub fn add_carry(&mut self, a: &Word, b: &Word, carry_in: Signal) -> (Word, Signal) {
        assert_eq!(a.width(), b.width(), "width mismatch");
        let mut carry = carry_in;
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits.iter().zip(&b.bits) {
            let (s, c) = self.full_adder(x, y, carry);
            bits.push(s);
            carry = c;
        }
        (Word { bits }, carry)
    }

    /// Addition, dropping the final carry (modular).
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        self.add_carry(a, b, Signal::FALSE).0
    }

    /// Subtraction `a - b` (two's complement); returns `(difference,
    /// no_borrow)` where `no_borrow` is true iff `a >= b` unsigned.
    pub fn sub_borrow(&mut self, a: &Word, b: &Word) -> (Word, Signal) {
        let nb = self.not_word(b);
        self.add_carry(a, &nb, Signal::TRUE)
    }

    /// Subtraction, dropping the borrow.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        self.sub_borrow(a, b).0
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: &Word) -> Word {
        let zero = self.word_const(a.width(), 0);
        self.sub(&zero, a)
    }

    /// Increment by 1 (modular).
    pub fn inc(&mut self, a: &Word) -> Word {
        let one = self.word_const(a.width(), 1);
        self.add(a, &one)
    }

    /// Unsigned schoolbook multiplication; the product has width
    /// `a.width() + b.width()`.
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        let w = a.width() + b.width();
        let mut acc = self.word_const(w, 0);
        for (i, &bi) in b.bits.iter().enumerate() {
            // Partial product: (a & bi) << i, zero-extended to w.
            let mut bits = vec![Signal::FALSE; i];
            for &aj in &a.bits {
                bits.push(self.and(aj, bi));
            }
            bits.resize(w, Signal::FALSE);
            acc = self.add(&acc, &Word { bits });
        }
        acc
    }

    /// Left shift by a constant, keeping the width (bits shifted out are
    /// dropped, zeros shift in).
    pub fn shl_const(&mut self, a: &Word, sh: usize) -> Word {
        let w = a.width();
        let mut bits = vec![Signal::FALSE; sh.min(w)];
        bits.extend_from_slice(&a.bits[..w - sh.min(w)]);
        Word { bits }
    }

    /// Logical right shift by a constant, keeping the width.
    pub fn lshr_const(&mut self, a: &Word, sh: usize) -> Word {
        let w = a.width();
        let mut bits = a.bits[sh.min(w)..].to_vec();
        bits.resize(w, Signal::FALSE);
        Word { bits }
    }

    /// Barrel shifter: left shift by a variable amount. Shift amounts at or
    /// beyond the width produce zero.
    pub fn shl_var(&mut self, a: &Word, amount: &Word) -> Word {
        let w = a.width();
        let mut cur = a.clone();
        for (k, &sbit) in amount.bits.iter().enumerate() {
            // A stage shift at or beyond the width zeroes the word, which
            // shl_const already produces when clamped to w.
            let sh = 1usize.checked_shl(k as u32).map_or(w, |s| s.min(w));
            let shifted = self.shl_const(&cur, sh);
            cur = self.mux_word(sbit, &shifted, &cur);
        }
        cur
    }

    /// Barrel shifter: logical right shift by a variable amount.
    pub fn lshr_var(&mut self, a: &Word, amount: &Word) -> Word {
        let w = a.width();
        let mut cur = a.clone();
        for (k, &sbit) in amount.bits.iter().enumerate() {
            let sh = 1usize.checked_shl(k as u32).map_or(w, |s| s.min(w));
            let shifted = self.lshr_const(&cur, sh);
            cur = self.mux_word(sbit, &shifted, &cur);
        }
        cur
    }

    /// Equality of two equal-width words.
    pub fn eq_word(&mut self, a: &Word, b: &Word) -> Signal {
        assert_eq!(a.width(), b.width(), "width mismatch");
        let mut acc = Signal::TRUE;
        for (&x, &y) in a.bits.iter().zip(&b.bits) {
            let e = self.xnor(x, y);
            acc = self.and(acc, e);
        }
        acc
    }

    /// Equality with a constant.
    pub fn eq_const(&mut self, a: &Word, value: u128) -> Signal {
        let c = self.word_const(a.width(), value);
        self.eq_word(a, &c)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: &Word, b: &Word) -> Signal {
        let (_, no_borrow) = self.sub_borrow(a, b);
        !no_borrow
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: &Word, b: &Word) -> Signal {
        let lt = self.ult(b, a);
        !lt
    }

    /// Signed less-than (two's complement).
    pub fn slt(&mut self, a: &Word, b: &Word) -> Signal {
        assert_eq!(a.width(), b.width(), "width mismatch");
        // a < b  <=>  (a - b) overflow-adjusted sign.
        let (diff, _) = self.sub_borrow(a, b);
        let sa = a.msb();
        let sb = b.msb();
        let sd = diff.msb();
        // If signs differ, a < b iff a is negative; else look at diff sign.
        let signs_differ = self.xor(sa, sb);
        self.mux(signs_differ, sa, sd)
    }

    /// Signed less-or-equal.
    pub fn sle(&mut self, a: &Word, b: &Word) -> Signal {
        let lt = self.slt(b, a);
        !lt
    }

    /// OR of all bits.
    pub fn or_reduce(&mut self, a: &Word) -> Signal {
        let mut acc = Signal::FALSE;
        for &b in &a.bits {
            acc = self.or(acc, b);
        }
        acc
    }

    /// AND of all bits.
    pub fn and_reduce(&mut self, a: &Word) -> Signal {
        let mut acc = Signal::TRUE;
        for &b in &a.bits {
            acc = self.and(acc, b);
        }
        acc
    }

    /// Returns `true` iff the word is zero.
    pub fn is_zero(&mut self, a: &Word) -> Signal {
        let r = self.or_reduce(a);
        !r
    }

    /// Counts leading zeros (from the MSB). The result is a word wide enough
    /// to hold `a.width()` (the all-zero count).
    pub fn count_leading_zeros(&mut self, a: &Word) -> Word {
        let w = a.width();
        let out_w = usize::BITS as usize - (w + 1).leading_zeros() as usize;
        let mut result = self.word_const(out_w.max(1), w as u128);
        // From LSB to MSB: a set bit at position i means clz = w-1-i; later
        // (more significant) updates win, so the final value reflects the
        // most significant set bit.
        for i in 0..w {
            let val = self.word_const(out_w.max(1), (w - 1 - i) as u128);
            result = self.mux_word(a.bit(i), &val, &result);
        }
        result
    }

    /// Decodes a binary word into a one-hot vector of `1 << a.width()` bits.
    pub fn decode_one_hot(&mut self, a: &Word) -> Word {
        let n = 1usize << a.width();
        let mut bits = Vec::with_capacity(n);
        for v in 0..n {
            let mut acc = Signal::TRUE;
            for (k, &bk) in a.bits.iter().enumerate() {
                let want = v >> k & 1 == 1;
                let lit = if want { bk } else { !bk };
                acc = self.and(acc, lit);
            }
            bits.push(acc);
        }
        Word { bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Evaluates a netlist whose inputs are the word inputs named in `vals`.
    fn eval(n: &Netlist, vals: &[(&str, u128, usize)]) -> HashMap<String, bool> {
        let mut inputs: Vec<(String, bool)> = Vec::new();
        for (name, v, w) in vals {
            for i in 0..*w {
                inputs.push((format!("{name}[{i}]"), v >> i & 1 == 1));
            }
        }
        let refs: Vec<(&str, bool)> = inputs.iter().map(|(s, b)| (s.as_str(), *b)).collect();
        n.eval_comb(&refs)
    }

    fn out_word(outs: &HashMap<String, bool>, name: &str, w: usize) -> u128 {
        (0..w)
            .map(|i| u128::from(outs[&format!("{name}[{i}]")]) << i)
            .sum()
    }

    fn output_word(n: &mut Netlist, name: &str, word: &Word) {
        for (i, &b) in word.bits().iter().enumerate() {
            n.output(format!("{name}[{i}]"), b);
        }
    }

    #[test]
    fn add_sub_values() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 8);
        let b = n.word_input("b", 8);
        let sum = n.add(&a, &b);
        let (diff, no_borrow) = n.sub_borrow(&a, &b);
        output_word(&mut n, "sum", &sum);
        output_word(&mut n, "diff", &diff);
        n.output("nb", no_borrow);
        for (va, vb) in [
            (0u128, 0u128),
            (1, 1),
            (200, 100),
            (100, 200),
            (255, 255),
            (37, 199),
        ] {
            let outs = eval(&n, &[("a", va, 8), ("b", vb, 8)]);
            assert_eq!(out_word(&outs, "sum", 8), (va + vb) & 0xff);
            assert_eq!(out_word(&outs, "diff", 8), va.wrapping_sub(vb) & 0xff);
            assert_eq!(outs["nb"], va >= vb);
        }
    }

    #[test]
    fn mul_values() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 6);
        let b = n.word_input("b", 6);
        let p = n.mul(&a, &b);
        assert_eq!(p.width(), 12);
        output_word(&mut n, "p", &p);
        for (va, vb) in [(0u128, 5u128), (63, 63), (17, 33), (42, 1), (9, 7)] {
            let outs = eval(&n, &[("a", va, 6), ("b", vb, 6)]);
            assert_eq!(out_word(&outs, "p", 12), va * vb);
        }
    }

    #[test]
    fn shifts() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 16);
        let sh = n.word_input("sh", 5);
        let left = n.shl_var(&a, &sh);
        let right = n.lshr_var(&a, &sh);
        let lc = n.shl_const(&a, 3);
        let rc = n.lshr_const(&a, 3);
        output_word(&mut n, "left", &left);
        output_word(&mut n, "right", &right);
        output_word(&mut n, "lc", &lc);
        output_word(&mut n, "rc", &rc);
        for (va, vsh) in [
            (0xabcdu128, 0u128),
            (0xabcd, 4),
            (0xffff, 15),
            (0x8001, 16),
            (1, 31),
        ] {
            let outs = eval(&n, &[("a", va, 16), ("sh", vsh, 5)]);
            let shifted_l = if vsh >= 16 { 0 } else { (va << vsh) & 0xffff };
            let shifted_r = if vsh >= 16 { 0 } else { va >> vsh };
            assert_eq!(
                out_word(&outs, "left", 16),
                shifted_l,
                "shl {va:x} by {vsh}"
            );
            assert_eq!(
                out_word(&outs, "right", 16),
                shifted_r,
                "lshr {va:x} by {vsh}"
            );
            assert_eq!(out_word(&outs, "lc", 16), (va << 3) & 0xffff);
            assert_eq!(out_word(&outs, "rc", 16), va >> 3);
        }
    }

    #[test]
    fn comparisons() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 6);
        let b = n.word_input("b", 6);
        let eq = n.eq_word(&a, &b);
        let lt = n.ult(&a, &b);
        let le = n.ule(&a, &b);
        let slt = n.slt(&a, &b);
        n.output("eq", eq);
        n.output("lt", lt);
        n.output("le", le);
        n.output("slt", slt);
        for va in 0u128..64 {
            for vb in [0u128, 1, 31, 32, 33, 63] {
                let outs = eval(&n, &[("a", va, 6), ("b", vb, 6)]);
                assert_eq!(outs["eq"], va == vb);
                assert_eq!(outs["lt"], va < vb);
                assert_eq!(outs["le"], va <= vb);
                let sa = if va >= 32 {
                    va as i128 - 64
                } else {
                    va as i128
                };
                let sb = if vb >= 32 {
                    vb as i128 - 64
                } else {
                    vb as i128
                };
                assert_eq!(outs["slt"], sa < sb, "slt {sa} {sb}");
            }
        }
    }

    #[test]
    fn clz_values() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 10);
        let clz = n.count_leading_zeros(&a);
        output_word(&mut n, "clz", &clz);
        let w = clz.width();
        for va in [0u128, 1, 2, 3, 512, 513, 0x3ff, 0x100, 0x0ff] {
            let outs = eval(&n, &[("a", va, 10)]);
            let expect = if va == 0 {
                10
            } else {
                10 - (128 - va.leading_zeros() as u128)
            };
            assert_eq!(out_word(&outs, "clz", w), expect, "clz of {va:#x}");
        }
    }

    #[test]
    fn reductions_and_mux() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let b = n.word_input("b", 4);
        let s = n.input("s");
        let orr = n.or_reduce(&a);
        let andr = n.and_reduce(&a);
        let z = n.is_zero(&a);
        let m = n.mux_word(s, &a, &b);
        n.output("orr", orr);
        n.output("andr", andr);
        n.output("z", z);
        output_word(&mut n, "m", &m);
        for va in 0u128..16 {
            for vb in [0u128, 9, 15] {
                for vs in [false, true] {
                    let mut ins: Vec<(String, bool)> = Vec::new();
                    for i in 0..4 {
                        ins.push((format!("a[{i}]"), va >> i & 1 == 1));
                        ins.push((format!("b[{i}]"), vb >> i & 1 == 1));
                    }
                    ins.push(("s".into(), vs));
                    let refs: Vec<(&str, bool)> =
                        ins.iter().map(|(s, b)| (s.as_str(), *b)).collect();
                    let outs = n.eval_comb(&refs);
                    assert_eq!(outs["orr"], va != 0);
                    assert_eq!(outs["andr"], va == 15);
                    assert_eq!(outs["z"], va == 0);
                    assert_eq!(out_word(&outs, "m", 4), if vs { va } else { vb });
                }
            }
        }
    }

    #[test]
    fn neg_inc_const() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 8);
        let neg = n.neg(&a);
        let inc = n.inc(&a);
        output_word(&mut n, "neg", &neg);
        output_word(&mut n, "inc", &inc);
        for va in [0u128, 1, 127, 128, 255] {
            let outs = eval(&n, &[("a", va, 8)]);
            assert_eq!(out_word(&outs, "neg", 8), va.wrapping_neg() & 0xff);
            assert_eq!(out_word(&outs, "inc", 8), (va + 1) & 0xff);
        }
    }

    #[test]
    fn decode_one_hot_values() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 3);
        let oh = n.decode_one_hot(&a);
        assert_eq!(oh.width(), 8);
        output_word(&mut n, "oh", &oh);
        for va in 0u128..8 {
            let outs = eval(&n, &[("a", va, 3)]);
            assert_eq!(out_word(&outs, "oh", 8), 1 << va);
        }
    }

    #[test]
    fn slicing() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 8);
        let hi = a.slice(4, 8);
        let lo = a.slice(0, 4);
        let re = lo.concat(&hi);
        assert_eq!(re.width(), 8);
        let rev = a.reversed();
        output_word(&mut n, "re", &re);
        output_word(&mut n, "rev", &rev);
        let outs = eval(&n, &[("a", 0b1010_0110, 8)]);
        assert_eq!(out_word(&outs, "re", 8), 0b1010_0110);
        assert_eq!(out_word(&outs, "rev", 8), 0b0110_0101);
    }

    #[test]
    fn sext_zext() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let z = n.zext(&a, 8);
        let s = n.sext(&a, 8);
        output_word(&mut n, "z", &z);
        output_word(&mut n, "s", &s);
        for va in 0u128..16 {
            let outs = eval(&n, &[("a", va, 4)]);
            assert_eq!(out_word(&outs, "z", 8), va);
            let expect = if va >= 8 { va | 0xf0 } else { va };
            assert_eq!(out_word(&outs, "s", 8), expect);
        }
    }
}
