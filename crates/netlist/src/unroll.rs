//! Bounded unrolling of sequential netlists.
//!
//! The paper casts FPU verification "as a bounded check" because a floating
//! point computation completes in a bounded number of steps. This module
//! produces the combinational unfolding the SAT engine operates on, and also
//! serves as a simple stand-in for the phase-abstraction step [16]: a
//! pipelined implementation FPU unrolled to its latency becomes a purely
//! combinational function of the cycle-0 operands.

use std::collections::HashMap;

use crate::aig::{Netlist, Node, Signal};
use crate::word::Word;

/// How primary inputs behave across unrolled cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InputMode {
    /// Each cycle gets fresh inputs named `name@cycle`.
    FreshPerCycle,
    /// All cycles share the cycle-0 inputs (the paper's driver applies one
    /// instruction and holds the operands).
    HoldFirst,
}

/// The result of unrolling: a combinational netlist plus signal maps.
#[derive(Debug)]
pub struct Unrolled {
    /// The combinational unrolled netlist (no latches).
    pub netlist: Netlist,
    /// `map[cycle]` maps original signals to unrolled signals at that cycle.
    map: Vec<HashMap<u32, Signal>>,
}

impl Unrolled {
    /// The unrolled counterpart of `sig` at `cycle`.
    ///
    /// # Panics
    /// Panics if the cycle is out of range or the signal was not reachable.
    pub fn at(&self, cycle: usize, sig: Signal) -> Signal {
        let body = *self.map[cycle]
            .get(&(sig.node().index() as u32))
            .unwrap_or_else(|| panic!("signal {sig:?} not present at cycle {cycle}"));
        if sig.is_inverted() {
            !body
        } else {
            body
        }
    }

    /// The unrolled counterpart of a word at `cycle`.
    pub fn word_at(&self, cycle: usize, w: &Word) -> Word {
        Word::from_bits(w.bits().iter().map(|&b| self.at(cycle, b)).collect())
    }

    /// Number of unrolled cycles.
    pub fn cycles(&self) -> usize {
        self.map.len()
    }
}

/// Unrolls `netlist` for `cycles` cycles (cycle indices `0..cycles`).
///
/// Latches take their reset value at cycle 0 and their next-state function
/// evaluated at cycle `c-1` for cycle `c`. Outputs and probes of the original
/// netlist are re-declared per cycle as `name@cycle`.
///
/// # Panics
/// Panics if `cycles == 0` or a latch is unconnected.
pub fn unroll(netlist: &Netlist, cycles: usize, mode: InputMode) -> Unrolled {
    assert!(cycles > 0, "need at least one cycle");
    netlist.assert_closed();
    let mut out = Netlist::new();
    let mut map: Vec<HashMap<u32, Signal>> = vec![HashMap::new(); cycles];

    for cycle in 0..cycles {
        for id in netlist.node_ids() {
            let new_sig = match netlist.node(id) {
                Node::Const => Signal::FALSE,
                Node::Input { name } => {
                    if cycle == 0 || mode == InputMode::FreshPerCycle {
                        out.input(format!("{name}@{cycle}"))
                    } else {
                        map[0][&(id.index() as u32)]
                    }
                }
                Node::Latch { init, next, .. } => {
                    if cycle == 0 {
                        if *init {
                            Signal::TRUE
                        } else {
                            Signal::FALSE
                        }
                    } else {
                        let prev = map[cycle - 1][&(next.node().index() as u32)];
                        if next.is_inverted() {
                            !prev
                        } else {
                            prev
                        }
                    }
                }
                Node::And(a, b) => {
                    let la = lookup(&map[cycle], *a);
                    let lb = lookup(&map[cycle], *b);
                    out.and(la, lb)
                }
            };
            map[cycle].insert(id.index() as u32, new_sig);
        }
        for (name, sig) in netlist.outputs() {
            let s = lookup(&map[cycle], *sig);
            out.output(format!("{name}@{cycle}"), s);
        }
        for name in netlist.probe_names() {
            let sig = netlist.find_probe(name).expect("probe exists");
            let s = lookup(&map[cycle], sig);
            out.probe(format!("{name}@{cycle}"), s);
        }
    }
    Unrolled { netlist: out, map }
}

fn lookup(map: &HashMap<u32, Signal>, sig: Signal) -> Signal {
    let body = map[&(sig.node().index() as u32)];
    if sig.is_inverted() {
        !body
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::BitSim;

    /// A 3-stage shift register over one input bit.
    fn shift_register() -> (Netlist, Signal, Signal) {
        let mut n = Netlist::new();
        let d = n.input("d");
        let q1 = n.latch(false);
        let q2 = n.latch(false);
        let q3 = n.latch(false);
        n.set_latch_next(q1, d);
        n.set_latch_next(q2, q1);
        n.set_latch_next(q3, q2);
        n.output("q", q3);
        (n, d, q3)
    }

    #[test]
    fn unroll_matches_sequential_sim() {
        let (n, d, q3) = shift_register();
        let u = unroll(&n, 5, InputMode::FreshPerCycle);
        assert_eq!(u.cycles(), 5);
        assert_eq!(u.netlist.num_latches(), 0);

        // Drive the sequential simulator with a pattern and compare each
        // cycle's output against the unrolled combinational evaluation.
        let pattern = [true, false, true, true, false];
        let mut sim = BitSim::new(&n);
        let mut seq_outputs = Vec::new();
        for &bit in &pattern {
            sim.set(d, bit);
            sim.eval();
            seq_outputs.push(sim.get(q3));
            sim.step();
        }

        let mut inputs: Vec<(String, bool)> = Vec::new();
        for (c, &bit) in pattern.iter().enumerate() {
            inputs.push((format!("d@{c}"), bit));
        }
        let refs: Vec<(&str, bool)> = inputs.iter().map(|(s, b)| (s.as_str(), *b)).collect();
        let outs = u.netlist.eval_comb(&refs);
        for (c, &expect) in seq_outputs.iter().enumerate() {
            assert_eq!(outs[&format!("q@{c}")], expect, "cycle {c}");
        }
        // At cycle 3 the output equals the cycle-0 input.
        assert_eq!(outs["q@3"], pattern[0]);
    }

    #[test]
    fn hold_first_shares_inputs() {
        let (n, _, _) = shift_register();
        let u = unroll(&n, 4, InputMode::HoldFirst);
        // Only the cycle-0 input exists.
        assert_eq!(u.netlist.inputs().len(), 1);
        let outs = u.netlist.eval_comb(&[("d@0", true)]);
        assert!(!outs["q@0"]);
        assert!(!outs["q@1"]);
        assert!(!outs["q@2"]);
        assert!(outs["q@3"]);
    }

    #[test]
    fn latch_init_values() {
        let mut n = Netlist::new();
        let q = n.latch(true);
        n.set_latch_next(q, Signal::FALSE);
        n.output("q", q);
        let u = unroll(&n, 2, InputMode::FreshPerCycle);
        let outs = u.netlist.eval_comb(&[]);
        assert!(outs["q@0"]);
        assert!(!outs["q@1"]);
    }
}
