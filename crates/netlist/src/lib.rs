//! And-inverter-graph netlists with registers: the common design
//! representation of the FMA FPU verification flow.
//!
//! The paper maps every design (the industrial FPU, the reference FPU, the
//! driver) into "a netlist representation containing only 2-input AND gates,
//! inverters, and registers". This crate provides:
//!
//! * [`Netlist`]/[`Signal`] — the AIG with structural hashing, constant
//!   folding, named outputs and internal probe points;
//! * [`Word`] and word-level operators on [`Netlist`] — the "high-level VHDL
//!   operators" (`+`, `sll`, comparators, leading-zero count, ...) used to
//!   author the reference FPU;
//! * [`BitSim`]/[`ParallelSim`] — sequential and 64-way bit-parallel
//!   simulation;
//! * [`unroll`] — bounded unfolding into combinational logic for SAT;
//! * [`SatEncoder`] — Tseitin encoding of cones of influence;
//! * [`sat_sweep`] — simulation-guided SAT sweeping, the paper's "automated
//!   redundancy removal algorithms \[15\]";
//! * [`Sha256`] and [`Netlist::coi_hash`] — dependency-free digests and
//!   canonical structural hashing of logic cones, the substrate of the
//!   verification layer's content-addressed proof cache.
//!
//! # Examples
//!
//! ```
//! use fmaverify_netlist::Netlist;
//!
//! let mut n = Netlist::new();
//! let a = n.word_input("a", 8);
//! let b = n.word_input("b", 8);
//! let sum = n.add(&a, &b);
//! let big = n.ult(&b, &a);
//! n.output("gt", big);
//! for (i, &bit) in sum.bits().iter().enumerate() {
//!     n.output(format!("sum[{i}]"), bit);
//! }
//! assert!(n.num_ands() > 0);
//! ```

#![warn(missing_docs)]

mod aig;
mod aiger;
mod hash;
mod sim;
mod sweep;
mod tseitin;
mod unroll;
mod vcd;
mod verilog;
mod word;

pub use aig::{Netlist, Node, NodeId, Signal};
pub use aiger::{parse_aiger, write_aiger, ParseAigerError};
pub use hash::Sha256;
pub use sim::{BitSim, ParallelSim};
pub use sweep::{prove_equal, sat_sweep, SweepOptions, SweepResult};
pub use tseitin::{encode_to_cnf, SatEncoder};
pub use unroll::{unroll, InputMode, Unrolled};
pub use vcd::{dump_counterexample, WaveRecorder};
pub use verilog::write_verilog;
pub use word::Word;
