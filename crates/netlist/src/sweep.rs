//! Redundancy removal via simulation-guided SAT sweeping.
//!
//! The paper "employed automated redundancy removal algorithms [15] to reduce
//! the size of the netlist prior to application of BDD- and SAT-based
//! analysis", using an "interleaved BDD-sweeping and structural satisfiability
//! checking technique". This module implements the modern descendant of that
//! technique (fraiging): random simulation partitions nodes into candidate
//! equivalence classes, budgeted SAT queries confirm or refute candidates
//! (counterexamples refine the classes), and confirmed equivalences are
//! merged by rebuilding the netlist.

use std::collections::HashMap;

use fmaverify_sat::{SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aig::{Netlist, Node, Signal};
use crate::tseitin::SatEncoder;

/// Options controlling a sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Number of 64-pattern random simulation rounds used to seed the
    /// candidate classes.
    pub sim_rounds: usize,
    /// Conflict budget per SAT query; candidates whose queries exceed it stay
    /// unmerged (sound, just less reduction).
    pub conflict_budget: u64,
    /// RNG seed (sweeps are deterministic for a given seed).
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            sim_rounds: 8,
            conflict_budget: 2_000,
            seed: 0x5eed_cafe,
        }
    }
}

/// Result of a sweep: the reduced netlist and bookkeeping statistics.
#[derive(Debug)]
pub struct SweepResult {
    /// The reduced netlist. Inputs and latches are preserved by name/order;
    /// outputs and probes are re-declared.
    pub netlist: Netlist,
    /// The remapped root signals, in the order given to [`sat_sweep`].
    pub roots: Vec<Signal>,
    /// Number of node merges performed.
    pub merged: usize,
    /// Number of SAT queries issued.
    pub sat_calls: usize,
    /// Number of queries that exhausted the conflict budget.
    pub timeouts: usize,
    /// Total simulation rounds run: the seeding rounds from
    /// [`SweepOptions::sim_rounds`] plus one round per counterexample
    /// refinement.
    pub sim_rounds: usize,
    /// AND-gate count before/after.
    pub ands_before: usize,
    /// AND-gate count after rebuilding.
    pub ands_after: usize,
}

/// Sweeps the combinational logic feeding `roots`, merging functionally
/// equivalent nodes (up to complement). Latches are treated as free cut
/// points, so the reduction is sound for sequential designs as well.
pub fn sat_sweep(netlist: &Netlist, roots: &[Signal], opts: SweepOptions) -> SweepResult {
    netlist_sweep_impl(netlist, roots, opts)
}

fn netlist_sweep_impl(netlist: &Netlist, roots: &[Signal], opts: SweepOptions) -> SweepResult {
    let n_nodes = netlist.num_nodes();
    let cone = netlist.comb_cone(roots);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Signatures: one u64 lane set per simulation round, per node.
    let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); n_nodes];
    let mut sim_values: Vec<u64> = vec![0; n_nodes];
    let run_round = |values: &mut Vec<u64>,
                     signatures: &mut Vec<Vec<u64>>,
                     fill: &mut dyn FnMut(usize) -> u64| {
        for id in netlist.node_ids() {
            let i = id.index();
            match netlist.node(id) {
                Node::Const => values[i] = 0,
                Node::Input { .. } | Node::Latch { .. } => values[i] = fill(i),
                Node::And(a, b) => {
                    let va = values[a.node().index()] ^ inv_mask(a.is_inverted());
                    let vb = values[b.node().index()] ^ inv_mask(b.is_inverted());
                    values[i] = va & vb;
                }
            }
        }
        for (i, sig) in signatures.iter_mut().enumerate() {
            sig.push(values[i]);
        }
    };
    for _ in 0..opts.sim_rounds {
        run_round(&mut sim_values, &mut signatures, &mut |_| rng.gen());
    }

    // Candidate classes keyed by normalized signature (complement-canonical:
    // flip all lanes if lane 0 bit 0 is set, remembering the phase).
    let mut solver = Solver::new();
    solver.set_conflict_budget(Some(opts.conflict_budget));
    let mut encoder = SatEncoder::new();
    // subst maps an original node to its replacement signal *in the original
    // netlist's node numbering space* (for equivalence tracking).
    let mut repr: Vec<Option<Signal>> = vec![None; n_nodes];
    let mut merged = 0usize;
    let mut sat_calls = 0usize;
    let mut timeouts = 0usize;

    /// Outcome of a SAT equivalence query, cached to survive classification
    /// restarts.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Outcome {
        Equal,
        Unequal,
        Unknown,
    }
    // Cache keyed by (node, candidate-node, same-phase?).
    let mut query_cache: HashMap<(u32, u32, bool), Outcome> = HashMap::new();
    const MAX_REFINEMENTS: usize = 64;
    let mut refinements = 0usize;

    'restart: loop {
        let mut classes: HashMap<Vec<u64>, Signal> = HashMap::new();
        // Seed the constant class so semantically-constant gates merge with
        // FALSE/TRUE.
        classes.insert(vec![0u64; signatures[0].len()], Signal::FALSE);
        for id in netlist.node_ids() {
            let i = id.index();
            if !cone[i] || !matches!(netlist.node(id), Node::And(..)) || repr[i].is_some() {
                continue;
            }
            let (key, phase) = normalize_signature(&signatures[i]);
            let candidate = match classes.get(&key) {
                None => {
                    classes.insert(key, phased(netlist.signal(id), phase));
                    continue;
                }
                Some(&rep) => phased(rep, phase),
            };
            if candidate.node() == id {
                continue;
            }
            let cache_key = (
                i as u32,
                candidate.node().index() as u32,
                !candidate.is_inverted(),
            );
            match query_cache.get(&cache_key) {
                Some(Outcome::Equal) => {
                    repr[i] = Some(candidate);
                    continue;
                }
                Some(Outcome::Unequal) | Some(Outcome::Unknown) => continue,
                None => {}
            }
            // SAT query: is node XOR candidate satisfiable?
            let this = netlist.signal(id);
            let la = encoder.lit(netlist, &mut solver, this);
            let lb = encoder.lit(netlist, &mut solver, candidate);
            sat_calls += 1;
            let outcome = match solver.solve_with_assumptions(&[la, !lb]) {
                SolveResult::Unknown => Outcome::Unknown,
                SolveResult::Sat => Outcome::Unequal,
                SolveResult::Unsat => match solver.solve_with_assumptions(&[!la, lb]) {
                    SolveResult::Unknown => Outcome::Unknown,
                    SolveResult::Sat => Outcome::Unequal,
                    SolveResult::Unsat => Outcome::Equal,
                },
            };
            query_cache.insert(cache_key, outcome);
            match outcome {
                Outcome::Equal => {
                    repr[i] = Some(candidate);
                    merged += 1;
                }
                Outcome::Unknown => {
                    timeouts += 1;
                }
                Outcome::Unequal => {
                    // Fold the counterexample into the signatures and restart
                    // classification so the pair separates.
                    if refinements < MAX_REFINEMENTS {
                        refinements += 1;
                        refine(
                            netlist,
                            &mut signatures,
                            &mut sim_values,
                            &solver,
                            &encoder,
                            &mut rng,
                        );
                        query_cache.retain(|_, o| *o != Outcome::Unequal);
                        continue 'restart;
                    }
                }
            }
        }
        break;
    }

    // Rebuild the netlist applying the substitutions.
    let mut out = Netlist::new();
    let mut remap: Vec<Signal> = vec![Signal::FALSE; n_nodes];
    for id in netlist.node_ids() {
        let i = id.index();
        let new_sig = match netlist.node(id) {
            Node::Const => Signal::FALSE,
            Node::Input { name } => out.input(name.clone()),
            Node::Latch { init, .. } => out.latch(*init),
            Node::And(a, b) => {
                if let Some(rep) = repr[i] {
                    apply(&remap, rep)
                } else {
                    let la = apply(&remap, *a);
                    let lb = apply(&remap, *b);
                    out.and(la, lb)
                }
            }
        };
        remap[i] = new_sig;
    }
    // Reconnect latches.
    for &l in netlist.latches() {
        if let Node::Latch {
            next, connected, ..
        } = netlist.node(l)
        {
            if *connected {
                let new_next = apply(&remap, *next);
                out.set_latch_next(remap[l.index()], new_next);
            }
        }
    }
    for (name, sig) in netlist.outputs() {
        let s = apply(&remap, *sig);
        out.output(name.clone(), s);
    }
    for name in netlist.probe_names() {
        let sig = netlist.find_probe(name).expect("probe exists");
        let s = apply(&remap, sig);
        out.probe(name.to_string(), s);
    }
    let new_roots: Vec<Signal> = roots.iter().map(|&r| apply(&remap, r)).collect();
    let ands_after = out.cone_size(&new_roots);
    SweepResult {
        ands_before: netlist.cone_size(roots),
        netlist: out,
        roots: new_roots,
        merged,
        sat_calls,
        timeouts,
        sim_rounds: opts.sim_rounds + refinements,
        ands_after,
    }
}

/// Adds one counterexample-derived simulation round: the SAT model supplies
/// input/latch values in lane 0, random values fill the other 63 lanes.
fn refine(
    netlist: &Netlist,
    signatures: &mut [Vec<u64>],
    values: &mut [u64],
    solver: &Solver,
    encoder: &SatEncoder,
    rng: &mut StdRng,
) {
    for id in netlist.node_ids() {
        let i = id.index();
        match netlist.node(id) {
            Node::Const => values[i] = 0,
            Node::Input { .. } | Node::Latch { .. } => {
                let mut lanes: u64 = rng.gen();
                if let Some(lit) = encoder.existing_lit(netlist.signal(id)) {
                    match solver.model_lit_value(lit) {
                        fmaverify_sat::LBool::True => lanes |= 1,
                        fmaverify_sat::LBool::False => lanes &= !1,
                        fmaverify_sat::LBool::Undef => {}
                    }
                }
                values[i] = lanes;
            }
            Node::And(a, b) => {
                let va = values[a.node().index()] ^ inv_mask(a.is_inverted());
                let vb = values[b.node().index()] ^ inv_mask(b.is_inverted());
                values[i] = va & vb;
            }
        }
    }
    for (i, sig) in signatures.iter_mut().enumerate() {
        sig.push(values[i]);
    }
}

#[inline]
fn inv_mask(b: bool) -> u64 {
    if b {
        u64::MAX
    } else {
        0
    }
}

/// Canonicalizes a signature under complement; returns (key, phase) where
/// `phase` is true if the signature was complemented.
fn normalize_signature(sig: &[u64]) -> (Vec<u64>, bool) {
    let flip = sig.first().is_some_and(|&w| w & 1 == 1);
    if flip {
        (sig.iter().map(|&w| !w).collect(), true)
    } else {
        (sig.to_vec(), false)
    }
}

#[inline]
fn phased(sig: Signal, phase: bool) -> Signal {
    if phase {
        !sig
    } else {
        sig
    }
}

#[inline]
fn apply(remap: &[Signal], sig: Signal) -> Signal {
    let body = remap[sig.node().index()];
    if sig.is_inverted() {
        !body
    } else {
        body
    }
}

/// Proves or refutes combinational equivalence of two signals in the same
/// netlist using an unbudgeted SAT check. Returns `true` iff equivalent.
pub fn prove_equal(netlist: &Netlist, a: Signal, b: Signal) -> bool {
    let mut solver = Solver::new();
    let mut enc = SatEncoder::new();
    let la = enc.lit(netlist, &mut solver, a);
    let lb = enc.lit(netlist, &mut solver, b);
    solver.solve_with_assumptions(&[la, !lb]) == SolveResult::Unsat
        && solver.solve_with_assumptions(&[!la, lb]) == SolveResult::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::BitSim;

    #[test]
    fn merges_duplicated_adders() {
        // Two adders built from different structures over the same operands:
        // a ripple-carry adder versus a - (0 - b). Structural hashing cannot
        // see through this; the sweep must prove the difference constant.
        let mut n = Netlist::new();
        let a = n.word_input("a", 8);
        let b = n.word_input("b", 8);
        let s1 = n.add(&a, &b);
        let nb = n.neg(&b);
        let s2 = n.sub(&a, &nb);
        assert_ne!(s1, s2, "the two adders must be structurally distinct");
        let diff = n.xor_word(&s1, &s2);
        let any = n.or_reduce(&diff);
        n.output("any", any);
        let result = sat_sweep(&n, &[any], SweepOptions::default());
        assert_eq!(result.roots[0], Signal::FALSE, "difference must sweep to 0");
        assert!(result.ands_after < result.ands_before);
    }

    #[test]
    fn sweep_preserves_function() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 6);
        let b = n.word_input("b", 6);
        let s = n.add(&a, &b);
        let p = n.mul(&a, &b);
        let sp = n.xor_word(&s, &p.truncate(6));
        for (i, &bit) in sp.bits().iter().enumerate() {
            n.output(format!("o[{i}]"), bit);
        }
        let roots: Vec<Signal> = sp.bits().to_vec();
        let result = sat_sweep(&n, &roots, SweepOptions::default());
        // Compare the original and swept netlists on random values.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let va: u128 = rng.gen_range(0..64);
            let vb: u128 = rng.gen_range(0..64);
            let mut sim_old = BitSim::new(&n);
            sim_old.set_word(&a, va);
            sim_old.set_word(&b, vb);
            sim_old.eval();
            let new_a = result.netlist.find_input("a[0]").expect("input exists");
            let _ = new_a;
            let mut sim_new = BitSim::new(&result.netlist);
            for i in 0..6 {
                let ia = result
                    .netlist
                    .find_input(&format!("a[{i}]"))
                    .expect("a bit");
                let ib = result
                    .netlist
                    .find_input(&format!("b[{i}]"))
                    .expect("b bit");
                sim_new.set(ia, va >> i & 1 == 1);
                sim_new.set(ib, vb >> i & 1 == 1);
            }
            sim_new.eval();
            for (i, &old_bit) in roots.iter().enumerate() {
                assert_eq!(
                    sim_old.get(old_bit),
                    sim_new.get(result.roots[i]),
                    "bit {i} for a={va} b={vb}"
                );
            }
        }
        assert!(result.merged > 0, "adder/multiplier share low-order logic");
    }

    #[test]
    fn prove_equal_works() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let x1 = n.xor(a, b);
        let x2 = {
            let o = n.or(a, b);
            let na = n.and(a, b);
            n.and(o, !na)
        };
        assert!(prove_equal(&n, x1, x2));
        assert!(!prove_equal(&n, x1, a));
        assert!(!prove_equal(&n, !x1, x2));
    }

    #[test]
    fn sweep_keeps_latches() {
        let mut n = Netlist::new();
        let d = n.input("d");
        let q = n.latch(false);
        n.set_latch_next(q, d);
        let g = n.and(q, d);
        n.output("g", g);
        let result = sat_sweep(&n, &[g], SweepOptions::default());
        assert_eq!(result.netlist.num_latches(), 1);
        result.netlist.assert_closed();
    }
}
