//! Canonical structural hashing of netlist cones.
//!
//! The proof cache in the verification layer memoizes case results keyed by
//! *what was proved*: the exact logic cone the engines analyzed. This module
//! provides the two halves of that key:
//!
//! * [`Sha256`] — a small, dependency-free SHA-256 implementation (crates.io
//!   is unreachable in the build environment, so the digest is in-tree);
//! * [`Netlist::coi_hash`] — a canonical 256-bit hash of the sequential cone
//!   of influence of a set of root signals.
//!
//! The cone hash is *structural*: nodes are renumbered densely in the
//! netlist's topological creation order restricted to the cone, so node IDs
//! outside the cone, probe names, output declarations, and unrelated logic
//! do not affect it. Because [`Netlist::and`] structurally hashes and
//! canonicalizes operand order at construction time, two cones built by the
//! same sequence of word-level operations hash identically, while any change
//! to a gate, an inversion, an input name, or a latch reset value inside the
//! cone changes the hash.

use crate::aig::{Netlist, Node, Signal};

/// Streaming SHA-256 (FIPS 180-4), dependency-free.
///
/// ```
/// use fmaverify_netlist::Sha256;
///
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(
///     Sha256::to_hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered < 64 {
                return; // data fit in the partial block; rest is empty
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    /// Absorbs a little-endian `u64` (length-prefix-free framing for fixed
    /// width fields).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed byte string (unambiguous framing for
    /// variable-width fields such as names).
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        self.update_u64(bytes.len() as u64);
        self.update(bytes);
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.length = 0; // the padding bytes must not count
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Lowercase hex rendering of a digest.
    pub fn to_hex(digest: &[u8; 32]) -> String {
        let mut out = String::with_capacity(64);
        for b in digest {
            out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// Per-node tags fed into the cone hash; distinct from each other and from
/// the header/root framing so the encoding is prefix-free.
const TAG_CONST: u64 = 0;
const TAG_INPUT: u64 = 1;
const TAG_AND: u64 = 2;
const TAG_LATCH: u64 = 3;

impl Netlist {
    /// Canonical 256-bit structural hash of the *sequential* cone of
    /// influence of `roots` (AND operands and latch next-state functions are
    /// both traversed).
    ///
    /// Nodes in the cone are renumbered densely in topological (creation)
    /// order, so the hash depends only on the cone's structure — the gates,
    /// their connectivity and inversions, input names, and latch reset
    /// values — plus the root signals themselves, in order. Logic outside
    /// the cone, probe points, and output declarations are invisible to it.
    ///
    /// ```
    /// use fmaverify_netlist::Netlist;
    ///
    /// let mut n = Netlist::new();
    /// let a = n.input("a");
    /// let b = n.input("b");
    /// let g = n.and(a, b);
    /// let h0 = n.coi_hash(&[g]);
    /// let _unrelated = n.and(a, !b); // outside the cone of g
    /// assert_eq!(n.coi_hash(&[g]), h0);
    /// assert_ne!(n.coi_hash(&[!g]), h0);
    /// ```
    pub fn coi_hash(&self, roots: &[Signal]) -> [u8; 32] {
        let mask = self.seq_cone(roots);
        // Dense renumbering in topological order restricted to the cone.
        let mut dense: Vec<u64> = vec![u64::MAX; self.num_nodes()];
        let mut next = 0u64;
        for id in self.node_ids() {
            if mask[id.index()] {
                dense[id.index()] = next;
                next += 1;
            }
        }
        let enc = |sig: Signal| -> u64 {
            let d = dense[sig.node().index()];
            debug_assert_ne!(d, u64::MAX, "operand outside cone");
            d << 1 | u64::from(sig.is_inverted())
        };

        let mut h = Sha256::new();
        h.update_bytes(b"fmaverify-coi-v1");
        h.update_u64(next);
        for id in self.node_ids() {
            if !mask[id.index()] {
                continue;
            }
            match self.node(id) {
                Node::Const => h.update_u64(TAG_CONST),
                Node::Input { name } => {
                    h.update_u64(TAG_INPUT);
                    h.update_bytes(name.as_bytes());
                }
                Node::And(a, b) => {
                    h.update_u64(TAG_AND);
                    h.update_u64(enc(*a));
                    h.update_u64(enc(*b));
                }
                Node::Latch { init, next, .. } => {
                    h.update_u64(TAG_LATCH);
                    h.update_u64(u64::from(*init));
                    h.update_u64(enc(*next));
                }
            }
        }
        h.update_u64(roots.len() as u64);
        for &r in roots {
            h.update_u64(enc(r));
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_vectors() {
        // FIPS 180-4 / NIST CAVP known-answer vectors.
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Streaming across block boundaries matches one-shot.
        let data = vec![0xa3u8; 1000];
        let mut streaming = Sha256::new();
        for chunk in data.chunks(37) {
            streaming.update(chunk);
        }
        assert_eq!(streaming.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn coi_hash_ignores_unrelated_logic() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 4);
        let b = n.word_input("b", 4);
        let sum = n.add(&a, &b);
        let root = sum.bit(3);
        let before = n.coi_hash(&[root]);
        // Unrelated logic, probes and outputs leave the cone hash alone.
        let junk = n.ult(&a, &b);
        n.probe("junk", junk);
        n.output("junk", junk);
        assert_eq!(n.coi_hash(&[root]), before);
    }

    #[test]
    fn coi_hash_is_stable_across_rebuilds_and_sensitive_to_structure() {
        let build = |swap: bool| -> (Netlist, Signal) {
            let mut n = Netlist::new();
            let a = n.word_input("a", 4);
            let b = n.word_input("b", 4);
            let s = if swap { n.sub(&a, &b) } else { n.add(&a, &b) };
            let r = s.bit(2);
            (n, r)
        };
        let (n1, r1) = build(false);
        let (n2, r2) = build(false);
        assert_eq!(n1.coi_hash(&[r1]), n2.coi_hash(&[r2]));
        let (n3, r3) = build(true);
        assert_ne!(n1.coi_hash(&[r1]), n3.coi_hash(&[r3]));
    }

    #[test]
    fn coi_hash_sees_inversion_names_and_root_order() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and(a, b);
        let h = n.and(a, !b);
        assert_ne!(n.coi_hash(&[g]), n.coi_hash(&[!g]));
        assert_ne!(n.coi_hash(&[g]), n.coi_hash(&[h]));
        assert_ne!(n.coi_hash(&[g, h]), n.coi_hash(&[h, g]));

        let mut m = Netlist::new();
        let x = m.input("x");
        let y = m.input("b");
        let gm = m.and(x, y);
        // Same structure but a different input name hashes differently.
        assert_ne!(n.coi_hash(&[g]), m.coi_hash(&[gm]));
    }

    #[test]
    fn coi_hash_traverses_latches() {
        let mut n = Netlist::new();
        let d = n.input("d");
        let q0 = n.latch(false);
        n.set_latch_next(q0, d);
        let h0 = n.coi_hash(&[q0]);

        let mut m = Netlist::new();
        let d2 = m.input("d");
        let q1 = m.latch(true);
        m.set_latch_next(q1, d2);
        // Different reset value -> different hash.
        assert_ne!(m.coi_hash(&[q1]), h0);
    }
}
