//! AIGER (ASCII `aag`) export and import.
//!
//! The paper stresses that "no customized toolset is necessary" and that the
//! reference model is "portable to ... arbitrary formal frameworks". AIGER
//! is the lingua franca of open-source model checkers (ABC, aiger tools);
//! this module writes any netlist in ASCII AIGER 1.9 format — inputs,
//! latches, and the declared outputs — and reads it back.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::aig::{Netlist, Node, Signal};

/// Error produced when parsing malformed AIGER input.
#[derive(Debug)]
pub struct ParseAigerError {
    message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aiger parse error: {}", self.message)
    }
}

impl Error for ParseAigerError {}

fn err(message: impl Into<String>) -> ParseAigerError {
    ParseAigerError {
        message: message.into(),
    }
}

/// Writes the netlist in ASCII AIGER (`aag`) format.
///
/// Inputs and outputs are emitted in declaration order with their names in
/// the symbol table; probes are not exported (AIGER has no notion of them).
///
/// # Errors
/// Propagates I/O errors from the writer.
///
/// # Panics
/// Panics if a latch is unconnected.
pub fn write_aiger<W: Write>(writer: &mut W, netlist: &Netlist) -> io::Result<()> {
    netlist.assert_closed();
    // AIGER literal assignment: variable indices 1.. for inputs, latches,
    // then ANDs, in netlist order.
    let mut var_of_node: HashMap<usize, u64> = HashMap::new();
    let mut next_var = 1u64;
    let mut inputs = Vec::new();
    let mut latches = Vec::new();
    let mut ands = Vec::new();
    for id in netlist.node_ids() {
        match netlist.node(id) {
            Node::Const => {}
            Node::Input { .. } => {
                var_of_node.insert(id.index(), next_var);
                inputs.push(id);
                next_var += 1;
            }
            Node::Latch { .. } => {
                var_of_node.insert(id.index(), next_var);
                latches.push(id);
                next_var += 1;
            }
            Node::And(..) => {
                var_of_node.insert(id.index(), next_var);
                ands.push(id);
                next_var += 1;
            }
        }
    }
    let lit = |sig: Signal| -> u64 {
        let base = if sig.is_const() {
            0
        } else {
            var_of_node[&sig.node().index()] * 2
        };
        // The constant node is FALSE (literal 0); inversion adds 1.
        base + u64::from(sig.is_inverted())
    };

    let m = next_var - 1;
    writeln!(
        writer,
        "aag {} {} {} {} {}",
        m,
        inputs.len(),
        latches.len(),
        netlist.outputs().len(),
        ands.len()
    )?;
    for &i in &inputs {
        writeln!(writer, "{}", var_of_node[&i.index()] * 2)?;
    }
    for &l in &latches {
        if let Node::Latch { init, next, .. } = netlist.node(l) {
            writeln!(
                writer,
                "{} {} {}",
                var_of_node[&l.index()] * 2,
                lit(*next),
                u8::from(*init)
            )?;
        }
    }
    for (_, sig) in netlist.outputs() {
        writeln!(writer, "{}", lit(*sig))?;
    }
    for &a in &ands {
        if let Node::And(x, y) = netlist.node(a) {
            let (lx, ly) = (lit(*x), lit(*y));
            let (hi, lo) = if lx >= ly { (lx, ly) } else { (ly, lx) };
            writeln!(writer, "{} {} {}", var_of_node[&a.index()] * 2, hi, lo)?;
        }
    }
    // Symbol table.
    for (k, &i) in inputs.iter().enumerate() {
        if let Node::Input { name } = netlist.node(i) {
            writeln!(writer, "i{k} {name}")?;
        }
    }
    for (k, (name, _)) in netlist.outputs().iter().enumerate() {
        writeln!(writer, "o{k} {name}")?;
    }
    Ok(())
}

/// Reads an ASCII AIGER (`aag`) file into a netlist.
///
/// Latch reset values of `0`/`1` are honored; the AIGER "uninitialized"
/// reset is rejected. Symbol-table names are applied to inputs and outputs
/// (unnamed inputs get `i<k>`).
///
/// # Errors
/// Returns [`ParseAigerError`] on malformed input, unsupported features
/// (binary `aig` format, bad literals), or I/O failures.
pub fn parse_aiger<R: BufRead>(reader: &mut R) -> Result<Netlist, ParseAigerError> {
    let mut lines = Vec::new();
    for l in reader.lines() {
        lines.push(l.map_err(|e| err(format!("io error: {e}")))?);
    }
    let mut it = lines.iter();
    let header = it.next().ok_or_else(|| err("empty file"))?;
    let mut h = header.split_whitespace();
    if h.next() != Some("aag") {
        return Err(err("only the ASCII 'aag' format is supported"));
    }
    let nums: Vec<u64> = h
        .map(|t| t.parse().map_err(|_| err("bad header number")))
        .collect::<Result<_, _>>()?;
    let [m, i, l, o, a] = nums.as_slice() else {
        return Err(err("header must be 'aag M I L O A'"));
    };

    // First pass: read the raw records.
    fn take_line<'a>(it: &mut std::slice::Iter<'a, String>) -> Result<&'a str, ParseAigerError> {
        it.next()
            .map(String::as_str)
            .ok_or_else(|| err("unexpected end of file"))
    }
    let mut input_lits = Vec::new();
    for _ in 0..*i {
        let line = take_line(&mut it)?;
        input_lits.push(parse_u64(line)?);
    }
    let mut latch_recs = Vec::new();
    for _ in 0..*l {
        let line = take_line(&mut it)?;
        let parts: Vec<u64> = line
            .split_whitespace()
            .map(parse_u64)
            .collect::<Result<_, _>>()?;
        match parts.as_slice() {
            [cur, next] => latch_recs.push((*cur, *next, 0)),
            [cur, next, reset] => {
                if *reset > 1 {
                    return Err(err("uninitialized latch resets are unsupported"));
                }
                latch_recs.push((*cur, *next, *reset));
            }
            _ => return Err(err("bad latch record")),
        }
    }
    let mut output_lits = Vec::new();
    for _ in 0..*o {
        output_lits.push(parse_u64(take_line(&mut it)?)?);
    }
    let mut and_recs = Vec::new();
    for _ in 0..*a {
        let line = take_line(&mut it)?;
        let parts: Vec<u64> = line
            .split_whitespace()
            .map(parse_u64)
            .collect::<Result<_, _>>()?;
        let [lhs, r0, r1] = parts.as_slice() else {
            return Err(err("bad and record"));
        };
        and_recs.push((*lhs, *r0, *r1));
    }
    // Symbol table (optional).
    let mut input_names: HashMap<usize, String> = HashMap::new();
    let mut output_names: HashMap<usize, String> = HashMap::new();
    for line in it {
        if line.starts_with('c') {
            break;
        }
        if let Some(rest) = line.strip_prefix('i') {
            if let Some((k, name)) = rest.split_once(' ') {
                if let Ok(k) = k.parse() {
                    input_names.insert(k, name.to_string());
                }
            }
        } else if let Some(rest) = line.strip_prefix('o') {
            if let Some((k, name)) = rest.split_once(' ') {
                if let Ok(k) = k.parse() {
                    output_names.insert(k, name.to_string());
                }
            }
        }
    }

    // Second pass: rebuild. AIGER guarantees ANDs are in topological order
    // (lhs > rhs), so a single sweep suffices.
    let mut n = Netlist::new();
    let mut sig_of_var: Vec<Option<Signal>> = vec![None; *m as usize + 1];
    for (k, &litv) in input_lits.iter().enumerate() {
        if litv % 2 != 0 {
            return Err(err("inverted input definition"));
        }
        let name = input_names
            .get(&k)
            .cloned()
            .unwrap_or_else(|| format!("i{k}"));
        sig_of_var[(litv / 2) as usize] = Some(n.input(name));
    }
    let mut latch_handles = Vec::new();
    for &(cur, _, reset) in &latch_recs {
        if cur % 2 != 0 {
            return Err(err("inverted latch definition"));
        }
        let q = n.latch(reset == 1);
        sig_of_var[(cur / 2) as usize] = Some(q);
        latch_handles.push(q);
    }
    let resolve = |sig_of_var: &[Option<Signal>], litv: u64| -> Result<Signal, ParseAigerError> {
        if litv == 0 {
            return Ok(Signal::FALSE);
        }
        if litv == 1 {
            return Ok(Signal::TRUE);
        }
        let base = sig_of_var
            .get((litv / 2) as usize)
            .copied()
            .flatten()
            .ok_or_else(|| err(format!("undefined literal {litv}")))?;
        Ok(if litv % 2 == 1 { !base } else { base })
    };
    for &(lhs, r0, r1) in &and_recs {
        if lhs % 2 != 0 {
            return Err(err("inverted and definition"));
        }
        let x = resolve(&sig_of_var, r0)?;
        let y = resolve(&sig_of_var, r1)?;
        sig_of_var[(lhs / 2) as usize] = Some(n.and(x, y));
    }
    for (q, &(_, next, _)) in latch_handles.iter().zip(&latch_recs) {
        let d = resolve(&sig_of_var, next)?;
        n.set_latch_next(*q, d);
    }
    for (k, &litv) in output_lits.iter().enumerate() {
        let s = resolve(&sig_of_var, litv)?;
        let name = output_names
            .get(&k)
            .cloned()
            .unwrap_or_else(|| format!("o{k}"));
        n.output(name, s);
    }
    Ok(n)
}

fn parse_u64(s: &str) -> Result<u64, ParseAigerError> {
    s.trim()
        .parse()
        .map_err(|_| err(format!("bad number '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::BitSim;

    fn roundtrip(n: &Netlist) -> Netlist {
        let mut buf = Vec::new();
        write_aiger(&mut buf, n).expect("write to vec");
        parse_aiger(&mut buf.as_slice()).expect("parse own output")
    }

    #[test]
    fn combinational_roundtrip_preserves_function() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 6);
        let b = n.word_input("b", 6);
        let s = n.add(&a, &b);
        let lt = n.ult(&a, &b);
        for (i, &bit) in s.bits().iter().enumerate() {
            n.output(format!("s[{i}]"), bit);
        }
        n.output("lt", lt);
        let back = roundtrip(&n);
        assert_eq!(back.inputs().len(), 12);
        for va in [0u128, 1, 17, 63] {
            for vb in [0u128, 5, 62, 63] {
                let eval = |net: &Netlist| -> (u128, bool) {
                    let mut sim = BitSim::new(net);
                    for i in 0..6 {
                        sim.set(
                            net.find_input(&format!("a[{i}]")).expect("a"),
                            va >> i & 1 == 1,
                        );
                        sim.set(
                            net.find_input(&format!("b[{i}]")).expect("b"),
                            vb >> i & 1 == 1,
                        );
                    }
                    sim.eval();
                    let s: u128 = (0..6)
                        .map(|i| {
                            u128::from(sim.get(net.find_output(&format!("s[{i}]")).expect("s")))
                                << i
                        })
                        .sum();
                    (s, sim.get(net.find_output("lt").expect("lt")))
                };
                assert_eq!(eval(&n), eval(&back), "a={va} b={vb}");
            }
        }
    }

    #[test]
    fn sequential_roundtrip() {
        let mut n = Netlist::new();
        let d = n.input("d");
        let q1 = n.latch(true);
        let q2 = n.latch(false);
        n.set_latch_next(q1, d);
        let g = n.xor(q1, q2);
        n.set_latch_next(q2, g);
        n.output("q2", q2);
        let back = roundtrip(&n);
        assert_eq!(back.num_latches(), 2);
        // Step both for a few cycles and compare.
        let mut s0 = BitSim::new(&n);
        let mut s1 = BitSim::new(&back);
        for (cyc, bit) in [true, false, true, true, false].iter().enumerate() {
            s0.set(n.find_input("d").expect("d"), *bit);
            s1.set(back.find_input("d").expect("d"), *bit);
            s0.eval();
            s1.eval();
            assert_eq!(
                s0.get(n.find_output("q2").expect("q2")),
                s1.get(back.find_output("q2").expect("q2")),
                "cycle {cyc}"
            );
            s0.step();
            s1.step();
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_aiger(&mut "".as_bytes()).is_err());
        assert!(parse_aiger(&mut "aig 1 1 0 0 0\n2\n".as_bytes()).is_err());
        assert!(parse_aiger(&mut "aag 1 1 0 1 0\n2\n9\n".as_bytes()).is_err());
        assert!(parse_aiger(&mut "aag x\n".as_bytes()).is_err());
    }

    #[test]
    fn constants_roundtrip() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let t = n.and(a, Signal::TRUE);
        n.output("t", t);
        n.output("always0", Signal::FALSE);
        n.output("always1", Signal::TRUE);
        let back = roundtrip(&n);
        let mut sim = BitSim::new(&back);
        sim.set(back.find_input("a").expect("a"), true);
        sim.eval();
        assert!(sim.get(back.find_output("t").expect("t")));
        assert!(!sim.get(back.find_output("always0").expect("o")));
        assert!(sim.get(back.find_output("always1").expect("o")));
    }
}
