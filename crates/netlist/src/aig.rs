//! The netlist representation: an and-inverter graph (AIG) with registers.
//!
//! The paper maps all designs "into a netlist representation containing only
//! 2-input AND gates, inverters, and registers, using straight-forward logic
//! synthesis techniques". This module is that representation. Inverters are
//! free (a complement bit on every edge), structural hashing and constant
//! folding run at construction time, and named probe points let the
//! verification layer reference signals such as the reference FPU's `sha`.

use std::collections::HashMap;
use std::fmt;

/// A signal: an edge to a netlist node, possibly inverted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(u32);

impl Signal {
    /// The constant-false signal.
    pub const FALSE: Signal = Signal(0);
    /// The constant-true signal.
    pub const TRUE: Signal = Signal(1);

    #[inline]
    fn new(node: u32, inverted: bool) -> Signal {
        Signal(node << 1 | u32::from(inverted))
    }

    /// The node this signal points to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge is inverted.
    #[inline]
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is one of the two constant signals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 >> 1 == 0
    }
}

impl std::ops::Not for Signal {
    type Output = Signal;
    #[inline]
    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Signal::FALSE {
            write!(f, "0")
        } else if *self == Signal::TRUE {
            write!(f, "1")
        } else if self.is_inverted() {
            write!(f, "!s{}", self.0 >> 1)
        } else {
            write!(f, "s{}", self.0 >> 1)
        }
    }
}

/// Identifier of a netlist node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_raw(raw: u32) -> NodeId {
        NodeId(raw)
    }
}

/// A netlist node.
#[derive(Clone, Debug)]
pub enum Node {
    /// The constant-false node (always node 0).
    Const,
    /// A primary input.
    Input {
        /// Input name, unique within the netlist.
        name: String,
    },
    /// A 2-input AND gate.
    And(Signal, Signal),
    /// A register (edge-triggered latch). Its next-state function is set
    /// separately with [`Netlist::set_latch_next`] so that feedback loops can
    /// be closed after the downstream logic exists.
    Latch {
        /// Reset value.
        init: bool,
        /// Next-state function (`Signal::FALSE` until connected).
        next: Signal,
        /// Whether `next` has been connected.
        connected: bool,
    },
}

/// An and-inverter-graph netlist with registers, named outputs, and named
/// internal probe points.
///
/// Nodes are created in topological order (an AND's operands always exist
/// before it), so iterating node indices in order is a valid evaluation
/// order, with latches treated as state.
///
/// # Examples
///
/// ```
/// use fmaverify_netlist::{Netlist, Signal};
///
/// let mut n = Netlist::new();
/// let a = n.input("a");
/// let b = n.input("b");
/// let ab = n.and(a, b);
/// n.output("y", ab);
/// assert_eq!(n.eval_comb(&[("a", true), ("b", false)])["y"], false);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    nodes: Vec<Node>,
    /// Structural-hash table for AND gates.
    strash: HashMap<(Signal, Signal), u32>,
    inputs: Vec<NodeId>,
    latches: Vec<NodeId>,
    outputs: Vec<(String, Signal)>,
    probes: HashMap<String, Signal>,
    input_index: HashMap<String, usize>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Netlist {
        Netlist {
            nodes: vec![Node::Const],
            ..Netlist::default()
        }
    }

    /// Number of nodes (including the constant node).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Number of registers.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// The node table entry for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The primary inputs, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The registers, in creation order.
    pub fn latches(&self) -> &[NodeId] {
        &self.latches
    }

    /// The named outputs, in declaration order.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// The positive signal of node `id`.
    pub fn signal(&self, id: NodeId) -> Signal {
        Signal::new(id.0, false)
    }

    /// Creates a primary input.
    ///
    /// # Panics
    /// Panics if an input with this name already exists.
    pub fn input(&mut self, name: impl Into<String>) -> Signal {
        let name = name.into();
        assert!(
            !self.input_index.contains_key(&name),
            "duplicate input name '{name}'"
        );
        let id = self.nodes.len() as u32;
        self.input_index.insert(name.clone(), self.inputs.len());
        self.nodes.push(Node::Input { name });
        self.inputs.push(NodeId(id));
        Signal::new(id, false)
    }

    /// Looks up a primary input by name.
    pub fn find_input(&self, name: &str) -> Option<Signal> {
        self.input_index
            .get(name)
            .map(|&i| self.signal(self.inputs[i]))
    }

    /// Creates a register with the given reset value. Connect its next-state
    /// function later with [`Netlist::set_latch_next`].
    pub fn latch(&mut self, init: bool) -> Signal {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Latch {
            init,
            next: Signal::FALSE,
            connected: false,
        });
        self.latches.push(NodeId(id));
        Signal::new(id, false)
    }

    /// Connects the next-state function of a latch.
    ///
    /// # Panics
    /// Panics if `latch` is not a latch signal, is inverted, or was already
    /// connected.
    pub fn set_latch_next(&mut self, latch: Signal, next: Signal) {
        assert!(!latch.is_inverted(), "latch handle must be non-inverted");
        match &mut self.nodes[latch.node().index()] {
            Node::Latch {
                next: n, connected, ..
            } => {
                assert!(!*connected, "latch already connected");
                *n = next;
                *connected = true;
            }
            _ => panic!("signal is not a latch"),
        }
    }

    /// Creates (or finds) the AND of two signals, with constant folding and
    /// structural hashing.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        // Constant folding / trivial cases.
        if a == Signal::FALSE || b == Signal::FALSE || a == !b {
            return Signal::FALSE;
        }
        if a == Signal::TRUE {
            return b;
        }
        if b == Signal::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Signal::new(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), id);
        Signal::new(id, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        !self.and(!a, !b)
    }

    /// Exclusive OR (two AND gates plus inverters).
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let na_b = self.and(!a, b);
        let a_nb = self.and(a, !b);
        self.or(na_b, a_nb)
    }

    /// Equivalence.
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        !self.xor(a, b)
    }

    /// Multiplexer: `if sel then t else e`.
    pub fn mux(&mut self, sel: Signal, t: Signal, e: Signal) -> Signal {
        if t == e {
            return t;
        }
        let st = self.and(sel, t);
        let se = self.and(!sel, e);
        self.or(st, se)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: Signal, b: Signal) -> Signal {
        !self.and(a, !b)
    }

    /// Declares a named output.
    pub fn output(&mut self, name: impl Into<String>, sig: Signal) {
        self.outputs.push((name.into(), sig));
    }

    /// Attaches a name to an internal signal so that verification layers can
    /// reference it (e.g. the reference FPU's `sha` normalization shift
    /// amount used by the `C_sha` constraints).
    pub fn probe(&mut self, name: impl Into<String>, sig: Signal) {
        self.probes.insert(name.into(), sig);
    }

    /// Looks up a named probe point.
    pub fn find_probe(&self, name: &str) -> Option<Signal> {
        self.probes.get(name).copied()
    }

    /// All probe names (sorted, for deterministic iteration).
    pub fn probe_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.probes.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Looks up an output by name.
    pub fn find_output(&self, name: &str) -> Option<Signal> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Computes the combinational cone of influence of `roots`: every node
    /// reachable through AND gates, stopping at inputs, latches, and the
    /// constant. Returns a dense membership mask indexed by node.
    pub fn comb_cone(&self, roots: &[Signal]) -> Vec<bool> {
        let mut mask = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|s| s.node().0).collect();
        while let Some(id) = stack.pop() {
            if mask[id as usize] {
                continue;
            }
            mask[id as usize] = true;
            if let Node::And(a, b) = &self.nodes[id as usize] {
                stack.push(a.node().0);
                stack.push(b.node().0);
            }
        }
        mask
    }

    /// Computes the sequential cone of influence of `roots`, traversing latch
    /// next-state functions as well.
    pub fn seq_cone(&self, roots: &[Signal]) -> Vec<bool> {
        let mut mask = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|s| s.node().0).collect();
        while let Some(id) = stack.pop() {
            if mask[id as usize] {
                continue;
            }
            mask[id as usize] = true;
            match &self.nodes[id as usize] {
                Node::And(a, b) => {
                    stack.push(a.node().0);
                    stack.push(b.node().0);
                }
                Node::Latch { next, .. } => {
                    stack.push(next.node().0);
                }
                _ => {}
            }
        }
        mask
    }

    /// Counts the AND gates in the combinational cone of `roots`.
    pub fn cone_size(&self, roots: &[Signal]) -> usize {
        self.comb_cone(roots)
            .iter()
            .enumerate()
            .filter(|&(i, &m)| m && matches!(self.nodes[i], Node::And(..)))
            .count()
    }

    /// Counts the AND gates in the sequential cone of `roots`.
    pub fn seq_cone_size(&self, roots: &[Signal]) -> usize {
        self.seq_cone(roots)
            .iter()
            .enumerate()
            .filter(|&(i, &m)| m && matches!(self.nodes[i], Node::And(..)))
            .count()
    }

    /// Evaluates the combinational netlist for named input values, returning
    /// the outputs by name. Latches evaluate to their reset values. Intended
    /// for small hand-written tests; use [`crate::BitSim`] for bulk simulation.
    ///
    /// # Panics
    /// Panics if an input name is unknown or an input is missing.
    pub fn eval_comb(&self, inputs: &[(&str, bool)]) -> HashMap<String, bool> {
        let mut values = vec![false; self.nodes.len()];
        let mut provided = vec![false; self.inputs.len()];
        for (name, v) in inputs {
            let idx = *self
                .input_index
                .get(*name)
                .unwrap_or_else(|| panic!("unknown input '{name}'"));
            values[self.inputs[idx].index()] = *v;
            provided[idx] = true;
        }
        assert!(
            provided.iter().all(|&p| p),
            "all inputs must be provided to eval_comb"
        );
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Const | Node::Input { .. } => {}
                Node::Latch { init, .. } => values[i] = *init,
                Node::And(a, b) => {
                    let va = values[a.node().index()] ^ a.is_inverted();
                    let vb = values[b.node().index()] ^ b.is_inverted();
                    values[i] = va && vb;
                }
            }
        }
        self.outputs
            .iter()
            .map(|(name, s)| (name.clone(), values[s.node().index()] ^ s.is_inverted()))
            .collect()
    }

    /// The maximum AND-gate depth from any input/latch/constant to the given
    /// roots — the combinational logic depth that pipelining would have to
    /// cover.
    pub fn logic_depth(&self, roots: &[Signal]) -> usize {
        let cone = self.comb_cone(roots);
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for id in self.node_ids() {
            if !cone[id.index()] {
                continue;
            }
            if let Node::And(a, b) = &self.nodes[id.index()] {
                let d = 1 + depth[a.node().index()].max(depth[b.node().index()]);
                depth[id.index()] = d;
                max = max.max(d);
            }
        }
        max
    }

    /// Iterates node ids in topological order (which is creation order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Checks that every latch has been connected.
    pub fn assert_closed(&self) {
        for &l in &self.latches {
            if let Node::Latch { connected, .. } = &self.nodes[l.index()] {
                assert!(*connected, "latch {l:?} was never connected");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_folding() {
        let mut n = Netlist::new();
        let a = n.input("a");
        assert_eq!(n.and(a, Signal::FALSE), Signal::FALSE);
        assert_eq!(n.and(a, Signal::TRUE), a);
        assert_eq!(n.and(a, a), a);
        assert_eq!(n.and(a, !a), Signal::FALSE);
        assert_eq!(n.or(a, Signal::TRUE), Signal::TRUE);
        assert_eq!(n.or(a, Signal::FALSE), a);
    }

    #[test]
    fn structural_hashing() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let g1 = n.and(a, b);
        let g2 = n.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(n.num_ands(), 1);
        let x1 = n.xor(a, b);
        let x2 = n.xor(a, b);
        assert_eq!(x1, x2);
    }

    #[test]
    fn eval_gates() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let m = n.mux(a, b, !b);
        n.output("xor", x);
        n.output("mux", m);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = n.eval_comb(&[("a", va), ("b", vb)]);
            assert_eq!(out["xor"], va != vb);
            assert_eq!(out["mux"], if va { vb } else { !vb });
        }
    }

    #[test]
    fn cone_of_influence() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let ab = n.and(a, b);
        let _unused = n.and(b, c);
        let cone = n.comb_cone(&[ab]);
        assert!(cone[a.node().index()]);
        assert!(cone[b.node().index()]);
        assert!(!cone[c.node().index()]);
        assert_eq!(n.cone_size(&[ab]), 1);
    }

    #[test]
    fn latch_wiring() {
        let mut n = Netlist::new();
        let d = n.input("d");
        let q = n.latch(false);
        n.set_latch_next(q, d);
        n.assert_closed();
        assert_eq!(n.num_latches(), 1);
        // Sequential cone of q reaches d.
        let cone = n.seq_cone(&[q]);
        assert!(cone[d.node().index()]);
        // Combinational cone stops at the latch.
        let ccone = n.comb_cone(&[q]);
        assert!(!ccone[d.node().index()]);
    }

    #[test]
    #[should_panic]
    fn duplicate_input_panics() {
        let mut n = Netlist::new();
        n.input("a");
        n.input("a");
    }

    #[test]
    #[should_panic]
    fn unconnected_latch_panics() {
        let mut n = Netlist::new();
        n.latch(false);
        n.assert_closed();
    }

    #[test]
    fn probes() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and(a, b);
        n.probe("internal", g);
        assert_eq!(n.find_probe("internal"), Some(g));
        assert_eq!(n.find_probe("nope"), None);
        assert_eq!(n.probe_names(), vec!["internal"]);
    }
}
