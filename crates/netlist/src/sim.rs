//! Netlist simulation: single-pattern sequential simulation for driving
//! designs cycle by cycle, and 64-way bit-parallel simulation used by the
//! sweeping engine and by the constrained-random validation flow (the
//! paper's "portable to simulation" claim).

use crate::aig::{Netlist, Node, Signal};
use crate::word::Word;

/// Single-pattern simulator with sequential (latch) state.
///
/// # Examples
///
/// ```
/// use fmaverify_netlist::{BitSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.input("a");
/// let q = n.latch(false);
/// n.set_latch_next(q, a);
/// let mut sim = BitSim::new(&n);
/// sim.set(a, true);
/// sim.step();
/// assert!(sim.get(q)); // the latch captured `a`
/// ```
#[derive(Debug)]
pub struct BitSim<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
}

impl<'a> BitSim<'a> {
    /// Creates a simulator with latches at their reset values and all inputs
    /// at 0.
    pub fn new(netlist: &'a Netlist) -> BitSim<'a> {
        let mut values = vec![false; netlist.num_nodes()];
        for id in netlist.node_ids() {
            if let Node::Latch { init, .. } = netlist.node(id) {
                values[id.index()] = *init;
            }
        }
        let mut sim = BitSim { netlist, values };
        sim.eval();
        sim
    }

    /// Sets a primary input.
    ///
    /// # Panics
    /// Panics if `sig` is not a non-inverted primary-input signal.
    pub fn set(&mut self, sig: Signal, v: bool) {
        assert!(!sig.is_inverted(), "input handle must be non-inverted");
        assert!(
            matches!(self.netlist.node(sig.node()), Node::Input { .. }),
            "signal is not a primary input"
        );
        self.values[sig.node().index()] = v;
    }

    /// Sets a word of inputs from an integer (LSB first).
    pub fn set_word(&mut self, w: &Word, value: u128) {
        for (i, &b) in w.bits().iter().enumerate() {
            self.set(b, value >> i & 1 == 1);
        }
    }

    /// Re-evaluates all combinational logic for the current inputs and latch
    /// state.
    pub fn eval(&mut self) {
        for id in self.netlist.node_ids() {
            if let Node::And(a, b) = self.netlist.node(id) {
                let va = self.values[a.node().index()] ^ a.is_inverted();
                let vb = self.values[b.node().index()] ^ b.is_inverted();
                self.values[id.index()] = va && vb;
            }
        }
    }

    /// Evaluates combinational logic, then clocks every latch.
    pub fn step(&mut self) {
        self.eval();
        let mut next_vals = Vec::with_capacity(self.netlist.num_latches());
        for &l in self.netlist.latches() {
            if let Node::Latch { next, .. } = self.netlist.node(l) {
                next_vals.push(self.values[next.node().index()] ^ next.is_inverted());
            }
        }
        for (&l, v) in self.netlist.latches().iter().zip(next_vals) {
            self.values[l.index()] = v;
        }
        self.eval();
    }

    /// Current value of a signal (valid after [`BitSim::eval`] or
    /// [`BitSim::step`]).
    pub fn get(&self, sig: Signal) -> bool {
        self.values[sig.node().index()] ^ sig.is_inverted()
    }

    /// Current value of a word as an integer.
    ///
    /// # Panics
    /// Panics if the word is wider than 128 bits.
    pub fn get_word(&self, w: &Word) -> u128 {
        assert!(w.width() <= 128, "word too wide for u128");
        w.bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| u128::from(self.get(b)) << i)
            .sum()
    }

    /// Resets latches to their initial values and clears inputs.
    pub fn reset(&mut self) {
        for v in &mut self.values {
            *v = false;
        }
        for id in self.netlist.node_ids() {
            if let Node::Latch { init, .. } = self.netlist.node(id) {
                self.values[id.index()] = *init;
            }
        }
        self.eval();
    }
}

/// 64-way bit-parallel combinational simulator. Latches are treated as free
/// cut points (extra pattern inputs), which is how the sweeping engine views
/// a sequential netlist.
#[derive(Debug)]
pub struct ParallelSim<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
}

impl<'a> ParallelSim<'a> {
    /// Creates a parallel simulator.
    pub fn new(netlist: &'a Netlist) -> ParallelSim<'a> {
        ParallelSim {
            netlist,
            values: vec![0; netlist.num_nodes()],
        }
    }

    /// Evaluates all nodes for 64 patterns at once. `input_patterns` supplies
    /// one word per primary input (creation order), `latch_patterns` one per
    /// latch (creation order).
    ///
    /// # Panics
    /// Panics if pattern counts do not match the netlist.
    pub fn eval(&mut self, input_patterns: &[u64], latch_patterns: &[u64]) {
        assert_eq!(input_patterns.len(), self.netlist.inputs().len());
        assert_eq!(latch_patterns.len(), self.netlist.latches().len());
        for (&id, &p) in self.netlist.inputs().iter().zip(input_patterns) {
            self.values[id.index()] = p;
        }
        for (&id, &p) in self.netlist.latches().iter().zip(latch_patterns) {
            self.values[id.index()] = p;
        }
        for id in self.netlist.node_ids() {
            if let Node::And(a, b) = self.netlist.node(id) {
                let va = self.values[a.node().index()] ^ mask(a.is_inverted());
                let vb = self.values[b.node().index()] ^ mask(b.is_inverted());
                self.values[id.index()] = va & vb;
            }
        }
    }

    /// The 64-pattern value vector of a signal after [`ParallelSim::eval`].
    pub fn get(&self, sig: Signal) -> u64 {
        self.values[sig.node().index()] ^ mask(sig.is_inverted())
    }
}

#[inline]
fn mask(b: bool) -> u64 {
    if b {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_steps() {
        // 2-bit counter built from latches.
        let mut n = Netlist::new();
        let q0 = n.latch(false);
        let q1 = n.latch(false);
        let n0 = !q0;
        let t = n.xor(q1, q0);
        n.set_latch_next(q0, n0);
        n.set_latch_next(q1, t);
        let mut sim = BitSim::new(&n);
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push((sim.get(q1), sim.get(q0)));
            sim.step();
        }
        assert_eq!(
            seen,
            vec![
                (false, false),
                (false, true),
                (true, false),
                (true, true),
                (false, false)
            ]
        );
        sim.reset();
        assert_eq!((sim.get(q1), sim.get(q0)), (false, false));
    }

    #[test]
    fn word_roundtrip() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 12);
        let b = n.word_input("b", 12);
        let s = n.add(&a, &b);
        let mut sim = BitSim::new(&n);
        sim.set_word(&a, 0x5a3);
        sim.set_word(&b, 0x0ff);
        sim.eval();
        assert_eq!(sim.get_word(&s), (0x5a3 + 0xff) & 0xfff);
    }

    #[test]
    fn parallel_matches_scalar() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let g = {
            let x = n.xor(a, b);
            n.or(x, c)
        };
        let mut psim = ParallelSim::new(&n);
        // Exhaustive 8 patterns in one 64-bit word.
        let pa = 0b10101010u64;
        let pb = 0b11001100u64;
        let pc = 0b11110000u64;
        psim.eval(&[pa, pb, pc], &[]);
        let got = psim.get(g) & 0xff;
        let mut expect = 0u64;
        for i in 0..8 {
            let va = pa >> i & 1 == 1;
            let vb = pb >> i & 1 == 1;
            let vc = pc >> i & 1 == 1;
            if (va != vb) || vc {
                expect |= 1 << i;
            }
        }
        assert_eq!(got, expect);
        // Inverted edges read correctly.
        assert_eq!(psim.get(!g) & 0xff, !expect & 0xff);
    }
}
