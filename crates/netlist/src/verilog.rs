//! Structural Verilog export.
//!
//! Emits the netlist as a flat gate-level Verilog module (2-input ANDs and
//! inverters, plus flip-flops for registers), so designs and miters built
//! here can be consumed by standard EDA flows — another face of the paper's
//! "portable to ... arbitrary formal frameworks; no customized toolset is
//! necessary".

use std::collections::HashMap;
use std::io::{self, Write};

use crate::aig::{Netlist, Node, Signal};

/// Sanitizes a netlist name into a Verilog identifier (`a[3]` → `a_3_`).
fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Writes the netlist as a structural Verilog module named `module_name`.
///
/// Registers become positive-edge flip-flops on a generated `clk` port with
/// a synchronous `rst` that loads the reset values.
///
/// # Errors
/// Propagates I/O errors from the writer.
///
/// # Panics
/// Panics if a latch is unconnected.
pub fn write_verilog<W: Write>(
    writer: &mut W,
    netlist: &Netlist,
    module_name: &str,
) -> io::Result<()> {
    netlist.assert_closed();
    let mut name_of: HashMap<usize, String> = HashMap::new();
    let mut ports: Vec<String> = Vec::new();
    let sequential = netlist.num_latches() > 0;
    if sequential {
        ports.push("clk".to_string());
        ports.push("rst".to_string());
    }
    for &id in netlist.inputs() {
        if let Node::Input { name } = netlist.node(id) {
            let v = ident(name);
            ports.push(v.clone());
            name_of.insert(id.index(), v);
        }
    }
    let out_ports: Vec<(String, Signal)> = netlist
        .outputs()
        .iter()
        .map(|(n, s)| (ident(n), *s))
        .collect();
    ports.extend(out_ports.iter().map(|(n, _)| n.clone()));

    writeln!(writer, "module {module_name} (")?;
    writeln!(writer, "  {}", ports.join(",\n  "))?;
    writeln!(writer, ");")?;
    if sequential {
        writeln!(writer, "  input clk;")?;
        writeln!(writer, "  input rst;")?;
    }
    for &id in netlist.inputs() {
        writeln!(writer, "  input {};", name_of[&id.index()])?;
    }
    for (n, _) in &out_ports {
        writeln!(writer, "  output {n};")?;
    }
    // Internal wires / regs.
    for id in netlist.node_ids() {
        match netlist.node(id) {
            Node::And(..) => {
                let w = format!("n{}", id.index());
                writeln!(writer, "  wire {w};")?;
                name_of.insert(id.index(), w);
            }
            Node::Latch { .. } => {
                let w = format!("q{}", id.index());
                writeln!(writer, "  reg {w};")?;
                name_of.insert(id.index(), w);
            }
            _ => {}
        }
    }
    let lit = |name_of: &HashMap<usize, String>, s: Signal| -> String {
        let base = if s.is_const() {
            "1'b0".to_string()
        } else {
            name_of[&s.node().index()].clone()
        };
        if s.is_inverted() {
            if s.is_const() {
                "1'b1".to_string()
            } else {
                format!("~{base}")
            }
        } else {
            base
        }
    };
    // AND gates.
    for id in netlist.node_ids() {
        if let Node::And(a, b) = netlist.node(id) {
            writeln!(
                writer,
                "  assign {} = {} & {};",
                name_of[&id.index()],
                lit(&name_of, *a),
                lit(&name_of, *b)
            )?;
        }
    }
    // Registers.
    if sequential {
        writeln!(writer, "  always @(posedge clk) begin")?;
        writeln!(writer, "    if (rst) begin")?;
        for &l in netlist.latches() {
            if let Node::Latch { init, .. } = netlist.node(l) {
                writeln!(
                    writer,
                    "      {} <= 1'b{};",
                    name_of[&l.index()],
                    u8::from(*init)
                )?;
            }
        }
        writeln!(writer, "    end else begin")?;
        for &l in netlist.latches() {
            if let Node::Latch { next, .. } = netlist.node(l) {
                writeln!(
                    writer,
                    "      {} <= {};",
                    name_of[&l.index()],
                    lit(&name_of, *next)
                )?;
            }
        }
        writeln!(writer, "    end")?;
        writeln!(writer, "  end")?;
    }
    // Outputs.
    for ((n, s), _) in out_ports.iter().zip(netlist.outputs()) {
        writeln!(writer, "  assign {} = {};", n, lit(&name_of, *s))?;
    }
    writeln!(writer, "endmodule")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(n: &Netlist) -> String {
        let mut buf = Vec::new();
        write_verilog(&mut buf, n, "dut").expect("write to vec");
        String::from_utf8(buf).expect("ascii")
    }

    #[test]
    fn combinational_module() {
        let mut n = Netlist::new();
        let a = n.word_input("a", 2);
        let b = n.word_input("b", 2);
        let s = n.add(&a, &b);
        for (i, &bit) in s.bits().iter().enumerate() {
            n.output(format!("s[{i}]"), bit);
        }
        let text = render(&n);
        assert!(text.starts_with("module dut ("));
        assert!(text.contains("input a_0_;"));
        assert!(text.contains("output s_1_;"));
        assert!(text.contains(" & "));
        assert!(text.ends_with("endmodule\n"));
        assert!(!text.contains("clk"), "combinational module has no clock");
        // Every assign's operands are declared.
        for line in text
            .lines()
            .filter(|l| l.trim_start().starts_with("assign"))
        {
            assert!(line.contains('='));
        }
    }

    #[test]
    fn sequential_module() {
        let mut n = Netlist::new();
        let d = n.input("d");
        let q = n.latch(true);
        n.set_latch_next(q, d);
        n.output("q", q);
        let text = render(&n);
        assert!(text.contains("input clk;"));
        assert!(text.contains("always @(posedge clk)"));
        assert!(text.contains("<= 1'b1;"), "reset value emitted");
        assert!(text.contains("<= d;"));
    }

    #[test]
    fn constant_outputs() {
        let mut n = Netlist::new();
        n.input("x");
        n.output("zero", Signal::FALSE);
        n.output("one", Signal::TRUE);
        let text = render(&n);
        assert!(text.contains("assign zero = 1'b0;"));
        assert!(text.contains("assign one = 1'b1;"));
    }

    #[test]
    fn identifier_sanitization() {
        assert_eq!(ident("a[0]"), "a_0_");
        assert_eq!(ident("ref.result[3]"), "ref_result_3_");
        assert_eq!(ident("3x"), "_3x");
        assert_eq!(ident("plain_name"), "plain_name");
    }
}
