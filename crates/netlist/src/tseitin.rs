//! Tseitin encoding of netlist cones into a CDCL solver.
//!
//! The SAT engine "operates upon an unfolded combinational netlist"; this
//! module performs that translation, encoding only the cone of influence of
//! the requested signals (which is how the solver "automatically removes
//! unused shifters from the cone-of-influence" in the far-out cases).

use std::collections::HashMap;

use fmaverify_sat::{Cnf, Lit, Solver, Var};

use crate::aig::{Netlist, Node, Signal};

/// Incrementally encodes signals of one netlist into one [`Solver`].
///
/// Latches are treated as free variables (cut points); unroll the netlist
/// first (see [`crate::unroll`]) for sequential checks.
#[derive(Debug)]
pub struct SatEncoder {
    map: HashMap<u32, Lit>,
    const_false: Option<Lit>,
}

impl Default for SatEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl SatEncoder {
    /// Creates an empty encoder.
    pub fn new() -> SatEncoder {
        SatEncoder {
            map: HashMap::new(),
            const_false: None,
        }
    }

    /// Returns the SAT literal for `sig`, encoding its cone into `solver` on
    /// first use.
    pub fn lit(&mut self, netlist: &Netlist, solver: &mut Solver, sig: Signal) -> Lit {
        let body = self.node_lit(netlist, solver, sig.node().index() as u32);
        if sig.is_inverted() {
            !body
        } else {
            body
        }
    }

    fn node_lit(&mut self, netlist: &Netlist, solver: &mut Solver, node: u32) -> Lit {
        if let Some(&l) = self.map.get(&node) {
            return l;
        }
        // Iterative DFS to avoid stack overflow on deep cones.
        let mut stack = vec![node];
        while let Some(&id) = stack.last() {
            if self.map.contains_key(&id) {
                stack.pop();
                continue;
            }
            match netlist.node(crate::aig::NodeId::from_raw(id)) {
                Node::Const => {
                    let l = *self.const_false.get_or_insert_with(|| {
                        let v = solver.new_var().positive();
                        solver.add_clause(&[!v]);
                        v
                    });
                    self.map.insert(id, l);
                    stack.pop();
                }
                Node::Input { .. } | Node::Latch { .. } => {
                    let l = solver.new_var().positive();
                    self.map.insert(id, l);
                    stack.pop();
                }
                Node::And(a, b) => {
                    let (a, b) = (*a, *b);
                    let need_a = !self.map.contains_key(&(a.node().index() as u32));
                    let need_b = !self.map.contains_key(&(b.node().index() as u32));
                    if need_a {
                        stack.push(a.node().index() as u32);
                    }
                    if need_b {
                        stack.push(b.node().index() as u32);
                    }
                    if !need_a && !need_b {
                        let la = self.edge_lit(a);
                        let lb = self.edge_lit(b);
                        let z = solver.new_var().positive();
                        solver.add_clause(&[!z, la]);
                        solver.add_clause(&[!z, lb]);
                        solver.add_clause(&[z, !la, !lb]);
                        self.map.insert(id, z);
                        stack.pop();
                    }
                }
            }
        }
        self.map[&node]
    }

    #[inline]
    fn edge_lit(&self, sig: Signal) -> Lit {
        let l = self.map[&(sig.node().index() as u32)];
        if sig.is_inverted() {
            !l
        } else {
            l
        }
    }

    /// Returns the SAT literal previously assigned to `sig`, if its node has
    /// been encoded.
    pub fn existing_lit(&self, sig: Signal) -> Option<Lit> {
        self.map
            .get(&(sig.node().index() as u32))
            .map(|&l| if sig.is_inverted() { !l } else { l })
    }
}

/// Encodes the combinational cones of `roots` into a standalone [`Cnf`]
/// (for export to external solvers), returning one literal per root.
/// Latches are treated as free variables, and primary inputs occupy the
/// first variable indices in netlist order so models can be decoded.
pub fn encode_to_cnf(netlist: &Netlist, roots: &[Signal]) -> (Cnf, Vec<Lit>) {
    let mut cnf = Cnf::new();
    let mut map: HashMap<usize, Lit> = HashMap::new();
    let mut fresh = 0usize;
    // Inputs first, in order.
    for &id in netlist.inputs() {
        map.insert(id.index(), Var::from_index(fresh).positive());
        fresh += 1;
    }
    let cone = netlist.comb_cone(roots);
    let var_of = |map: &mut HashMap<usize, Lit>, fresh: &mut usize, node: usize| -> Lit {
        *map.entry(node).or_insert_with(|| {
            let v = Var::from_index(*fresh).positive();
            *fresh += 1;
            v
        })
    };
    for id in netlist.node_ids() {
        if !cone[id.index()] {
            continue;
        }
        match netlist.node(id) {
            Node::Const => {
                let z = var_of(&mut map, &mut fresh, id.index());
                cnf.add_clause(&[!z]);
            }
            Node::Input { .. } | Node::Latch { .. } => {
                let _ = var_of(&mut map, &mut fresh, id.index());
            }
            Node::And(a, b) => {
                let la = {
                    let l = var_of(&mut map, &mut fresh, a.node().index());
                    if a.is_inverted() {
                        !l
                    } else {
                        l
                    }
                };
                let lb = {
                    let l = var_of(&mut map, &mut fresh, b.node().index());
                    if b.is_inverted() {
                        !l
                    } else {
                        l
                    }
                };
                let z = var_of(&mut map, &mut fresh, id.index());
                cnf.add_clause(&[!z, la]);
                cnf.add_clause(&[!z, lb]);
                cnf.add_clause(&[z, !la, !lb]);
            }
        }
    }
    let root_lits = roots
        .iter()
        .map(|&r| {
            let l = var_of(&mut map, &mut fresh, r.node().index());
            if r.is_inverted() {
                !l
            } else {
                l
            }
        })
        .collect();
    cnf.num_vars = cnf.num_vars.max(fresh);
    (cnf, root_lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmaverify_sat::SolveResult;

    #[test]
    fn encode_and_solve() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let mut solver = Solver::new();
        let mut enc = SatEncoder::new();
        let lx = enc.lit(&n, &mut solver, x);
        let la = enc.lit(&n, &mut solver, a);
        let lb = enc.lit(&n, &mut solver, b);
        // x AND a AND b is unsatisfiable (xor of equal bits).
        assert_eq!(
            solver.solve_with_assumptions(&[lx, la, lb]),
            SolveResult::Unsat
        );
        // x AND a AND !b is satisfiable.
        assert_eq!(
            solver.solve_with_assumptions(&[lx, la, !lb]),
            SolveResult::Sat
        );
    }

    #[test]
    fn const_signal() {
        let n = {
            let mut n = Netlist::new();
            n.input("a");
            n
        };
        let mut solver = Solver::new();
        let mut enc = SatEncoder::new();
        let lf = enc.lit(&n, &mut solver, Signal::FALSE);
        let lt = enc.lit(&n, &mut solver, Signal::TRUE);
        assert_eq!(solver.solve_with_assumptions(&[lf]), SolveResult::Unsat);
        assert_eq!(solver.solve_with_assumptions(&[lt]), SolveResult::Sat);
    }

    #[test]
    fn adder_equivalence_via_sat() {
        // a + b == b + a proven by SAT on the miter.
        let mut n = Netlist::new();
        let a = n.word_input("a", 8);
        let b = n.word_input("b", 8);
        let s1 = n.add(&a, &b);
        let s2 = n.add(&b, &a);
        let eq = n.eq_word(&s1, &s2);
        let mut solver = Solver::new();
        let mut enc = SatEncoder::new();
        let l = enc.lit(&n, &mut solver, !eq);
        assert_eq!(solver.solve_with_assumptions(&[l]), SolveResult::Unsat);
    }

    #[test]
    fn cnf_export_matches_solver() {
        use fmaverify_sat::SolveResult;
        let mut n = Netlist::new();
        let a = n.word_input("a", 5);
        let b = n.word_input("b", 5);
        let s1 = n.add(&a, &b);
        let nb = n.neg(&b);
        let s2 = n.sub(&a, &nb);
        let d = n.xor_word(&s1, &s2);
        let miter = n.or_reduce(&d);
        let (cnf, roots) = encode_to_cnf(&n, &[miter]);
        let mut solver = cnf.to_solver();
        // miter asserted: UNSAT (the adders are equivalent).
        assert_eq!(
            solver.solve_with_assumptions(&[roots[0]]),
            SolveResult::Unsat
        );
        // negated: SAT.
        assert_eq!(
            solver.solve_with_assumptions(&[!roots[0]]),
            SolveResult::Sat
        );
    }

    #[test]
    fn deep_chain_no_overflow() {
        // A long AND chain exercises the iterative DFS.
        let mut n = Netlist::new();
        let mut cur = n.input("x0");
        for i in 1..20_000 {
            let next = n.input(format!("x{i}"));
            cur = n.and(cur, next);
        }
        let mut solver = Solver::new();
        let mut enc = SatEncoder::new();
        let l = enc.lit(&n, &mut solver, cur);
        assert_eq!(solver.solve_with_assumptions(&[l]), SolveResult::Sat);
    }
}
