//! A std-only, dependency-light drop-in for the subset of the `proptest`
//! crate API used by this workspace.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the real `proptest` cannot be fetched. This shim keeps the
//! property tests source-compatible: random generation driven by a
//! deterministic seed, `Strategy` combinators (`prop_map`, `prop_flat_map`,
//! `prop_recursive`, `prop_oneof!`, `prop::collection::vec`), and the
//! `proptest!` macro with both `name in strategy` and `name: Type`
//! parameter forms.
//!
//! Differences from real proptest, by design: no shrinking (a failing case
//! reports the iteration seed so it can be replayed), and no persistence of
//! failing cases. Override the iteration count per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//! the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Per-block test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Resolves the iteration count: the `PROPTEST_CASES` environment variable
/// overrides the in-source configuration (useful for quick smoke runs).
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// A generator of random values of one type.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and `f`
    /// wraps an inner strategy into one more level of structure. `depth`
    /// bounds the recursion; the size hints of real proptest are accepted
    /// and ignored.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branch = f(level).boxed();
            let leaf = leaf.clone();
            // Lean toward leaves so expected tree sizes stay bounded.
            level = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.gen_range(0u32..3) == 0 {
                    branch.gen_value(rng)
                } else {
                    leaf.gen_value(rng)
                }
            });
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng: &mut TestRng| s.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// A strategy returning a constant.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// A uniform union of the given alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy producing uniform values of a primitive type.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl<T> Default for AnyPrimitive<T> {
    fn default() -> Self {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}
impl_arbitrary_prim!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// The canonical strategy for `T` (used for `name: Type` parameters).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Strategy namespaces (shim of the `proptest::prop` module tree).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Uniform `true`/`false`.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn gen_value(&self, rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Acceptable length specifications for [`vec`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }
        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }
        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty length range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// A strategy producing vectors of values drawn from `element`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.gen_value(rng)).collect()
            }
        }

        /// Vectors of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current random case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests (shim of `proptest::proptest!`).
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn mixed(a in 0u32..10, flag: bool) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // NOTE: the internal `@tests`/`@run` arms must precede the public entry
    // arms — macro_rules tries arms top to bottom, and the catch-all entry
    // arm would otherwise swallow every internal recursion and loop until
    // the recursion limit.
    (@tests ($config:expr) ) => {};
    (@tests ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolve_cases(&config);
            // Deterministic per-test seed: stable across runs, distinct per
            // test name.
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case_idx in 0..cases as u64 {
                let case_seed = seed ^ case_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut __pt_rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(case_seed);
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $crate::proptest!(@run __pt_rng [] $($params)* => $body);
                }));
                if result.is_err() {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (replay seed {:#x})",
                        case_idx + 1, cases, stringify!($name), case_seed
                    );
                    ::std::panic::resume_unwind(result.unwrap_err());
                }
            }
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };

    // Parameter muncher: accumulate `pat = strategy-expr` pairs, then emit
    // the bindings and the body inside a `loop` so `prop_assume!` can
    // `continue` (i.e. skip) the sample.
    (@run $rng:ident [$(($p:pat, $s:expr))*] => $body:block) => {
        #[allow(clippy::never_loop, unused_variables)]
        loop {
            $(let $p = $crate::Strategy::gen_value(&$s, &mut $rng);)*
            $body
            break;
        }
    };
    (@run $rng:ident [$($acc:tt)*] $x:ident in $strat:expr, $($rest:tt)*) => {
        $crate::proptest!(@run $rng [$($acc)* ($x, ($strat))] $($rest)*)
    };
    (@run $rng:ident [$($acc:tt)*] $x:ident in $strat:expr => $body:block) => {
        $crate::proptest!(@run $rng [$($acc)* ($x, ($strat))] => $body)
    };
    (@run $rng:ident [$($acc:tt)*] mut $x:ident in $strat:expr, $($rest:tt)*) => {
        $crate::proptest!(@run $rng [$($acc)* (mut $x, ($strat))] $($rest)*)
    };
    (@run $rng:ident [$($acc:tt)*] mut $x:ident in $strat:expr => $body:block) => {
        $crate::proptest!(@run $rng [$($acc)* (mut $x, ($strat))] => $body)
    };
    (@run $rng:ident [$($acc:tt)*] $x:ident : $ty:ty, $($rest:tt)*) => {
        $crate::proptest!(@run $rng [$($acc)* ($x, ($crate::any::<$ty>()))] $($rest)*)
    };
    (@run $rng:ident [$($acc:tt)*] $x:ident : $ty:ty => $body:block) => {
        $crate::proptest!(@run $rng [$($acc)* ($x, ($crate::any::<$ty>()))] => $body)
    };
    (@run $rng:ident [$($acc:tt)*] mut $x:ident : $ty:ty, $($rest:tt)*) => {
        $crate::proptest!(@run $rng [$($acc)* (mut $x, ($crate::any::<$ty>()))] $($rest)*)
    };
    (@run $rng:ident [$($acc:tt)*] mut $x:ident : $ty:ty => $body:block) => {
        $crate::proptest!(@run $rng [$($acc)* (mut $x, ($crate::any::<$ty>()))] => $body)
    };

    // Public entry: with a block-level config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    // Public entry: default config.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// FNV-1a hash of a string, for stable per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn in_and_typed_params_mix(a in 1u32..10, b: bool, c in 0usize..=3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(c <= 3);
            let _ = b;
        }

        #[test]
        fn assume_skips(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in prop::collection::vec((0usize..5, prop::bool::ANY), 1..=4)) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&(n, _)| n < 5));
        }
    }

    #[test]
    fn oneof_union_and_recursive() {
        #[derive(Debug, Clone)]
        enum E {
            #[allow(dead_code)]
            Leaf(bool),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::Leaf(_) => 1,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = prop_oneof![prop::bool::ANY.prop_map(E::Leaf)];
        let expr = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = <TestRng as crate::__SeedableRng>::seed_from_u64(3);
        let mut saw_pair = false;
        for _ in 0..200 {
            let e = expr.gen_value(&mut rng);
            assert!(depth(&e) <= 5);
            saw_pair |= matches!(e, E::Pair(..));
        }
        assert!(saw_pair, "recursion should produce non-leaf values");
    }

    #[test]
    fn flat_map_threads_values() {
        let strat = (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..10, n));
        let mut rng = <TestRng as crate::__SeedableRng>::seed_from_u64(5);
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
