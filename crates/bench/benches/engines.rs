//! Criterion micro-benchmarks of the formal engines on fixed verification
//! cases (the per-case costs that Table 1 aggregates).

use criterion::{criterion_group, criterion_main, Criterion};
use fmaverify::{
    build_harness, check_miter_bdd_parts, check_miter_sat_parts, paper_order, BddEngineOptions,
    CaseId, HarnessOptions, Minimize, SatEngineOptions, ShaCase,
};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_softfloat::FpFormat;

fn tiny_cfg() -> FpuConfig {
    FpuConfig {
        format: FpFormat::new(3, 2),
        denormals: DenormalMode::FlushToZero,
    }
}

fn bench_bdd_overlap_case(c: &mut Criterion) {
    let cfg = tiny_cfg();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let case = CaseId::OverlapNoCancel { delta: 3 };
    let parts = h.case_constraint_parts(FpuOp::Fma, case);
    let order = paper_order(&h, Some(3));
    c.bench_function("bdd_overlap_no_cancel_case", |b| {
        b.iter(|| {
            let out = check_miter_bdd_parts(
                &h.netlist,
                h.miter,
                &parts,
                &BddEngineOptions {
                    order: order.clone(),
                    ..BddEngineOptions::default()
                },
            );
            assert!(out.holds);
            out.peak_nodes
        })
    });
}

fn bench_bdd_cancellation_case(c: &mut Criterion) {
    let cfg = tiny_cfg();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let case = CaseId::OverlapCancel {
        delta: 0,
        sha: ShaCase::Exact(cfg.format.frac_bits() as usize + 2),
    };
    let parts = h.case_constraint_parts(FpuOp::Fma, case);
    let order = paper_order(&h, Some(0));
    c.bench_function("bdd_cancellation_case", |b| {
        b.iter(|| {
            let out = check_miter_bdd_parts(
                &h.netlist,
                h.miter,
                &parts,
                &BddEngineOptions {
                    order: order.clone(),
                    ..BddEngineOptions::default()
                },
            );
            assert!(out.holds);
            out.peak_nodes
        })
    });
}

fn bench_bdd_minimize_strategies(c: &mut Criterion) {
    let cfg = tiny_cfg();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let case = CaseId::OverlapCancel {
        delta: 1,
        sha: ShaCase::Exact(cfg.format.frac_bits() as usize + 1),
    };
    let parts = h.case_constraint_parts(FpuOp::Fma, case);
    let order = paper_order(&h, Some(1));
    let mut group = c.benchmark_group("bdd_minimize");
    for (name, minimize) in [
        ("constrain", Minimize::Constrain),
        ("restrict", Minimize::Restrict),
        ("none", Minimize::None),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = check_miter_bdd_parts(
                    &h.netlist,
                    h.miter,
                    &parts,
                    &BddEngineOptions {
                        minimize,
                        order: order.clone(),
                        ..BddEngineOptions::default()
                    },
                );
                assert!(out.holds);
                out.peak_nodes
            })
        });
    }
    group.finish();
}

fn bench_sat_farout_case(c: &mut Criterion) {
    let cfg = tiny_cfg();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let parts = h.case_constraint_parts(FpuOp::Fma, CaseId::FarOut);
    c.bench_function("sat_farout_case", |b| {
        b.iter(|| {
            let out =
                check_miter_sat_parts(&h.netlist, h.miter, &parts, &SatEngineOptions::default());
            assert!(out.holds);
            out.stats.conflicts
        })
    });
}

fn bench_sat_mult_case(c: &mut Criterion) {
    let cfg = tiny_cfg();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let parts = h.case_constraint_parts(FpuOp::Mul, CaseId::Monolithic);
    c.bench_function("sat_mult_monolithic", |b| {
        b.iter(|| {
            let out =
                check_miter_sat_parts(&h.netlist, h.miter, &parts, &SatEngineOptions::default());
            assert!(out.holds);
            out.stats.conflicts
        })
    });
}

fn bench_soundness_obligation(c: &mut Criterion) {
    let cfg = tiny_cfg();
    c.bench_function("multiplier_soundness_proof", |b| {
        b.iter(|| {
            let r = fmaverify::prove_multiplier_soundness(&cfg, &[]);
            assert!(r.holds);
            r.cone_ands
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets =
    bench_bdd_overlap_case,
    bench_bdd_cancellation_case,
    bench_bdd_minimize_strategies,
    bench_sat_farout_case,
    bench_sat_mult_case,
    bench_soundness_obligation,

}
criterion_main!(benches);
