//! Criterion micro-benchmarks of the substrate layers: the softfloat
//! oracle, netlist simulation, BDD operations, SAT solving, and sweeping.

use criterion::{criterion_group, criterion_main, Criterion};
use fmaverify_bdd::BddManager;
use fmaverify_fpu::{
    build_impl_fpu, build_ref_fpu, DenormalMode, FpuConfig, FpuInputs, MultiplierMode,
    PipelineMode, ProductSource,
};
use fmaverify_netlist::{sat_sweep, BitSim, Netlist, SatEncoder, SweepOptions};
use fmaverify_sat::{SolveResult, Solver};
use fmaverify_softfloat::{fma, FpFormat, RoundingMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_softfloat_fma(c: &mut Criterion) {
    let fmt = FpFormat::DOUBLE;
    let mut rng = StdRng::seed_from_u64(1);
    let inputs: Vec<(u128, u128, u128)> = (0..512)
        .map(|_| {
            (
                rng.gen::<u64>() as u128,
                rng.gen::<u64>() as u128,
                rng.gen::<u64>() as u128,
            )
        })
        .collect();
    c.bench_function("softfloat_fma_double_512ops", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for &(x, y, z) in &inputs {
                acc ^= fma(fmt, x, y, z, RoundingMode::NearestEven).bits;
            }
            acc
        })
    });
}

fn bench_netlist_sim(c: &mut Criterion) {
    let cfg = FpuConfig {
        format: FpFormat::HALF,
        denormals: DenormalMode::FlushToZero,
    };
    let mut n = Netlist::new();
    let inputs = FpuInputs::new(&mut n, cfg.format);
    let fpu = build_impl_fpu(
        &mut n,
        &cfg,
        &inputs,
        MultiplierMode::Real,
        PipelineMode::Combinational,
    );
    let mut sim = BitSim::new(&n);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("bitsim_impl_fpu_half_eval", |b| {
        b.iter(|| {
            sim.set_word(&inputs.a, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.b, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.c, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.op, 0);
            sim.set_word(&inputs.rm, 0);
            sim.eval();
            sim.get_word(&fpu.outputs.result)
        })
    });
}

fn bench_fpu_construction(c: &mut Criterion) {
    let cfg = FpuConfig {
        format: FpFormat::HALF,
        denormals: DenormalMode::FlushToZero,
    };
    let mut group = c.benchmark_group("fpu_construction_half");
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut n = Netlist::new();
            let inputs = FpuInputs::new(&mut n, cfg.format);
            build_ref_fpu(&mut n, &cfg, &inputs, ProductSource::Exact);
            n.num_ands()
        })
    });
    group.bench_function("implementation", |b| {
        b.iter(|| {
            let mut n = Netlist::new();
            let inputs = FpuInputs::new(&mut n, cfg.format);
            build_impl_fpu(
                &mut n,
                &cfg,
                &inputs,
                MultiplierMode::Real,
                PipelineMode::Combinational,
            );
            n.num_ands()
        })
    });
    group.finish();
}

fn bench_bdd_adder(c: &mut Criterion) {
    c.bench_function("bdd_adder_16bit_interleaved", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let vars = m.new_vars(32);
            // Interleaved a/b vars; build the 16-bit sum bits.
            let mut carry = fmaverify_bdd::Bdd::FALSE;
            let mut acc = fmaverify_bdd::Bdd::FALSE;
            for i in 0..16 {
                let a = m.var_bdd(vars[2 * i]);
                let bb = m.var_bdd(vars[2 * i + 1]);
                let x = m.xor(a, bb);
                let s = m.xor(x, carry);
                let g = m.and(a, bb);
                let p = m.and(x, carry);
                carry = m.or(g, p);
                acc = m.xor(acc, s);
            }
            m.stats().peak_allocated
        })
    });
}

fn bench_sat_adder_equiv(c: &mut Criterion) {
    let mut n = Netlist::new();
    let a = n.word_input("a", 24);
    let b = n.word_input("b", 24);
    let s1 = n.add(&a, &b);
    let nb = n.neg(&b);
    let s2 = n.sub(&a, &nb);
    let d = n.xor_word(&s1, &s2);
    let miter = n.or_reduce(&d);
    c.bench_function("sat_adder_equiv_24bit", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let mut enc = SatEncoder::new();
            let lit = enc.lit(&n, &mut solver, miter);
            assert_eq!(solver.solve_with_assumptions(&[lit]), SolveResult::Unsat);
            solver.stats().conflicts
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let mut n = Netlist::new();
    let a = n.word_input("a", 10);
    let b = n.word_input("b", 10);
    let s1 = n.add(&a, &b);
    let nb = n.neg(&b);
    let s2 = n.sub(&a, &nb);
    let m = n.mul(&a, &b);
    let mut roots: Vec<_> = s1.bits().to_vec();
    roots.extend_from_slice(s2.bits());
    roots.extend_from_slice(&m.bits()[..10]);
    c.bench_function("sat_sweep_redundant_adders", |b| {
        b.iter(|| {
            let r = sat_sweep(&n, &roots, SweepOptions::default());
            r.merged
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets =
    bench_softfloat_fma,
    bench_netlist_sim,
    bench_fpu_construction,
    bench_bdd_adder,
    bench_sat_adder_equiv,
    bench_sweep,

}
criterion_main!(benches);
