//! **Experiment K1 — BDD kernel microbench**: ITE stress suites plus a
//! mid-size FMA case, timed cold and warm.
//!
//! Every engine in the flow (symbolic simulation of the 585 cases,
//! `constrain` minimization, BDD sweeping) bottoms out in the ROBDD kernel,
//! so kernel throughput directly scales Table 1 and the mutation campaigns.
//! This binary pins that claim to numbers: each suite is a deterministic
//! workload over the public `BddManager` API, run `iters` times in-process —
//! the first run is reported as *cold*, the mean of the remaining runs as
//! *warm* (same manager where the workload allows, so the computed cache and
//! unique table are primed).
//!
//! Results go to `results/bdd_kernel.json` (schema-versioned envelope) with
//! `FMAVERIFY_JSON=1`; EXPERIMENTS.md K1 records the before/after numbers
//! for the kernel overhaul. `FMAVERIFY_KERNEL_ITERS` overrides the
//! iteration count (default 3).

use std::time::{Duration, Instant};

use fmaverify::{
    build_harness, check_miter_bdd_parts, paper_order, BddEngineOptions, CaseId, FpuOp,
    HarnessOptions, JsonValue,
};
use fmaverify_bdd::{sift, Bdd, BddManager};
use fmaverify_bench::{banner, bench_config, dur, env_u32, maybe_write_json};

/// One measured suite: name, cold time, warm time, and a work counter
/// (suite-specific: ITE calls, nodes, ...) for sanity-checking that the
/// kernels under comparison did the same work.
/// The suites that make up the "ITE stress" acceptance group for the kernel
/// overhaul: engine-pattern workloads (a live working set re-verified across
/// GC waves) where computed-cache preservation across collections pays off.
const ITE_STRESS_SUITES: &[&str] = &["gc_warm", "sweep_warm", "case_sweep"];

struct SuiteResult {
    name: &'static str,
    cold: Duration,
    warm: Duration,
    work: u64,
    checksum: u64,
}

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Runs `body` `iters` times against fresh state and reports (cold, warm).
fn run_suite(name: &'static str, iters: u32, mut body: impl FnMut() -> (u64, u64)) -> SuiteResult {
    let (cold, (work, checksum)) = time(&mut body);
    let mut warm_total = Duration::ZERO;
    let warm_iters = iters.saturating_sub(1).max(1);
    for _ in 0..warm_iters {
        let (d, (w, c)) = time(&mut body);
        assert_eq!(w, work, "{name}: non-deterministic work counter");
        assert_eq!(c, checksum, "{name}: non-deterministic checksum");
        warm_total += d;
    }
    SuiteResult {
        name,
        cold,
        warm: warm_total / warm_iters,
        work,
        checksum,
    }
}

/// A tiny deterministic generator (xorshift*), so suites do not depend on
/// the `rand` shim's stream staying stable.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The classic ITE stress: the n-queens placement function. Deterministic,
/// memory-bounded, and dominated by `ite` recursion over a growing shared
/// DAG — exactly the unique-table/computed-cache workload the symbolic
/// simulator generates.
fn queens(n: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(n * n);
    let cell = |i: usize, j: usize| vars[i * n + j];
    let mut board = Bdd::TRUE;
    for i in 0..n {
        // Exactly one queen per row.
        let mut row_any = Bdd::FALSE;
        for j in 0..n {
            let q = m.var_bdd(cell(i, j));
            row_any = m.or(row_any, q);
        }
        board = m.and(board, row_any);
        for j in 0..n {
            let q = m.var_bdd(cell(i, j));
            let mut no_attack = Bdd::TRUE;
            for jj in 0..n {
                if jj != j {
                    let other = m.nvar_bdd(cell(i, jj));
                    no_attack = m.and(no_attack, other);
                }
            }
            for ii in 0..n {
                if ii == i {
                    continue;
                }
                let other = m.nvar_bdd(cell(ii, j));
                no_attack = m.and(no_attack, other);
                let d = ii.abs_diff(i);
                if j + d < n {
                    let diag = m.nvar_bdd(cell(ii, j + d));
                    no_attack = m.and(no_attack, diag);
                }
                if j >= d {
                    let diag = m.nvar_bdd(cell(ii, j - d));
                    no_attack = m.and(no_attack, diag);
                }
            }
            let constraint = m.implies(q, no_attack);
            board = m.and(board, constraint);
        }
    }
    let solutions = m.sat_count(board) as u64;
    (m.stats().ite_calls, solutions)
}

/// Blocked n-bit equality: the classic bad-order workload (exponential
/// intermediate BDDs), heavy on unique-table inserts and mk_node.
fn blocked_equality(n: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(2 * n);
    let mut eq = Bdd::TRUE;
    for i in 0..n {
        let a = m.var_bdd(vars[i]);
        let b = m.var_bdd(vars[n + i]);
        let bit = m.xnor(a, b);
        eq = m.and(eq, bit);
    }
    let stats = m.stats();
    (stats.nodes_created, m.reachable_count(&[eq]) as u64)
}

/// Constrain/restrict minimization stress over random functions: the
/// operator the paper's case split leans on hardest.
fn constrain_stress(nvars: usize, rounds: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(nvars);
    let mut rng = XorShift(0xBADC0FFEE0DDF00D);
    let mk_random = |m: &mut BddManager, rng: &mut XorShift, depth: usize| -> Bdd {
        let mut f = m.var_bdd(vars[rng.below(nvars)]);
        for _ in 0..depth {
            let g = m.var_bdd(vars[rng.below(nvars)]);
            f = match rng.below(3) {
                0 => m.and(f, g),
                1 => m.or(f, g),
                _ => m.xor(f, g),
            };
        }
        f
    };
    let mut checksum = 0u64;
    for _ in 0..rounds {
        let f = mk_random(&mut m, &mut rng, 24);
        let c = mk_random(&mut m, &mut rng, 12);
        if c.is_false() {
            continue;
        }
        let fc = m.constrain(f, c);
        let fr = m.restrict(f, c);
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(m.reachable_count(&[fc, fr]) as u64);
    }
    (m.stats().ite_calls, checksum)
}

/// GC churn: builds garbage between collections with a small live set of
/// subset-parity functions (whose BDDs stay linear in `nvars`, so the
/// workload is memory-bounded by construction — conjunctions of two
/// parities track a four-state product per level). On the old kernel every
/// GC dropped the whole computed cache and rebuilt the unique table.
fn gc_churn(nvars: usize, waves: usize, ops_per_wave: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(nvars);
    let mut rng = XorShift(0x0DDBA11CAFEF00D5);
    let mut live: Vec<Bdd> = vars.iter().take(8).map(|&v| m.var_bdd(v)).collect();
    let mut checksum = 0u64;
    for _ in 0..waves {
        for _ in 0..ops_per_wave {
            let a = m.var_bdd(vars[rng.below(nvars)]);
            let x = live[rng.below(live.len())];
            let y = live[rng.below(live.len())];
            // Garbage: a conjunction/disjunction of two parities (small but
            // real work); live update: a parity rotation (stays linear).
            let g1 = m.and(x, y);
            let g2 = m.or(g1, a);
            checksum = checksum.wrapping_add(g2.is_false() as u64);
            let slot = rng.below(live.len());
            live[slot] = m.xor(live[slot], a);
        }
        live = m.gc(&live);
    }
    let stats = m.stats();
    let reach: u64 = live.iter().map(|&f| m.reachable_count(&[f]) as u64).sum();
    (stats.gc_runs, checksum.wrapping_mul(31).wrapping_add(reach))
}

/// Warm re-verification across GC waves: the engine's dominant pattern. A
/// sweep holds a handle per netlist gate (here: the variables, the per-bit
/// equalities, and every conjunction prefix), re-derives the same functions
/// on each refinement wave, and collects transient garbage between waves.
/// A kernel that preserves live computed-cache entries across GC answers
/// every wave after the first from the cache; a kernel that drops the cache
/// wholesale re-traverses the (exponential, blocked-order) accumulator
/// every wave.
fn gc_warm(n: usize, rounds: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(2 * n);
    let mut rng = XorShift(0x5EED5EED5EED5EED);
    let mut live: Vec<Bdd> = Vec::new();
    let mut final_eq = Bdd::TRUE;
    for _ in 0..rounds {
        live.clear();
        let mut acc = Bdd::TRUE;
        for i in 0..n {
            let a = m.var_bdd(vars[i]);
            let b = m.var_bdd(vars[n + i]);
            let bit = m.xnor(a, b);
            acc = m.and(acc, bit);
            live.extend_from_slice(&[a, b, bit, acc]);
        }
        // Transient garbage: xor chains that die before the collection.
        for _ in 0..150 {
            let x = m.var_bdd(vars[rng.below(2 * n)]);
            let y = m.var_bdd(vars[rng.below(2 * n)]);
            let z = m.var_bdd(vars[rng.below(2 * n)]);
            let g = m.xor(x, y);
            let _ = m.xor(g, z);
        }
        let kept = m.gc(&live);
        final_eq = kept[live.len() - 1];
    }
    let solutions = m.sat_count(final_eq) as u64;
    (rounds as u64, solutions)
}

/// Sweeping-style equivalence checks repeated across GC waves: `k` gate
/// functions (deterministic cube DNFs) are pairwise miter-checked every
/// wave, with the gate and miter handles held live (as a sweep's node →
/// BDD map does) and fresh garbage collected in between. Old kernel: every
/// wave recomputes every miter from scratch after GC.
fn sweep_warm(nvars: usize, k: usize, waves: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(nvars);
    let mut rng = XorShift(0xC0DEC0DEC0DEC0DE);
    // Deterministic "gate" functions: DNFs of random 5-literal cubes.
    let mut gates: Vec<Bdd> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut f = Bdd::FALSE;
        for _ in 0..10 {
            let mut cube = Bdd::TRUE;
            for _ in 0..5 {
                let v = m.var_bdd(vars[rng.below(nvars)]);
                let lit = if rng.next() & 1 == 0 { v } else { v.not() };
                cube = m.and(cube, lit);
            }
            f = m.or(f, cube);
        }
        gates.push(f);
    }
    let mut equal_pairs = 0u64;
    let mut miters: Vec<Bdd> = Vec::new();
    for _ in 0..waves {
        miters.clear();
        for i in 0..k {
            for j in (i + 1)..k {
                let x = m.xnor(gates[i], gates[j]);
                equal_pairs += u64::from(x == Bdd::TRUE);
                miters.push(x);
            }
        }
        // Transient garbage between waves.
        for _ in 0..100 {
            let a = m.var_bdd(vars[rng.below(nvars)]);
            let b = m.var_bdd(vars[rng.below(nvars)]);
            let _ = m.and(a, b.not());
        }
        let mut roots = gates.clone();
        roots.extend_from_slice(&miters);
        let kept = m.gc(&roots);
        gates.copy_from_slice(&kept[..k]);
    }
    let tally: u64 = miters
        .iter()
        .map(|&x| m.sat_count(x) as u64)
        .fold(0, |a, b| a.wrapping_mul(31).wrapping_add(b));
    (equal_pairs, tally)
}

/// Builds an `n`×`n` array multiplier out of manager operations, pushing
/// every intermediate gate BDD into `sink` (the sweep's gate → BDD map).
/// `flip` inverts one partial product — a single-gate mutant, as in the
/// mutation campaigns.
fn mult_gates(
    m: &mut BddManager,
    a: &[Bdd],
    b: &[Bdd],
    flip: Option<usize>,
    sink: &mut Vec<Bdd>,
) -> Vec<Bdd> {
    let n = a.len();
    let mut acc: Vec<Bdd> = vec![Bdd::FALSE; 2 * n];
    let mut k = 0;
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let mut pp = m.and(ai, bj);
            if flip == Some(k) {
                pp = pp.not();
            }
            k += 1;
            sink.push(pp);
            let mut carry = pp;
            let mut pos = i + j;
            while !carry.is_const() && pos < 2 * n {
                let s = m.xor(acc[pos], carry);
                let c = m.and(acc[pos], carry);
                sink.push(s);
                sink.push(c);
                acc[pos] = s;
                carry = c;
                pos += 1;
            }
        }
    }
    acc
}

/// Mutation-campaign re-simulation (the PR-4 pattern): one multiplier
/// commutativity miter, re-simulated once per single-gate mutant in the same
/// manager, collecting every few mutants (as the engine's dead-fraction
/// trigger does). The base circuit's gate BDDs stay live, so a
/// cache-preserving kernel re-simulates only the mutated cone; a
/// cache-dropping kernel re-traverses the whole circuit after every
/// collection.
fn mutation_resim(bits: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(2 * bits);
    let a: Vec<Bdd> = (0..bits).map(|i| m.var_bdd(vars[i])).collect();
    let b: Vec<Bdd> = (0..bits).map(|i| m.var_bdd(vars[bits + i])).collect();
    let mut live: Vec<Bdd> = Vec::new();
    live.extend_from_slice(&a);
    live.extend_from_slice(&b);
    let out_ab = mult_gates(&mut m, &a, &b, None, &mut live);
    let out_ba = mult_gates(&mut m, &b, &a, None, &mut live);
    for (x, y) in out_ab.iter().zip(&out_ba) {
        let eq = m.xnor(*x, *y);
        assert!(eq.is_true(), "multiplication must commute");
    }
    live.extend_from_slice(&out_ba);
    let mut mismatches = 0u64;
    let mut checksum = 0u64;
    for k in 0..bits * bits {
        // Re-slice the base handles out of the live set every iteration: a
        // collection is free to remap ids (the compacting path does).
        let a = live[..bits].to_vec();
        let b = live[bits..2 * bits].to_vec();
        let out_ba = live[live.len() - 2 * bits..].to_vec();
        let mut scratch = Vec::new();
        let out_mut = mult_gates(&mut m, &a, &b, Some(k), &mut scratch);
        for (x, y) in out_mut.iter().zip(&out_ba) {
            let eq = m.xnor(*x, *y);
            if !eq.is_true() {
                mismatches += 1;
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(m.sat_count(eq) as u64);
            }
        }
        if k % 4 == 3 {
            live = m.gc(&live);
        }
    }
    if std::env::var("FMAVERIFY_KERNEL_STATS").is_ok() {
        eprintln!("mut_resim stats: {:?}", m.stats());
    }
    (mismatches, checksum)
}

/// The paper's case-sweep loop: one circuit, verified under one case
/// constraint after another in the same manager. Every case re-derives the
/// same multiplier outputs (identical structure each time), constrains them
/// to the case's care cube, and collects the per-case garbage. With the
/// circuit's gates held live across collections, a cache-preserving kernel
/// re-derives the circuit from the computed cache; the old kernel rebuilt
/// it from scratch for every case.
fn case_sweep(bits: usize, cases: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(2 * bits);
    let mut rng = XorShift(0xFACE0FF5ACE0FF5A);
    let mut live: Vec<Bdd> = vars.iter().map(|&v| m.var_bdd(v)).collect();
    let mut work = 0u64;
    let mut checksum = 0u64;
    for _ in 0..cases {
        // Re-derive the full circuit; the gates go into the live set so the
        // collection keeps their cache entries.
        live.truncate(2 * bits);
        let a = live[..bits].to_vec();
        let b = live[bits..2 * bits].to_vec();
        let outs = mult_gates(&mut m, &a, &b, None, &mut live);
        // The case constraint: a care cube over the operand bits.
        let mut cube = Bdd::TRUE;
        for _ in 0..6 {
            let v = m.var_bdd(vars[rng.below(2 * bits)]);
            let lit = if rng.next() & 1 == 0 { v } else { v.not() };
            cube = m.and(cube, lit);
        }
        // A cube naming both polarities of a variable is empty; such a
        // "case" is skipped (deterministically), as the engine's case split
        // never emits an empty care set.
        if cube.is_false() {
            live = m.gc(&live);
            continue;
        }
        // Check each output under the case (constrain, then tally); the
        // cofactors and the cube die before the collection.
        for &o in &outs {
            let fc = m.constrain(o, cube);
            work += 1;
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(m.sat_count(fc) as u64);
        }
        live = m.gc(&live);
    }
    (work, checksum)
}

/// Sifting on a blocked equality: exercises `set_order` rebuilds and the
/// reorder driver's scratch allocations.
fn sift_stress(n: usize) -> (u64, u64) {
    let mut m = BddManager::new();
    let vars = m.new_vars(2 * n);
    let mut eq = Bdd::TRUE;
    for i in 0..n {
        let a = m.var_bdd(vars[i]);
        let b = m.var_bdd(vars[n + i]);
        let bit = m.xnor(a, b);
        eq = m.and(eq, bit);
    }
    let result = sift(&mut m, &[eq], usize::MAX);
    (result.orders_tried as u64, result.nodes_after as u64)
}

/// A mid-size FMA cancellation case through the real engine path
/// (symbolic simulation of the miter under the paper's constraint and
/// static order).
fn fma_case() -> (u64, u64) {
    // Fixed mid-size format: one notch above the default bench format, so
    // the suite measures the same circuit regardless of FMAVERIFY_EXP/FRAC.
    let cfg = fmaverify::FpuConfig {
        format: fmaverify::FpFormat::new(4, 6),
        denormals: bench_config().denormals,
    };
    let mut harness = build_harness(&cfg, HarnessOptions::default());
    let case = CaseId::OverlapCancel {
        delta: 1,
        sha: fmaverify::ShaCase::Exact(2),
    };
    let parts = harness.case_constraint_parts(FpuOp::Fma, case);
    let order = paper_order(&harness, Some(1));
    let out = check_miter_bdd_parts(
        &harness.netlist,
        harness.miter,
        &parts,
        &BddEngineOptions {
            order,
            ..BddEngineOptions::default()
        },
    );
    assert!(out.holds && !out.aborted, "FMA case must hold");
    (out.manager_stats.ite_calls, out.peak_nodes as u64)
}

fn main() {
    banner(
        "bdd_kernel",
        "kernel microbench: ITE stress + mid-size FMA case (cold/warm)",
    );
    let iters = env_u32("FMAVERIFY_KERNEL_ITERS", 3);

    let suites: Vec<SuiteResult> = vec![
        run_suite("queens", iters, || queens(8)),
        run_suite("eq_blocked", iters, || blocked_equality(15)),
        run_suite("constrain", iters, || constrain_stress(16, 1_200)),
        run_suite("gc_churn", iters, || gc_churn(40, 8, 1_500)),
        run_suite("gc_warm", iters, || gc_warm(13, 32)),
        run_suite("sweep_warm", iters, || sweep_warm(14, 8, 40)),
        run_suite("case_sweep", iters, || case_sweep(6, 25)),
        run_suite("mut_resim", iters, || mutation_resim(6)),
        run_suite("sift", iters, || sift_stress(9)),
        run_suite("fma_case", iters, fma_case),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>14}",
        "suite", "cold", "warm", "work", "checksum"
    );
    for s in &suites {
        println!(
            "{:<12} {:>10} {:>10} {:>14} {:>14}",
            s.name,
            dur(s.cold),
            dur(s.warm),
            s.work,
            s.checksum
        );
    }
    let geomean = |subset: &[&SuiteResult], pick: fn(&SuiteResult) -> Duration| -> f64 {
        let ln_sum: f64 = subset
            .iter()
            .map(|s| pick(s).as_secs_f64().max(1e-9).ln())
            .sum();
        (ln_sum / subset.len() as f64).exp()
    };
    let all: Vec<&SuiteResult> = suites.iter().collect();
    // The acceptance suite for the kernel overhaul: the engine-pattern
    // workloads (warm re-verification across GC waves), where computed-cache
    // preservation is exercised. The remaining suites are single-shot builds
    // that both kernels answer from a cold cache.
    let stress: Vec<&SuiteResult> = suites
        .iter()
        .filter(|s| ITE_STRESS_SUITES.contains(&s.name))
        .collect();
    let gm_cold = geomean(&all, |s| s.cold);
    let gm_warm = geomean(&all, |s| s.warm);
    let gm_stress_cold = geomean(&stress, |s| s.cold);
    let gm_stress_warm = geomean(&stress, |s| s.warm);
    println!(
        "\ngeomean (all):        cold {:.2}ms  warm {:.2}ms",
        gm_cold * 1e3,
        gm_warm * 1e3
    );
    println!(
        "geomean (ite-stress): cold {:.2}ms  warm {:.2}ms   [{}]",
        gm_stress_cold * 1e3,
        gm_stress_warm * 1e3,
        ITE_STRESS_SUITES.join(", ")
    );
    println!("(compare geomeans across kernels: speedup = old / new, per column)");

    maybe_write_json("bdd_kernel", || {
        JsonValue::object(vec![
            (
                "suites",
                JsonValue::Array(
                    suites
                        .iter()
                        .map(|s| {
                            JsonValue::object(vec![
                                ("name", JsonValue::string(s.name)),
                                ("cold_seconds", JsonValue::Number(s.cold.as_secs_f64())),
                                ("warm_seconds", JsonValue::Number(s.warm.as_secs_f64())),
                                ("work", JsonValue::int(s.work)),
                                ("checksum", JsonValue::int(s.checksum)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("geomean_cold_seconds", JsonValue::Number(gm_cold)),
            ("geomean_warm_seconds", JsonValue::Number(gm_warm)),
            (
                "ite_stress_suites",
                JsonValue::Array(
                    ITE_STRESS_SUITES
                        .iter()
                        .map(|&n| JsonValue::string(n))
                        .collect(),
                ),
            ),
            (
                "ite_stress_geomean_cold_seconds",
                JsonValue::Number(gm_stress_cold),
            ),
            (
                "ite_stress_geomean_warm_seconds",
                JsonValue::Number(gm_stress_warm),
            ),
            ("iters", JsonValue::int(u64::from(iters))),
        ])
    });
}
