//! **Experiment S6b — portability across implementations**.
//!
//! Paper: "Adaptations of our methodology to subsequent FPU designs required
//! less than one day of effort each. Only the rules for S' and T' had to be
//! adjusted, as these are the only implementation-specific aspect of our
//! methodology."
//!
//! We port between two multiplier implementations (Booth radix-4 and plain
//! AND-array) and two pipeline depths: the isolated verification artifacts
//! are shared verbatim; only the S'/T' rules are re-derived and re-proved.

use fmaverify::{derive_st_constants_for, prove_multiplier_soundness_for, Session};
use fmaverify_bench::{banner, bench_config, compare, dur, run_config_from_env};
use fmaverify_fpu::{FpuInputs, FpuOp, MultiplierMode, PipelineMode};
use fmaverify_netlist::{BitSim, Netlist};
use std::time::Instant;

fn main() {
    banner(
        "portability",
        "§6: porting to a new FPU = re-deriving the S'/T' rules only",
    );
    let cfg = bench_config();

    // Shared artifact: the isolated verification (identical for every
    // implementation variant, because neither FPU contains a multiplier).
    let t = Instant::now();
    let report = Session::new(&cfg)
        .configure(run_config_from_env("portability"))
        .run(FpuOp::Fma);
    let shared_time = t.elapsed();
    assert!(report.all_hold());
    println!(
        "shared isolated verification: {} cases in {} (reused verbatim per port)\n",
        report.results.len(),
        dur(shared_time)
    );

    let mut port_times = Vec::new();
    for (name, mode, pipeline) in [
        (
            "booth/combinational",
            MultiplierMode::Real,
            PipelineMode::Combinational,
        ),
        (
            "array/combinational",
            MultiplierMode::RealArray,
            PipelineMode::Combinational,
        ),
        (
            "booth/3-stage pipeline",
            MultiplierMode::Real,
            PipelineMode::ThreeStage,
        ),
    ] {
        let t = Instant::now();
        let constants = derive_st_constants_for(&cfg, 600, mode.clone());
        let soundness = prove_multiplier_soundness_for(&cfg, &constants, mode.clone());
        let port_time = t.elapsed();
        assert!(soundness.holds);
        println!(
            "port to {name:<24} {} S'/T' rules derived+proved in {} \
             (cone {} gates)",
            constants.len(),
            dur(port_time),
            soundness.cone_ands
        );
        port_times.push((name, port_time, constants, pipeline));
    }

    // The pipelined variant additionally revalidates by simulation against
    // the reference (latency-aware), showing the harness handles sequential
    // implementations.
    {
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        let ref_fpu = fmaverify_fpu::build_ref_fpu(
            &mut n,
            &cfg,
            &inputs,
            fmaverify_fpu::ProductSource::Exact,
        );
        let impl_fpu = fmaverify_fpu::build_impl_fpu(
            &mut n,
            &cfg,
            &inputs,
            MultiplierMode::RealArray,
            PipelineMode::ThreeStage,
        );
        let mut sim = BitSim::new(&n);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..500 {
            sim.reset();
            sim.set_word(&inputs.a, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.b, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.c, rng.gen::<u128>() & cfg.format.mask());
            sim.set_word(&inputs.op, rng.gen_range(0..4));
            sim.set_word(&inputs.rm, rng.gen_range(0..4));
            for _ in 0..PipelineMode::ThreeStage.latency() {
                sim.step();
            }
            assert_eq!(
                sim.get_word(&ref_fpu.outputs.result),
                sim.get_word(&impl_fpu.outputs.result)
            );
        }
        println!("\npipelined array-multiplier variant agrees with the reference (500 vectors)");
    }

    println!();
    let booth_rules = &port_times[0].2;
    let array_rules = &port_times[1].2;
    compare(
        "the S'/T' rules are implementation-specific",
        "only rules for S' and T' had to be adjusted",
        &format!(
            "booth: {} rules, array: {} rules (different sets: {})",
            booth_rules.len(),
            array_rules.len(),
            booth_rules != array_rules
        ),
        booth_rules != array_rules,
    );
    let max_port = port_times
        .iter()
        .map(|(_, t, _, _)| *t)
        .max()
        .expect("ports");
    compare(
        "porting effort is a fraction of the original verification",
        "less than one day vs the initial effort",
        &format!("{} per port vs {} shared", dur(max_port), dur(shared_time)),
        max_port < shared_time,
    );
}
