//! **Experiment F4/S6 — the denormal-operand extension**.
//!
//! Paper §6 / Figure 4: with denormal operands, a normal×denormal product
//! has leading zeros, so cancellation can occur at *any* overlap δ; all
//! overlap cases must be sub-divided by normalization shift. "Although the
//! number of cases becomes larger (quadratic in the number of δ-cases), the
//! overall task is still tractable ... We discharge the approximately
//! 17,000 cases with an accumulated runtime of 1416 hours."
//!
//! We (a) reproduce the Figure 4 cancellation witness, (b) show the
//! quadratic case growth including the ~17k count at double precision,
//! and (c) run the full extended sweep at the benchmark format.

use fmaverify::{enumerate_cases, summarize, Session, ToJson};
use fmaverify_bench::{banner, compare, dur, env_u32, maybe_write_json, run_config_from_env};
use fmaverify_fpu::{DenormalMode, FpuConfig, FpuOp};
use fmaverify_softfloat::{fma_with, FpClass, FpFormat, RoundingMode};

fn main() {
    banner(
        "denormal_extension",
        "§6 / Figure 4: denormal operands; ~17,000 cases at double precision",
    );
    let exp = env_u32("FMAVERIFY_EXP", 4);
    let frac = env_u32("FMAVERIFY_FRAC", 3);
    let cfg = FpuConfig {
        format: FpFormat::new(exp, frac),
        denormals: DenormalMode::FullIeee,
    };

    // (a) Figure 4 witness: a denormal × normal product with leading zeros
    // cancels against a normal addend at a large δ.
    let fmt = FpFormat::DOUBLE;
    let a = fmt.min_denormal(false); // 2^-1074: 52 leading zeros in the significand
    let b = fmt.pack(false, (fmt.bias() + 60) as u32, 0); // normal, 2^60
                                                          // Product = 2^-1074 * 2^60 = 2^-1014 (normal range); pick c = -2^-1014.
    let c = fmt.pack(true, (fmt.bias() - 1014) as u32, 0);
    let r = fma_with(fmt, a, b, c, RoundingMode::NearestEven, false);
    let delta_demo = {
        // δ = e_p - e_c with the denormal a at effective exponent emin.
        let ea = fmt.emin() as i64;
        let eb = 60i64;
        let ec = -1014i64;
        ea + eb - ec
    };
    println!("Figure 4 witness at double precision: denormal*normal - normal with δ={delta_demo}:");
    println!(
        "  {:e} * {:e} + {:e} = {:e} (exact cancellation at a δ far outside ±2)",
        fmt.to_f64(a),
        fmt.to_f64(b),
        fmt.to_f64(c),
        fmt.to_f64(r.bits),
    );
    compare(
        "massive cancellation at large δ",
        "denormal operands cancel for large δ's",
        &format!("result {:?}", fmt.classify(r.bits)),
        fmt.classify(r.bits) == FpClass::Zero || r.bits == 0,
    );

    // (b) Quadratic case growth.
    println!("\ncase-count growth (FMA):");
    println!(
        "  {:>6} {:>12} {:>14}",
        "frac", "FTZ cases", "full-IEEE cases"
    );
    for f in [2u32, 3, 4, 6, 8, 52] {
        let base = FpuConfig {
            format: FpFormat::new(6.min(f + 2), f),
            denormals: DenormalMode::FlushToZero,
        };
        let ext = FpuConfig {
            denormals: DenormalMode::FullIeee,
            ..base
        };
        println!(
            "  {:>6} {:>12} {:>14}",
            f,
            enumerate_cases(&base, FpuOp::Fma).len(),
            enumerate_cases(&ext, FpuOp::Fma).len()
        );
    }
    let dp_ext = FpuConfig {
        format: FpFormat::DOUBLE,
        denormals: DenormalMode::FullIeee,
    };
    let dp_count = enumerate_cases(&dp_ext, FpuOp::Fma).len();
    compare(
        "DP extended case count",
        "approximately 17,000",
        &format!("{dp_count}"),
        (17_000..18_000).contains(&dp_count),
    );
    let dp_base = enumerate_cases(&FpuConfig::double_ftz(), FpuOp::Fma).len();
    compare(
        "growth is quadratic-ish (cases ~ δ-count * sha-count)",
        "quadratic in the number of δ-cases",
        &format!("{dp_base} -> {dp_count} ({}x)", dp_count / dp_base),
        dp_count > 20 * dp_base,
    );

    // (c) The full extended formal sweep at the benchmark format.
    println!(
        "\nfull-IEEE sweep at ({}, {}):",
        cfg.format.exp_bits(),
        cfg.format.frac_bits()
    );
    let session = Session::new(&cfg).configure(run_config_from_env("denormal_extension"));
    let mut reports = Vec::new();
    for op in [FpuOp::Fma, FpuOp::Add, FpuOp::Mul] {
        let report = session.run(op);
        println!("  {}", summarize(&report));
        assert!(report.all_hold(), "{:?}", report.first_failure());
        reports.push(report);
    }
    maybe_write_json("denormal_extension", || reports.to_json());
    println!();
    compare(
        "extended sweep still tractable per case",
        "each case has similar runtime; parallelizable",
        &format!("all cases hold at ({exp},{frac})"),
        true,
    );
    let _ = dur;
}
