//! **Experiment S5d — static variable orders vs naive/dynamic ordering**.
//!
//! Paper: "we provided an efficient statically-derived variable ordering ...
//! Initially, we attempted to use more generically-computed initial orders
//! coupled with dynamic variable reordering. However, those runs consumed
//! considerably more time and memory, even suffering from memory-explosion
//! at times. ... we disable dynamic variable ordering as it unnecessarily
//! consumes run-time without yielding a superior order."
//!
//! We run one representative overlap case under (a) the paper's static
//! order, (b) a naive creation order, and (c) the naive order followed by
//! sifting-based reordering of the final result, and report nodes and time.

use fmaverify::{
    build_harness, check_miter_bdd_parts, naive_order, paper_order, BddEngineOptions, CaseId,
    HarnessOptions, RunConfig, ShaCase,
};
use fmaverify_bench::{banner, bench_config, compare, dur};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "order_ablation",
        "§5: static order vs generic order (+ reordering): time & memory",
    );
    let cfg = bench_config();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let f = cfg.format.frac_bits() as usize;
    let delta = 1i64;
    let case = CaseId::OverlapCancel {
        delta,
        sha: ShaCase::Exact(f + 2),
    };
    let parts = h.case_constraint_parts(FpuOp::Fma, case);
    let node_limit = RunConfig::from_env().node_budget.unwrap_or(1_500_000);

    let static_run = check_miter_bdd_parts(
        &h.netlist,
        h.miter,
        &parts,
        &BddEngineOptions {
            order: paper_order(&h, Some(delta)),
            node_limit: Some(node_limit),
            ..BddEngineOptions::default()
        },
    );
    println!(
        "paper static order:  peak {:>10} nodes, {:>9}{}",
        static_run.peak_nodes,
        dur(static_run.duration),
        if static_run.aborted {
            "  [ABORTED: node limit]"
        } else {
            ""
        }
    );
    assert!(static_run.holds && !static_run.aborted);

    let naive_run = check_miter_bdd_parts(
        &h.netlist,
        h.miter,
        &parts,
        &BddEngineOptions {
            order: naive_order(&h),
            node_limit: Some(node_limit),
            gc_threshold: node_limit / 4,
            ..BddEngineOptions::default()
        },
    );
    println!(
        "naive input order:   peak {:>10} nodes, {:>9}{}",
        naive_run.peak_nodes,
        dur(naive_run.duration),
        if naive_run.aborted {
            "  [ABORTED: memory explosion]"
        } else {
            ""
        }
    );

    println!();
    compare(
        "static order beats naive order (peak nodes)",
        "generic orders suffered memory explosion",
        &format!(
            "{} vs {}{}",
            static_run.peak_nodes,
            naive_run.peak_nodes,
            if naive_run.aborted { "+ (aborted)" } else { "" }
        ),
        naive_run.aborted || static_run.peak_nodes < naive_run.peak_nodes,
    );
    compare(
        "static order beats naive order (time)",
        "considerably more time",
        &format!(
            "{} vs {}",
            dur(static_run.duration),
            dur(naive_run.duration)
        ),
        naive_run.aborted || static_run.duration <= naive_run.duration,
    );

    // Sifting ablation on a standalone structure: reordering can repair a
    // bad order, but costs more time than starting from the right order —
    // exactly why the paper disables dynamic reordering.
    let sift_demo = {
        use fmaverify_bdd::{sift, BddManager};
        let n = cfg.format.frac_bits() as usize + 4;
        let mut mgr = BddManager::new();
        let vars = mgr.new_vars(2 * n);
        // Blocked comparator: a bad order by construction.
        let mut eq = fmaverify_bdd::Bdd::TRUE;
        for i in 0..n {
            let x = mgr.var_bdd(vars[i]);
            let y = mgr.var_bdd(vars[n + i]);
            let e = mgr.xnor(x, y);
            eq = mgr.and(eq, e);
        }
        let before = mgr.reachable_count(&[eq]);
        let t = std::time::Instant::now();
        let res = sift(&mut mgr, &[eq], usize::MAX);
        (before, res.nodes_after, t.elapsed(), res.orders_tried)
    };
    println!();
    println!(
        "sifting repair demo (blocked comparator): {} -> {} nodes in {} \
         ({} candidate orders evaluated)",
        sift_demo.0,
        sift_demo.1,
        dur(sift_demo.2),
        sift_demo.3
    );
    compare(
        "reordering consumes run-time to fix what a static order avoids",
        "disable dynamic variable ordering",
        &format!("{} spent sifting", dur(sift_demo.2)),
        sift_demo.1 <= sift_demo.0,
    );
}
