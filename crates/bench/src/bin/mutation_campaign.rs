//! **Experiment M1 — mutation-coverage campaign: verify the verifier**.
//!
//! The paper's evidence that the flow works is the dozens of injected and
//! real bugs it caught. This experiment measures that bug-finding power
//! systematically (DESIGN.md §10): it seeds single-gate faults into the
//! pipelined implementation FPU's sequential cone and requires the
//! case-split verification to kill every one of them:
//!
//! * zero survivors and zero budget-exceeded mutants,
//! * every kill carries a replay-confirmed counterexample,
//! * every mutation kind is killed at least once, and
//! * a warm rerun of the same seed replays cases from the proof cache.
//!
//! Knobs: `FMAVERIFY_MUTANTS` (default here: 60; 0 = exhaustive) and
//! `FMAVERIFY_MUTATION_SEED` select the sample; the usual format/budget
//! variables apply.

use fmaverify::{CacheMode, CaseClass, JsonValue, MutationKind, PipelineMode, ToJson};
use fmaverify_bench::{banner, bench_config, compare, dur, maybe_write_json, run_config_from_env};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "mutation_campaign",
        "mutation coverage of the case-split checker (bug-finding power)",
    );
    let cfg = bench_config();
    let op = FpuOp::Fma;

    // The campaign targets the *pipelined* implementation: faults behind
    // the stage registers are exactly what the fixed sequential cone
    // enumeration exists for.
    let mut config = run_config_from_env("mutation_campaign");
    config.harness.pipeline = PipelineMode::ThreeStage;
    if config.mutants.is_none() && std::env::var_os("FMAVERIFY_MUTANTS").is_none() {
        config.mutants = Some(60);
    }
    // The cache is the point of the warm rerun: give the campaign a fresh
    // read-write cache when the environment didn't pick one.
    let temp_cache = if config.cache_mode == CacheMode::Off {
        let dir = std::env::temp_dir().join(format!("fmaverify-campaign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        config.cache_mode = CacheMode::ReadWrite;
        config.cache_dir = dir.clone();
        Some(dir)
    } else {
        None
    };

    println!(
        "campaign:   op={op:?} mutants={} seed={:#x}\n",
        config
            .mutants
            .map_or("exhaustive".to_string(), |n| n.to_string()),
        config.mutation_seed,
    );

    let cold = fmaverify::run_campaign(&cfg, op, &config);
    println!(
        "cold: {} candidate gates, {} mutant space, {} screened out",
        cold.candidate_gates, cold.mutant_space, cold.screened_out
    );
    println!(
        "cold: {} verified: {} killed / {} survived / {} budget-exceeded in {}",
        cold.outcomes.len(),
        cold.killed(),
        cold.survived(),
        cold.budget_exceeded(),
        dur(cold.wall)
    );

    // Kill matrix (MutationKind rows x CaseClass columns).
    let matrix = cold.kill_matrix();
    println!("\nkill matrix (kind x case class):");
    print!("  {:<16}", "");
    for class in CaseClass::ALL {
        print!("{:>18}", class.label());
    }
    println!();
    for (row, kind) in MutationKind::ALL.iter().enumerate() {
        print!("  {:<16}", kind.label());
        for kills in &matrix[row] {
            print!("{kills:>18}");
        }
        println!();
    }
    println!();

    // Warm rerun: same seed, same mutants, now against a populated cache.
    let warm = fmaverify::run_campaign(&cfg, op, &config);
    println!(
        "warm: {} killed / {} survived, {} cases replayed from cache in {}",
        warm.killed(),
        warm.survived(),
        warm.cases_replayed(),
        dur(warm.wall)
    );
    println!();

    compare(
        "all mutants killed",
        "dozens of bugs caught",
        &format!("{}/{} killed", cold.killed(), cold.outcomes.len()),
        cold.survived() == 0 && cold.budget_exceeded() == 0,
    );
    compare(
        "every kill replay-confirmed",
        "counterexamples replay",
        &format!("{} kills", cold.killed()),
        true,
    );
    compare(
        "every mutation kind killed",
        "all fault models covered",
        &format!(
            "{}/{} kinds",
            cold.kinds_with_kills(),
            MutationKind::ALL.len()
        ),
        cold.kinds_with_kills() == MutationKind::ALL.len(),
    );
    compare(
        "warm rerun replays from cache",
        "incremental verification",
        &format!("{} cases replayed", warm.cases_replayed()),
        warm.cases_replayed() > 0,
    );

    assert_eq!(
        cold.survived(),
        0,
        "surviving mutant: coverage hole or checker bug"
    );
    assert_eq!(cold.budget_exceeded(), 0, "budget-exceeded mutant");
    assert!(
        cold.outcomes.iter().all(|o| matches!(
            o.status,
            fmaverify::MutantStatus::Killed {
                replay_confirmed: true,
                ..
            }
        )),
        "a kill did not replay on the mutant netlist"
    );
    assert_eq!(
        cold.kinds_with_kills(),
        MutationKind::ALL.len(),
        "some mutation kind was never killed"
    );
    assert_eq!(warm.killed(), cold.killed(), "warm rerun verdict drift");
    assert_eq!(warm.survived(), 0);
    assert!(
        warm.cases_replayed() > 0,
        "warm rerun never hit the proof cache"
    );

    maybe_write_json("mutation_campaign", || {
        JsonValue::object(vec![
            ("killed", JsonValue::int(cold.killed())),
            ("survived", JsonValue::int(cold.survived())),
            ("kinds_with_kills", JsonValue::int(cold.kinds_with_kills())),
            ("warm_cases_replayed", JsonValue::int(warm.cases_replayed())),
            ("cold", cold.to_json()),
            ("warm", warm.to_json()),
        ])
    });
    if let Some(dir) = temp_cache {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
