//! **Experiment F1/S2 — multiplier isolation**.
//!
//! Paper Figure 1: overriding the multiplier outputs `S`,`T` with the
//! pseudo-inputs `S'`,`T'` makes the multiplier sinkless, removing it from
//! the cone of influence. Soundness is "a simple proof obligation for SAT,
//! since it requires only a fraction of the multiplier logic in the
//! cone-of-influence".
//!
//! We measure: miter cone with/without isolation, BDD cost of one overlap
//! case with/without isolation, the soundness proof's cone and time, and
//! the automatically derived hot-one rules.

use fmaverify::RunConfig;
use fmaverify::{
    build_harness, check_miter_bdd_parts, derive_st_constants, paper_order,
    prove_multiplier_soundness, BddEngineOptions, CaseId, HarnessOptions, ShaCase,
};
use fmaverify_bench::{banner, bench_config, compare, dur};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "isolation",
        "Figure 1 / §2: multiplier isolation and its soundness obligation",
    );
    let cfg = bench_config();
    let f = cfg.format.frac_bits() as usize;
    let node_limit = RunConfig::from_env().node_budget.unwrap_or(40_000_000);

    let isolated = build_harness(&cfg, HarnessOptions::default());
    let full = build_harness(
        &cfg,
        HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        },
    );
    let iso_cone = isolated.netlist.cone_size(&[isolated.miter]);
    let full_cone = full.netlist.cone_size(&[full.miter]);
    println!("miter cone, isolated: {iso_cone} AND gates");
    println!("miter cone, full:     {full_cone} AND gates\n");

    // Width sweep: the isolated case scales gently; keeping the real
    // multiplier in the BDD cone explodes with the significand width —
    // exactly why the paper isolates it.
    let _ = f;
    println!("BDD cost of one cancellation case (δ=0), isolated vs full multiplier:");
    println!(
        "  {:>6} {:>16} {:>12} {:>16} {:>12}",
        "frac", "isolated peak", "time", "full-mult peak", "time"
    );
    let mut ratios = Vec::new();
    for frac in [4u32, 6, 8] {
        let sweep_cfg = fmaverify_fpu::FpuConfig {
            format: fmaverify_softfloat::FpFormat::new(cfg.format.exp_bits().max(5), frac),
            denormals: cfg.denormals,
        };
        let case = CaseId::OverlapCancel {
            delta: 0,
            sha: ShaCase::Exact(frac as usize + 2),
        };
        let mut row = Vec::new();
        for isolate in [true, false] {
            let mut h = build_harness(
                &sweep_cfg,
                HarnessOptions {
                    isolate_multiplier: isolate,
                    ..HarnessOptions::default()
                },
            );
            let parts = h.case_constraint_parts(FpuOp::Fma, case);
            let order = paper_order(&h, Some(0));
            let out = check_miter_bdd_parts(
                &h.netlist,
                h.miter,
                &parts,
                &BddEngineOptions {
                    order,
                    node_limit: Some(node_limit),
                    gc_threshold: (node_limit / 8).max(500_000),
                    ..BddEngineOptions::default()
                },
            );
            assert!(out.holds || out.aborted);
            row.push(out);
        }
        println!(
            "  {:>6} {:>16} {:>12} {:>15}{} {:>12}",
            frac,
            row[0].peak_nodes,
            dur(row[0].duration),
            row[1].peak_nodes,
            if row[1].aborted { "+" } else { " " },
            dur(row[1].duration),
        );
        ratios.push(row[1].peak_nodes as f64 / row[0].peak_nodes as f64);
    }
    println!();

    let constants = derive_st_constants(&cfg, 600);
    let soundness = prove_multiplier_soundness(&cfg, &constants);
    println!(
        "\nsoundness obligation: {} in {} with {} of {} FPU gates in the cone \
         ({} derived hot-one rules)",
        if soundness.holds { "PROVED" } else { "REFUTED" },
        dur(soundness.duration),
        soundness.cone_ands,
        soundness.full_fpu_ands,
        constants.len(),
    );
    assert!(soundness.holds);

    println!();
    compare(
        "isolation removes the multiplier from the COI",
        "multiplier becomes sinkless",
        &format!("{iso_cone} vs {full_cone} gates"),
        iso_cone < full_cone,
    );
    compare(
        "isolation keeps the BDD cases tractable as width grows",
        "necessary for feasibility at double precision",
        &format!(
            "full/isolated peak ratio grows: {:.1} -> {:.1} -> {:.1}",
            ratios[0], ratios[1], ratios[2]
        ),
        ratios[2] > 4.0 && ratios[2] > ratios[0],
    );
    compare(
        "soundness needs only a fraction of the FPU",
        "simple proof obligation for SAT",
        &format!(
            "{} of {} gates",
            soundness.cone_ands, soundness.full_fpu_ands
        ),
        soundness.cone_ands * 2 < soundness.full_fpu_ands,
    );
}
