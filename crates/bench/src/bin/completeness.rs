//! **Experiment S4 — case-split completeness**.
//!
//! Paper: "The disjunction of all the cases is easily provable as a
//! tautology, guaranteeing completeness of our methodology." and the case
//! counts: 1 far-out + 156 non-cancellation + 4×107 cancellation = 585 at
//! double precision (we count 586 after the −55 boundary correction).

use fmaverify::{enumerate_cases, prove_completeness, CaseClass};
use fmaverify_bench::{banner, bench_config, compare, dur};
use fmaverify_fpu::{FpuConfig, FpuOp};

fn main() {
    banner("completeness", "§4: 585 cases; disjunction is a tautology");
    let cfg = bench_config();

    // Case counts at double precision (enumeration only — no solving).
    let dp = FpuConfig::double_ftz();
    let dp_cases = enumerate_cases(&dp, FpuOp::Fma);
    let count = |class: CaseClass| dp_cases.iter().filter(|c| c.class() == class).count();
    println!("double-precision FMA case inventory:");
    println!("  far-out:                  {}", count(CaseClass::FarOut));
    println!(
        "  overlap w/o cancellation: {}",
        count(CaseClass::OverlapNoCancellation)
    );
    println!(
        "  overlap w/ cancellation:  {}",
        count(CaseClass::OverlapWithCancellation)
    );
    println!("  total:                    {}\n", dp_cases.len());
    compare(
        "DP case count",
        "1 + 156 + 4*107 = 585",
        &format!("1 + 157 + 4*107 = {} (boundary correction)", dp_cases.len()),
        dp_cases.len() == 586,
    );
    compare(
        "cancellation sub-cases per δ",
        "106 shifts + C_sha/rest = 107",
        &format!("{}", dp.sha_case_count()),
        dp.sha_case_count() == 107,
    );

    // The tautology proofs at the benchmark format.
    println!();
    for op in [FpuOp::Fma, FpuOp::Fms, FpuOp::Add, FpuOp::Mul] {
        let r = prove_completeness(&cfg, op);
        println!(
            "{op:?}: δ-split complete: {}, sha-split complete: {} ({})",
            r.delta_split_complete,
            r.sha_split_complete,
            dur(r.duration),
        );
        assert!(r.holds());
    }
    println!();
    compare(
        "disjunction of all cases is a tautology",
        "easily provable",
        "proved by SAT for all four instructions",
        true,
    );
}
