//! **Experiment S5c — the add instruction with the multiplier in the cone**.
//!
//! Paper: "The addition instruction was verified with the multiplier in the
//! cone-of-influence since the second operand of the multiplication is 1.0;
//! constant propagation automatically replaces the multiplier by trivial
//! logic."
//!
//! We measure the miter cone under the ADD opcode constraint after
//! redundancy removal, showing that the multiplier collapses; and we verify
//! the add instruction end to end without isolation.

use fmaverify::{summarize, HarnessOptions, Session, ToJson};
use fmaverify_bench::{banner, bench_config, compare, dur, maybe_write_json, run_config_from_env};
use fmaverify_fpu::{FpuInputs, FpuOp, MultiplierMode, PipelineMode};
use fmaverify_netlist::{sat_sweep, Netlist, SweepOptions};

fn main() {
    banner(
        "add_constprop",
        "§5: add verified with the real multiplier; constant 1.0 collapses it",
    );
    let cfg = bench_config();

    // Gate-count evidence: an implementation FPU with b hardwired to 1.0
    // sweeps down to a fraction of the full multiplier version.
    let (full_size, full_mult_size) = {
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        let fpu = fmaverify_fpu::build_impl_fpu(
            &mut n,
            &cfg,
            &inputs,
            MultiplierMode::Real,
            PipelineMode::Combinational,
        );
        let mut st: Vec<_> = fpu.s.bits().to_vec();
        st.extend_from_slice(fpu.t.bits());
        (n.cone_size(fpu.outputs.result.bits()), n.cone_size(&st))
    };
    let (add_swept_size, add_mult_size) = {
        let mut n = Netlist::new();
        let inputs = FpuInputs::new(&mut n, cfg.format);
        let fpu = fmaverify_fpu::build_impl_fpu(
            &mut n,
            &cfg,
            &inputs,
            MultiplierMode::Real,
            PipelineMode::Combinational,
        );
        // Constrain op = ADD by tying the opcode inputs: sweep under the
        // cone of (result AND op==ADD) — emulate by building a version where
        // the opcode is constant.
        let op_is_add = n.eq_const(&inputs.op, FpuOp::Add.encode() as u128);
        let mut roots: Vec<_> = fpu.outputs.result.bits().to_vec();
        roots.push(op_is_add);
        // Re-derive with the opcode constant folded: simplest is to rebuild
        // with constants, but sweeping with the op inputs free only merges
        // op-independent logic. Instead rebuild with op tied:
        let mut n2 = Netlist::new();
        let a = n2.word_input("a", cfg.format.width() as usize);
        let b = n2.word_input("b", cfg.format.width() as usize);
        let c = n2.word_input("c", cfg.format.width() as usize);
        let rm = n2.word_input("rm", 2);
        let op_const = n2.word_const(2, FpuOp::Add.encode() as u128);
        let inputs2 = FpuInputs {
            a,
            b,
            c,
            op: op_const,
            rm,
        };
        let fpu2 = fmaverify_fpu::build_impl_fpu(
            &mut n2,
            &cfg,
            &inputs2,
            MultiplierMode::Real,
            PipelineMode::Combinational,
        );
        let roots2: Vec<_> = fpu2.outputs.result.bits().to_vec();
        let before = n2.cone_size(&roots2);
        let result = sat_sweep(&n2, &roots2, SweepOptions::default());
        let mut st2: Vec<_> = fpu2.s.bits().to_vec();
        st2.extend_from_slice(fpu2.t.bits());
        let mult_size = n2.cone_size(&st2);
        println!(
            "impl FPU with op=ADD hardwired: {} gates ({} after sweeping), multiplier cone {} gates",
            before, result.ands_after, mult_size
        );
        (result.ands_after, mult_size)
    };
    println!(
        "impl FPU, full opcode space:    {full_size} gates, multiplier cone {full_mult_size} gates\n"
    );

    // End-to-end add verification without isolation.
    let report = Session::new(&cfg)
        .configure(run_config_from_env("add_constprop"))
        .harness_options(HarnessOptions {
            isolate_multiplier: false,
            ..HarnessOptions::default()
        })
        .run(FpuOp::Add);
    println!("{}", summarize(&report));
    assert!(report.all_hold());
    maybe_write_json("add_constprop", || report.to_json());
    println!();
    compare(
        "constant 1.0 collapses the multiplier",
        "multiplier -> trivial logic",
        &format!(
            "multiplier cone {add_mult_size} vs {full_mult_size} gates, FPU {add_swept_size} vs {full_size}"
        ),
        add_mult_size * 3 < full_mult_size,
    );
    compare(
        "add verifies with the multiplier in the COI",
        "16 hours accumulated",
        &dur(report.accumulated),
        report.all_hold(),
    );
}
