//! **Experiment C1 — incremental verification: warm vs cold proof cache**.
//!
//! The paper's regression re-proves all 585 cases on every run. With the
//! content-addressed proof cache (DESIGN.md §9) a rerun against an
//! unchanged design replays every verdict from disk: this experiment runs
//! the Table-1 sweep (add, mult, FMA) twice against a fresh cache
//! directory and checks the incremental-verification contract:
//!
//! * the warm rerun is 100% cache hits,
//! * warm verdicts are byte-identical to cold verdicts, and
//! * warm wall time is at least 5× lower than cold (skipped below a small
//!   cold-time floor, where process noise dominates).

use std::time::Duration;

use fmaverify::{summarize, CacheMode, JsonValue, RunConfig, Session, ToJson};
use fmaverify_bench::{banner, bench_config, compare, dur, maybe_write_json, run_config_from_env};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "cache_warm",
        "incremental verification: warm cache rerun of the Table-1 sweep",
    );
    let cfg = bench_config();
    let ops = [FpuOp::Add, FpuOp::Mul, FpuOp::Fma];

    // A fresh cache directory per invocation so the "cold" run is honest.
    let cache_dir =
        std::env::temp_dir().join(format!("fmaverify-cache-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = RunConfig {
        cache_mode: CacheMode::ReadWrite,
        cache_dir: cache_dir.clone(),
        ..run_config_from_env("cache_warm")
    };

    // Cold: empty cache, every case runs its engines (and is stored).
    let cold_session = Session::new(&cfg).configure(config.clone());
    let cold: Vec<_> = ops.iter().map(|&op| cold_session.run(op)).collect();
    println!("cold run:");
    for report in &cold {
        println!("  {}", summarize(report));
        assert!(report.all_hold(), "{:?}", report.first_failure());
        assert!(
            report.results.iter().all(|r| !r.cached),
            "cold run must not hit the fresh cache"
        );
    }

    // Warm: a new session re-opens the now-populated cache.
    let warm_session = Session::new(&cfg).configure(config);
    let warm: Vec<_> = ops.iter().map(|&op| warm_session.run(op)).collect();
    println!("warm run:");
    for report in &warm {
        println!("  {}", summarize(report));
    }

    // Contract: 100% hits, byte-identical verdicts.
    let mut cases = 0usize;
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.results.len(), w.results.len());
        for (cr, wr) in c.results.iter().zip(&w.results) {
            cases += 1;
            assert!(wr.cached, "warm run missed {:?} of {:?}", wr.case, wr.op);
            assert_eq!(
                cr.verdict.to_json().render(),
                wr.verdict.to_json().render(),
                "verdict drift on {:?} of {:?}",
                cr.case,
                cr.op
            );
            assert_eq!(cr.engine, wr.engine);
        }
    }

    let cold_wall: Duration = cold.iter().map(|r| r.wall).sum();
    let warm_wall: Duration = warm.iter().map(|r| r.wall).sum();
    let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
    println!();
    compare(
        "warm rerun is 100% cache hits",
        "all sub-proofs reused",
        &format!("{cases}/{cases} cases replayed"),
        true,
    );
    compare(
        "warm rerun >= 5x faster",
        "near-instant replay",
        &format!(
            "cold {} vs warm {} ({speedup:.1}x)",
            dur(cold_wall),
            dur(warm_wall)
        ),
        speedup >= 5.0,
    );
    // Below ~50ms of cold work the ratio measures process noise, not the
    // cache; the contract is asserted on any meaningful run.
    if cold_wall >= Duration::from_millis(50) {
        assert!(
            speedup >= 5.0,
            "warm rerun only {speedup:.1}x faster (cold {cold_wall:?}, warm {warm_wall:?})"
        );
    }

    maybe_write_json("cache_warm", || {
        JsonValue::object(vec![
            ("cases", JsonValue::int(cases as u64)),
            (
                "cold_wall_seconds",
                JsonValue::Number(cold_wall.as_secs_f64()),
            ),
            (
                "warm_wall_seconds",
                JsonValue::Number(warm_wall.as_secs_f64()),
            ),
            ("speedup", JsonValue::Number(speedup)),
            (
                "warm_reports",
                JsonValue::Array(warm.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    });
    let _ = std::fs::remove_dir_all(&cache_dir);
}
