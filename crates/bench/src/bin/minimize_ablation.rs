//! **Experiment S5e — BDD minimization ablation**.
//!
//! Paper: "We also experimented with different BDD minimization algorithms
//! (using the care-sets defined by the constraints). The BDD operation
//! constrain was overall the best choice: it is fast when the number of
//! nodes is manageable. More aggressive minimization algorithms yielded
//! greater reductions in the peak number of BDD nodes, but their overall
//! run-time was significantly higher."
//!
//! We run a batch of overlap cases under constrain, restrict (the more
//! aggressive sibling-substitution), and no minimization at all, summing
//! peaks and runtimes.

use fmaverify::{
    build_harness, check_miter_bdd_parts, paper_order, BddEngineOptions, CaseId, HarnessOptions,
    Minimize, RunConfig, ShaCase,
};
use fmaverify_bench::{banner, bench_config, compare, dur};
use fmaverify_fpu::FpuOp;
use std::time::Duration;

fn main() {
    banner(
        "minimize_ablation",
        "§5: constrain vs restrict vs no minimization (peak nodes & time)",
    );
    let cfg = bench_config();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let f = cfg.format.frac_bits() as usize;
    // A batch of representative cases: a few cancellation shifts and a few
    // plain overlap deltas.
    let mut batch: Vec<CaseId> = Vec::new();
    for sha in [f, f + 2, f + 4] {
        batch.push(CaseId::OverlapCancel {
            delta: 0,
            sha: ShaCase::Exact(sha),
        });
        batch.push(CaseId::OverlapCancel {
            delta: -1,
            sha: ShaCase::Exact(sha),
        });
    }
    for delta in [3i64, 5, -4] {
        batch.push(CaseId::OverlapNoCancel { delta });
    }
    let parts: Vec<(CaseId, Vec<fmaverify_netlist::Signal>)> = batch
        .iter()
        .map(|&c| (c, h.case_constraint_parts(FpuOp::Fma, c)))
        .collect();

    let node_limit = RunConfig::from_env().node_budget.unwrap_or(6_000_000);
    let mut rows = Vec::new();
    for minimize in [Minimize::Constrain, Minimize::Restrict, Minimize::None] {
        let mut total_time = Duration::ZERO;
        let mut peak_sum = 0usize;
        let mut peak_max = 0usize;
        let mut aborted = 0usize;
        for (case, p) in &parts {
            let delta = match case {
                CaseId::OverlapNoCancel { delta } => Some(*delta),
                CaseId::OverlapCancel { delta, .. } => Some(*delta),
                _ => None,
            };
            let out = check_miter_bdd_parts(
                &h.netlist,
                h.miter,
                p,
                &BddEngineOptions {
                    minimize,
                    order: paper_order(&h, delta),
                    node_limit: Some(node_limit),
                    gc_threshold: node_limit / 8,
                    ..BddEngineOptions::default()
                },
            );
            assert!(out.holds || out.aborted, "{case:?} under {minimize:?}");
            if out.aborted {
                aborted += 1;
            }
            total_time += out.duration;
            peak_sum += out.peak_nodes;
            peak_max = peak_max.max(out.peak_nodes);
        }
        println!(
            "{:<10} total {:>9}, peak sum {:>10}, peak max {:>10}, aborted {}/{}",
            format!("{minimize:?}"),
            dur(total_time),
            peak_sum,
            peak_max,
            aborted,
            parts.len(),
        );
        rows.push((minimize, total_time, peak_sum, peak_max, aborted));
    }
    println!();
    let constrain = &rows[0];
    let restrict = &rows[1];
    let none = &rows[2];
    compare(
        "minimization reduces peaks vs none",
        "care-sets bound BDD size",
        &format!(
            "{} vs {} (sum of peaks; none aborted {} cases)",
            constrain.2, none.2, none.4
        ),
        constrain.2 <= none.2 || none.4 > 0,
    );
    compare(
        "constrain is the fastest overall",
        "constrain was overall the best choice",
        &format!(
            "constrain {} / restrict {} / none {}",
            dur(constrain.1),
            dur(restrict.1),
            dur(none.1)
        ),
        constrain.1 <= restrict.1,
    );
    compare(
        "restrict can reduce peaks further but costs time",
        "aggressive minimization: smaller peaks, higher run-time",
        &format!(
            "peaks {} vs {}, time {} vs {}",
            restrict.3,
            constrain.3,
            dur(restrict.1),
            dur(constrain.1)
        ),
        restrict.1 >= constrain.1,
    );
}
