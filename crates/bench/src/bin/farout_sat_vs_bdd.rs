//! **Experiment S5a — far-out: SAT vs BDD**.
//!
//! Paper: "Satisfiability checking was used to verify the far-out cases
//! ... The SAT-solver is able to identify that the shifters which align the
//! addend to the product are not needed in this case, and thus
//! automatically removes these unused shifters from the cone-of-influence.
//! In contrast, BDD-based symbolic simulation would build the BDDs for
//! these unneeded shifters anyway."
//!
//! We run the far-out case of FMA with both engines and report runtimes,
//! BDD peaks, and the SAT cone after redundancy removal.

use fmaverify::{
    build_harness, check_miter_bdd_parts, check_miter_sat_parts, paper_order, BddEngineOptions,
    CaseId, HarnessOptions, SatEngineOptions,
};
use fmaverify_bench::{banner, bench_config, compare, dur};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "farout_sat_vs_bdd",
        "§5: far-out by SAT (53 min) vs BDD symbolic simulation",
    );
    let cfg = bench_config();
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let parts = h.case_constraint_parts(FpuOp::Fma, CaseId::FarOut);
    let full_cone = h.netlist.cone_size(&[h.miter]);

    let sat_plain =
        check_miter_sat_parts(&h.netlist, h.miter, &parts, &SatEngineOptions::default());
    assert!(sat_plain.holds);
    let sat_swept = check_miter_sat_parts(
        &h.netlist,
        h.miter,
        &parts,
        &SatEngineOptions {
            sweep_first: true,
            conflict_budget: None,
        },
    );
    assert!(sat_swept.holds);

    let order = paper_order(&h, None);
    let bdd = check_miter_bdd_parts(
        &h.netlist,
        h.miter,
        &parts,
        &BddEngineOptions {
            order,
            ..BddEngineOptions::default()
        },
    );
    assert!(bdd.holds);

    println!("full miter cone:        {full_cone} AND gates");
    println!(
        "SAT (plain):            {} ({} conflicts, cone {})",
        dur(sat_plain.duration),
        sat_plain.stats.conflicts,
        sat_plain.cone_ands
    );
    println!(
        "SAT (after sweeping):   {} (cone {} after {} merges)",
        dur(sat_swept.duration),
        sat_swept.cone_ands,
        sat_swept.swept_away
    );
    println!(
        "BDD symbolic simulation: {} (peak {} nodes — the engine builds the \
         aligner BDDs even though the case never uses them)",
        dur(bdd.duration),
        bdd.peak_nodes
    );
    println!();
    compare(
        "sweeping shrinks the far-out SAT cone",
        "aligners dropped from COI",
        &format!("{} -> {} gates", sat_plain.cone_ands, sat_swept.cone_ands),
        sat_swept.cone_ands < sat_plain.cone_ands,
    );
    compare(
        "BDD builds the unneeded shifters anyway",
        "BDD memory-heavy on far-out",
        &format!("{} peak nodes", bdd.peak_nodes),
        bdd.peak_nodes > 1000,
    );
}
