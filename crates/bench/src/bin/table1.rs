//! **Experiment T1 — Table 1**: BDD nodes and runtimes per instruction and
//! case class.
//!
//! The paper reports, for a double-precision industrial FPU on 1.7 GHz
//! POWER4 machines:
//!
//! ```text
//! Instr.  Case                      nodes avg/max [1e6]   time avg/max [min]
//! add     overlap w/ cancellation        0.2 / 0.4             3 / 5
//! add     overlap w/o cancellation       0.3 / 0.5             3 / 4
//! add     far-out                        n/a                   - / 12
//! mult    n/a                            n/a                   - / 5
//! FMA     overlap w/ cancellation        6.9 / 26.0            8 / 24
//! FMA     overlap w/o cancellation       2.1 / 4.7             5 / 10
//! FMA     far-out                        n/a                   - / 53
//! ```
//!
//! Absolute values are not comparable (their substrate is a 15k-line VHDL
//! FPU, ours a scaled-down gate-level model); the *shape* is: FMA cases are
//! several times heavier than add cases, cancellation cases have the worst
//! peaks, far-out/mult are SAT-only (n/a nodes), and the far-out SAT run is
//! the slowest single job.

use fmaverify::{render_table1, summarize, table1_rows, JsonValue, Session, ToJson};
use fmaverify_bench::{banner, bench_config, compare, dur, maybe_write_json, run_config_from_env};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "table1",
        "Table 1: BDD nodes and runtimes for the double-precision cases",
    );
    let cfg = bench_config();
    let session = Session::new(&cfg).configure(run_config_from_env("table1"));
    let mut reports = Vec::new();
    for op in [FpuOp::Add, FpuOp::Mul, FpuOp::Fma] {
        let report = session.run(op);
        println!("{}", summarize(&report));
        assert!(
            report.all_hold(),
            "verification failed: {:?}",
            report.first_failure()
        );
        reports.push(report);
    }
    println!("\n{}", render_table1(&table1_rows(&reports)));

    // Shape checks against the paper.
    let rows = table1_rows(&reports);
    maybe_write_json("table1", || {
        JsonValue::object(vec![
            ("rows", rows.to_json()),
            ("reports", reports.to_json()),
        ])
    });
    let find = |op: FpuOp, class: fmaverify::CaseClass| {
        rows.iter().find(|r| r.op == op && r.class == class)
    };
    use fmaverify::CaseClass::*;
    let fma_wc = find(FpuOp::Fma, OverlapWithCancellation).expect("row");
    let fma_nc = find(FpuOp::Fma, OverlapNoCancellation).expect("row");
    let add_wc = find(FpuOp::Add, OverlapWithCancellation).expect("row");
    let add_nc = find(FpuOp::Add, OverlapNoCancellation).expect("row");
    let fma_fo = find(FpuOp::Fma, FarOut).expect("row");
    let mult = find(FpuOp::Mul, Monolithic).expect("row");

    println!("shape comparison with the paper's Table 1:");
    compare(
        "FMA peak nodes > add peak nodes",
        "26.0e6 vs 0.4e6",
        &format!(
            "{} vs {}",
            fma_wc.nodes_max.unwrap_or(0),
            add_wc.nodes_max.unwrap_or(0)
        ),
        fma_wc.nodes_max >= add_wc.nodes_max,
    );
    compare(
        "cancellation peak >= no-cancellation peak (FMA)",
        "26.0e6 vs 4.7e6",
        &format!(
            "{} vs {}",
            fma_wc.nodes_max.unwrap_or(0),
            fma_nc.nodes_max.unwrap_or(0)
        ),
        fma_wc.nodes_max >= fma_nc.nodes_max,
    );
    compare(
        "far-out & mult rows are SAT (nodes n/a)",
        "n/a",
        &format!(
            "{} / {}",
            fma_fo.nodes_avg.map_or("n/a".into(), |v| v.to_string()),
            mult.nodes_avg.map_or("n/a".into(), |v| v.to_string())
        ),
        fma_fo.nodes_avg.is_none() && mult.nodes_avg.is_none(),
    );
    compare(
        "far-out is the slowest FMA job",
        "53 min vs 24 min",
        &format!("{} vs {}", dur(fma_fo.time_max), dur(fma_wc.time_max)),
        fma_fo.time_max >= fma_wc.time_max,
    );
    compare(
        "add cases cheaper than FMA cases (avg time)",
        "3 min vs 8 min",
        &format!("{} vs {}", dur(add_nc.time_avg), dur(fma_nc.time_avg)),
        add_nc.time_avg <= fma_nc.time_avg,
    );
    let add_total: std::time::Duration = reports[0].accumulated;
    let mul_total = reports[1].accumulated;
    let fma_total = reports[2].accumulated;
    compare(
        "accumulated: mult << add << FMA",
        "5 min / 16 h / 73 h",
        &format!(
            "{} / {} / {}",
            dur(mul_total),
            dur(add_total),
            dur(fma_total)
        ),
        mul_total <= add_total && add_total <= fma_total,
    );
}
