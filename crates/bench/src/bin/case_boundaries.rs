//! **Experiment F2 — the four δ-case regions and their boundaries**.
//!
//! Paper Figure 2 derives the case boundaries for double precision:
//! far-out left δ ≤ −55, overlap left −54…−1, overlap right 0…105,
//! far-out right δ ≥ 106 (footnote 3 derives the −55 edge).
//!
//! We sweep δ across every boundary (±2), formally verifying each δ-slice
//! and asserting the case classifier agrees with the generalized formulas.
//! The sweep also documents our boundary *correction*: exhaustive oracle
//! testing shows δ = −(f+3) still needs overlap treatment (an addend
//! significand of exactly 1.0 under effective subtraction puts a product
//! in [2,4) on the post-normalization guard position), so our far-out-left
//! region starts one δ later than the paper's.

use fmaverify::{
    build_harness, check_miter_bdd_parts, paper_order, BddEngineOptions, HarnessOptions,
};
use fmaverify_bench::{banner, bench_config, compare, dur};
use fmaverify_fpu::{FpuConfig, FpuOp};
use fmaverify_netlist::{BitSim, Netlist, Signal, Word};
use fmaverify_softfloat::{fma_with, RoundingMode};

fn main() {
    banner(
        "case_boundaries",
        "Figure 2: far-out/overlap boundaries (−55, −54…−1, 0…105, ≥106 at DP)",
    );
    let cfg = bench_config();
    let f = cfg.format.frac_bits() as i64;
    let dmin = cfg.delta_min_overlap();
    let dmax = cfg.delta_max_overlap();
    println!(
        "generalized boundaries at f={f}: far-left δ<{dmin}, overlap {dmin}..={dmax}, far-right δ>{dmax}"
    );
    println!(
        "paper formulas at f=52: far-left δ<=-55, overlap -54..=105 (ours: -55..=105, see note)\n"
    );
    let dp = FpuConfig::double_ftz();
    compare(
        "double-precision overlap window",
        "-54..=105 (160 values)",
        &format!(
            "{}..={} ({} values)",
            dp.delta_min_overlap(),
            dp.delta_max_overlap(),
            dp.overlap_delta_count()
        ),
        dp.delta_max_overlap() == 105 && dp.delta_min_overlap() == -55,
    );

    // Witness for the boundary correction: at δ = -(f+3), f_c = 1.0,
    // effective subtraction, f_p in (2,4), the product is NOT sticky-only.
    {
        let fmt = cfg.format;
        let bias = fmt.bias() as i64;
        // Choose exponents so that e_a + e_b - e_c = -(f+3) (unbiased).
        let ea = bias as u32; // e_a = 0
        let ec = (bias + f + 3).min((1 << fmt.exp_bits()) as i64 - 2) as u32;
        // Solve e_b from the constraint: (ea-b)+(eb-b)-(ec-b) = -(f+3)
        let eb = (-(f + 3) + ec as i64 + bias - ea as i64) as u32;
        if i64::from(eb) >= 1 && i64::from(eb) < (1 << fmt.exp_bits()) - 1 {
            let a = fmt.pack(false, ea, fmt.frac_mask()); // f_a close to 2
            let b = fmt.pack(false, eb, fmt.frac_mask() >> 1); // f_p > 2
            let c = fmt.pack(true, ec, 0); // f_c = 1.0, opposite sign
            let exact_sticky_only = fma_with(fmt, a, b, c, RoundingMode::NearestEven, true);
            // A pure sticky treatment would round |c| - epsilon up to |c|;
            // the true result may differ by one ulp.
            let c_mag = fmt.pack(true, ec, 0);
            println!(
                "boundary witness at δ={}: a={} b={} c={} -> {} (sticky-only would give {})",
                -(f + 3),
                fmt.to_f64(a),
                fmt.to_f64(b),
                fmt.to_f64(c),
                fmt.to_f64(exact_sticky_only.bits),
                fmt.to_f64(c_mag),
            );
            compare(
                "δ=-(f+3) is not sticky-only (boundary correction)",
                "paper claims δ<=-55 is far-out",
                &format!(
                    "result differs from addend: {}",
                    exact_sticky_only.bits != c_mag
                ),
                exact_sticky_only.bits != c_mag,
            );
        }
    }
    println!();

    // Formal sweep across every boundary: each δ-slice of FMA must hold,
    // and the reference's case indicator must match the formulas.
    let mut h = build_harness(&cfg, HarnessOptions::default());
    let sweep: Vec<i64> = [
        dmin - 2,
        dmin - 1,
        dmin,
        dmin + 1,
        -1,
        0,
        dmax - 1,
        dmax,
        dmax + 1,
        dmax + 2,
    ]
    .into_iter()
    .collect();
    for delta in sweep {
        let in_overlap = (dmin..=dmax).contains(&delta);
        let case = if in_overlap {
            if cfg.cancellation_deltas().contains(&delta) {
                // Use the sha=f+2 slice as a representative.
                fmaverify::CaseId::OverlapCancel {
                    delta,
                    sha: fmaverify::ShaCase::Exact(f as usize + 2),
                }
            } else {
                fmaverify::CaseId::OverlapNoCancel { delta }
            }
        } else {
            fmaverify::CaseId::FarOut
        };
        let parts = h.case_constraint_parts(FpuOp::Fma, case);
        let out = check_miter_bdd_parts(
            &h.netlist,
            h.miter,
            &parts,
            &BddEngineOptions {
                order: paper_order(&h, Some(delta)),
                ..BddEngineOptions::default()
            },
        );
        println!(
            "δ={delta:>4} ({}) -> {} in {:>9} (peak {} nodes)",
            if in_overlap { "overlap" } else { "far-out" },
            if out.holds { "HOLDS" } else { "FAILS" },
            dur(out.duration),
            out.peak_nodes,
        );
        assert!(out.holds);
    }

    // Concrete classifier check on the reference FPU.
    let classifier_ok = check_classifier(&h.netlist, &h, &cfg);
    println!();
    compare(
        "reference case indicators match Figure 2 formulas",
        "four cases by δ",
        &format!("{classifier_ok} random vectors agree"),
        classifier_ok > 0,
    );
}

/// Simulates random vectors and confirms the reference FPU's case probes
/// match the architected δ classification. Returns the number checked.
fn check_classifier(netlist: &Netlist, h: &fmaverify::Harness, cfg: &FpuConfig) -> usize {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut sim = BitSim::new(netlist);
    let delta_word = {
        let wexp = cfg.exp_arith_bits();
        let bits: Vec<Signal> = (0..wexp)
            .map(|i| {
                netlist
                    .find_probe(&format!("ref.delta[{i}]"))
                    .expect("delta probe")
            })
            .collect();
        Word::from_bits(bits)
    };
    let fl = netlist.find_probe("ref.case_far_left").expect("probe");
    let fr = netlist.find_probe("ref.case_far_right").expect("probe");
    let wexp = cfg.exp_arith_bits();
    let mut checked = 0;
    for _ in 0..2000 {
        sim.set_word(&h.inputs.a, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&h.inputs.b, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&h.inputs.c, rng.gen::<u128>() & cfg.format.mask());
        sim.set_word(&h.inputs.op, 0);
        sim.set_word(&h.inputs.rm, 0);
        if let Some((s, t)) = &h.st {
            sim.set_word(s, rng.gen::<u128>() & ((1u128 << cfg.window_bits()) - 1));
            sim.set_word(t, 0);
        }
        sim.eval();
        let raw = sim.get_word(&delta_word);
        let delta = if raw >> (wexp - 1) & 1 == 1 {
            raw as i128 as i64 - (1i64 << wexp)
        } else {
            raw as i64
        };
        let c_is_zeroish = {
            // far-right is forced for zero-acting addends.
            sim.get(fr) && (cfg.delta_min_overlap()..=cfg.delta_max_overlap()).contains(&delta)
        };
        if c_is_zeroish {
            checked += 1;
            continue; // zero addend rerouted: consistent by construction
        }
        let expect_fl = delta < cfg.delta_min_overlap();
        let expect_fr = delta > cfg.delta_max_overlap();
        assert_eq!(sim.get(fl), expect_fl, "far-left at δ={delta}");
        if !expect_fl {
            assert_eq!(sim.get(fr), expect_fr, "far-right at δ={delta}");
        }
        checked += 1;
    }
    checked
}
