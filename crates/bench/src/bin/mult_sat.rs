//! **Experiment S5b — the multiply instruction by SAT**.
//!
//! Paper: "Multiplication took only 5 minutes. ... We used satisfiability
//! checking for the verification of the multiply instruction. After the
//! multiplier is removed from the cone-of-influence, the only difficult
//! aspect of the proof is the possible denormalization. Verification of
//! this is possible without case-splitting because the SAT solver and
//! redundancy removal techniques are able to identify structural
//! similarities between the denormalization shifters in the real and the
//! reference FPU."

use fmaverify::{summarize, EngineKind, JsonValue, Session, ToJson};
use fmaverify_bench::{banner, bench_config, compare, dur, maybe_write_json, run_config_from_env};
use fmaverify_fpu::FpuOp;

fn main() {
    banner(
        "mult_sat",
        "§5: multiply verified by one SAT run, no case split",
    );
    let cfg = bench_config();
    let session = Session::new(&cfg).configure(run_config_from_env("mult_sat"));

    // Without sweeping.
    let plain = session.run(FpuOp::Mul);
    println!("plain:   {}", summarize(&plain));
    assert!(plain.all_hold());

    // With redundancy removal first (the paper's configuration).
    let swept = session.clone().sweep_before_sat(true).run(FpuOp::Mul);
    println!("swept:   {}", summarize(&swept));
    assert!(swept.all_hold());

    println!();
    compare(
        "multiply needs exactly one case",
        "no case-splitting",
        &format!("{} case(s)", plain.results.len()),
        plain.results.len() == 1,
    );
    compare(
        "discharged by SAT",
        "satisfiability checking",
        &format!("engine {:?}", plain.results[0].engine),
        plain.results[0].engine == EngineKind::Sat,
    );
    compare(
        "denormalization handled in-solver",
        "5 minutes total",
        &format!(
            "{} / {} (plain/swept)",
            dur(plain.accumulated),
            dur(swept.accumulated)
        ),
        true,
    );
    maybe_write_json("mult_sat", || {
        JsonValue::object(vec![("plain", plain.to_json()), ("swept", swept.to_json())])
    });
}
